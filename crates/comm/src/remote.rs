//! Remote execution: one party of a two-party protocol running against a
//! peer in **another process**, linked by a real byte stream.
//!
//! The fused and threaded executors (see [`crate::exec`]) schedule both
//! party functions inside one process; every "message" is a queue push.
//! This module is the third backend: the calling process runs exactly
//! one party, every [`Link::send`] becomes a framed write on a
//! [`FrameIo`] transport (a TCP socket in `mpest-net`), and every
//! [`Link::recv`] a framed blocking read. The peer process runs the
//! complementary party over the same stream.
//!
//! # The bit-identity contract
//!
//! Remote runs are **bit-identical** to in-process runs — outputs at the
//! party that produces them, and the full two-sided transcript at *both*
//! parties:
//!
//! * payloads are encoded by the same [`BitWriter`]
//!   path, so a message's logical bit count is the same number the fused
//!   executor would have recorded;
//! * frame headers carry the sender's round annotation and exact bit
//!   count, so the *receiver* can reconstruct the peer's transcript
//!   records without a side channel (headers are physical overhead — they
//!   are billed to the transport's byte counters, never to the logical
//!   transcript);
//! * after a party function returns (or fails), the executor performs an
//!   *end exchange*: it sends an end-of-protocol marker carrying its
//!   status and drains the peer's remaining frames (recording any it
//!   never consumed), so both sides terminate with the complete record
//!   and a peer failure surfaces as a typed error instead of a hang.
//!
//! Error resolution mirrors the in-process backends': a party's real
//! error is preferred over the [`CommError::ChannelClosed`] echo its peer
//! observes.
//!
//! Once both statuses are `Ok`, the two processes exchange their
//! parties' *outputs* (encoded through the same [`Wire`] trait the
//! messages use — which is why remote-capable party outputs must be
//! `Wire`), so the returned
//! [`ExecutionOutcome`] is complete on **both**
//! sides, exactly as if the protocol had run in one process. Output
//! delivery is not protocol communication: it is billed to the
//! transport's byte counters, never to the logical transcript — the
//! in-process executors return outputs for free the same way. (This
//! also keeps wrapper code honest: protocols like the at-least-T join
//! chain a sub-protocol whose output parameterizes the next phase, and
//! both processes need that value to stay in lockstep.)

use crate::bits::{BitReader, BitWriter};
use crate::channel::{canonicalize, resolve_party_results, ExecutionOutcome, Link};
use crate::error::CommError;
use crate::transcript::{MsgRecord, Party, Transcript};
use crate::wire::Wire;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Longest label accepted from the wire (the library's own labels are
/// all far shorter).
pub const MAX_LABEL_LEN: usize = 255;

/// Most distinct labels the interner will ever register. Honest
/// deployments use a few dozen; the cap turns a corrupt or hostile
/// stream full of fabricated labels into a typed decode error instead
/// of unbounded leaked memory in a long-lived daemon.
pub const MAX_INTERNED_LABELS: usize = 4096;

/// Returns a `&'static str` equal to `s`, leaking each distinct label at
/// most once. Transcript records and label-mismatch errors carry
/// `&'static str` labels (zero-cost on the in-process hot path); frames
/// arriving from another process carry labels as bytes, so the decode
/// side interns them. [`MAX_LABEL_LEN`] bounds each entry and
/// [`MAX_INTERNED_LABELS`] bounds the registry, so the total leak is
/// capped at ~1 MiB no matter what a peer streams.
///
/// # Errors
///
/// Returns [`CommError::Decode`] if the label exceeds [`MAX_LABEL_LEN`]
/// or the registry is full.
pub fn intern_label(s: &str) -> Result<&'static str, CommError> {
    if s.len() > MAX_LABEL_LEN {
        return Err(CommError::decode(format!(
            "label of {} bytes exceeds the {MAX_LABEL_LEN}-byte cap",
            s.len()
        )));
    }
    static REGISTRY: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = REGISTRY
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("label registry poisoned");
    if let Some(&interned) = set.get(s) {
        return Ok(interned);
    }
    if set.len() >= MAX_INTERNED_LABELS {
        return Err(CommError::decode(format!(
            "label registry full ({MAX_INTERNED_LABELS} distinct labels): \
             refusing to intern {s:?} from a suspect stream"
        )));
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    set.insert(leaked);
    Ok(leaked)
}

/// One protocol message as it crosses a process boundary: the sender's
/// round annotation and exact logical bit count ride in the frame header
/// so the receiver can reconstruct the sender's transcript record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteFrame {
    /// Round the sender annotated the message with.
    pub round: u16,
    /// Message label (owned — it crossed a process boundary).
    pub label: String,
    /// Exact logical payload size in bits (the transcript-billed count).
    pub bits: u64,
    /// The packed payload bytes (`⌈bits/8⌉` of them).
    pub payload: Vec<u8>,
}

/// What a [`FrameIo::recv_event`] call can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteEvent {
    /// A protocol message from the peer.
    Frame(RemoteFrame),
    /// The peer's end-of-protocol marker: `Ok(())` if its party function
    /// returned, otherwise the error it failed with.
    End(Result<(), CommError>),
    /// The peer party's encoded output (the post-protocol output
    /// exchange; never part of the logical transcript).
    Output(Vec<u8>),
}

/// A framed, bidirectional, FIFO byte transport linking this process to
/// the peer party. `mpest-net` implements it over TCP with a
/// length-prefixed, versioned codec; tests implement it over in-memory
/// pipes.
///
/// The contract is *completion*, not blocking. The blocking reference
/// implementation writes and reads synchronously, so two parties that
/// both send before reading can stall once their payloads overflow the
/// kernel socket buffers (surfaced as a typed write-timeout). The
/// default readiness-driven implementation (`mpest-net`'s `DuplexConn`)
/// instead *spools* sends and progresses both directions on kernel
/// readiness inside every wait, so a send may return before its bytes
/// hit the wire — but frames still arrive in order, byte-identical,
/// and simultaneous rounds of any size complete. Callers must not
/// assume a returned send has been flushed; only protocol completion
/// (the end/output exchange) orders the conversation.
pub trait FrameIo {
    /// Ships one protocol message to the peer.
    ///
    /// # Errors
    ///
    /// Returns a [`CommError::Frame`] (or [`CommError::ChannelClosed`])
    /// if the transport failed.
    fn send_frame(
        &mut self,
        round: u16,
        label: &str,
        bits: u64,
        payload: &[u8],
    ) -> Result<(), CommError>;

    /// Ships the end-of-protocol marker with this party's status.
    ///
    /// # Errors
    ///
    /// Same contract as [`FrameIo::send_frame`].
    fn send_end(&mut self, status: Result<(), &CommError>) -> Result<(), CommError>;

    /// Ships this party's encoded output (the post-protocol output
    /// exchange).
    ///
    /// # Errors
    ///
    /// Same contract as [`FrameIo::send_frame`].
    fn send_output(&mut self, payload: &[u8]) -> Result<(), CommError>;

    /// Blocks for the next event from the peer.
    ///
    /// # Errors
    ///
    /// Returns a [`CommError::Frame`] on a truncated, oversized, or
    /// otherwise malformed frame, [`CommError::ChannelClosed`] if the
    /// peer hung up cleanly between frames.
    fn recv_event(&mut self) -> Result<RemoteEvent, CommError>;
}

/// The remote counterpart of an executor backend: which party this
/// process plays, plus the transport to the peer. Borrowed into
/// [`Exec::Remote`](crate::exec::Exec) so the existing
/// `execute_with`-based protocol implementations run remotely without
/// any per-protocol change.
pub struct RemoteCtx<'io> {
    side: Party,
    io: RefCell<&'io mut dyn FrameIo>,
}

impl fmt::Debug for RemoteCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteCtx")
            .field("side", &self.side)
            .finish_non_exhaustive()
    }
}

impl<'io> RemoteCtx<'io> {
    /// Builds the context for the party `side` running in this process.
    pub fn new(side: Party, io: &'io mut dyn FrameIo) -> Self {
        Self {
            side,
            io: RefCell::new(io),
        }
    }

    /// Which party this process plays.
    #[must_use]
    pub fn side(&self) -> Party {
        self.side
    }
}

/// Endpoint interface the [`Link`] dispatches through (object-safe so the
/// link stays a single-lifetime type).
pub(crate) trait RemoteEndpoint {
    fn side(&self) -> Party;
    fn send_encoded(
        &self,
        round: u16,
        label: &'static str,
        bits: u64,
        payload: &[u8],
    ) -> Result<(), CommError>;
    fn recv_expect(&self, expect: &'static str) -> Result<RemoteFrame, CommError>;
}

/// Run state of one remote party: its transcript records (own sends plus
/// reconstructed peer records) and the peer's end status once observed.
struct RemoteCore<'c, 'io> {
    side: Party,
    io: &'c RefCell<&'io mut dyn FrameIo>,
    records: RefCell<Vec<MsgRecord>>,
    peer_end: RefCell<Option<Result<(), CommError>>>,
}

impl<'c, 'io> RemoteCore<'c, 'io> {
    fn new(side: Party, io: &'c RefCell<&'io mut dyn FrameIo>) -> Self {
        Self {
            side,
            io,
            records: RefCell::new(Vec::new()),
            peer_end: RefCell::new(None),
        }
    }

    /// Records a frame received from the peer under its wire-carried
    /// round and bit count. `label` is already resolved to the static
    /// label the local state machine expected (or interned, for frames
    /// drained after the protocol).
    fn record_peer(&self, round: u16, label: &'static str, bits: u64) {
        self.records.borrow_mut().push(MsgRecord {
            from: self.side.peer(),
            round,
            label,
            bits,
        });
    }
}

impl RemoteEndpoint for RemoteCore<'_, '_> {
    fn side(&self) -> Party {
        self.side
    }

    fn send_encoded(
        &self,
        round: u16,
        label: &'static str,
        bits: u64,
        payload: &[u8],
    ) -> Result<(), CommError> {
        self.records.borrow_mut().push(MsgRecord {
            from: self.side,
            round,
            label,
            bits,
        });
        self.io.borrow_mut().send_frame(round, label, bits, payload)
    }

    fn recv_expect(&self, expect: &'static str) -> Result<RemoteFrame, CommError> {
        if let Some(end) = self.peer_end.borrow().as_ref() {
            // The peer already declared the protocol over; a further
            // receive observes the same thing a dropped channel would.
            return Err(match end {
                Ok(()) => CommError::ChannelClosed,
                Err(e) => e.clone(),
            });
        }
        match self.io.borrow_mut().recv_event()? {
            RemoteEvent::Frame(frame) => {
                if frame.label != expect {
                    return Err(CommError::LabelMismatch {
                        expected: expect,
                        got: intern_label(&frame.label)?,
                    });
                }
                self.record_peer(frame.round, expect, frame.bits);
                Ok(frame)
            }
            RemoteEvent::End(status) => {
                let err = match &status {
                    Ok(()) => CommError::ChannelClosed,
                    Err(e) => e.clone(),
                };
                *self.peer_end.borrow_mut() = Some(status);
                Err(err)
            }
            RemoteEvent::Output(_) => Err(CommError::frame(
                expect,
                "peer output arrived while the protocol still expected a message",
            )),
        }
    }
}

impl RemoteCore<'_, '_> {
    /// The end exchange: ship this party's status, then drain the peer's
    /// remaining frames (recording any this party never consumed) until
    /// its end marker arrives, so both processes finish with the complete
    /// two-sided transcript. Returns the peer's status.
    fn end_exchange(&self, my_status: Result<(), &CommError>) -> Result<(), CommError> {
        self.io.borrow_mut().send_end(my_status)?;
        loop {
            if let Some(status) = self.peer_end.borrow().clone() {
                return status;
            }
            match self.io.borrow_mut().recv_event()? {
                RemoteEvent::Frame(frame) => {
                    // A message this party never received (e.g. it failed
                    // mid-protocol). The peer billed it when sending, so
                    // the reconstructed transcript must carry it too.
                    self.record_peer(frame.round, intern_label(&frame.label)?, frame.bits);
                }
                RemoteEvent::End(status) => {
                    *self.peer_end.borrow_mut() = Some(status.clone());
                    return status;
                }
                RemoteEvent::Output(_) => {
                    return Err(CommError::frame(
                        "end",
                        "peer output arrived before its end marker",
                    ))
                }
            }
        }
    }

    /// The post-protocol output exchange (both parties' statuses are
    /// already `Ok`): ship this party's encoded output, then block for
    /// the peer's.
    fn exchange_outputs(&self, mine: &[u8]) -> Result<Vec<u8>, CommError> {
        self.io.borrow_mut().send_output(mine)?;
        match self.io.borrow_mut().recv_event()? {
            RemoteEvent::Output(payload) => Ok(payload),
            RemoteEvent::Frame(frame) => Err(CommError::frame(
                &frame.label,
                "protocol frame arrived during the output exchange",
            )),
            RemoteEvent::End(_) => Err(CommError::frame(
                "end",
                "duplicate end marker during the output exchange",
            )),
        }
    }

    fn into_transcript(self) -> Transcript {
        let mut records = self.records.into_inner();
        canonicalize(&mut records);
        Transcript { records }
    }
}

/// Decodes a remote frame's payload as `T`, mirroring the in-process
/// decode path (including the exact-bit-consumption debug check).
pub(crate) fn decode_remote<T: Wire>(frame: &RemoteFrame) -> Result<T, CommError> {
    let mut r = BitReader::new(&frame.payload);
    let value = T::decode(&mut r)?;
    debug_assert!(
        r.bits_read() == frame.bits,
        "decoder for {:?} consumed {} of {} bits",
        frame.label,
        r.bits_read(),
        frame.bits
    );
    Ok(value)
}

/// Encodes `value` the same way the in-process backends do and hands the
/// packed bytes plus exact bit count to the endpoint.
pub(crate) fn encode_and_send<T: Wire>(
    ep: &dyn RemoteEndpoint,
    round: u16,
    label: &'static str,
    value: &T,
) -> Result<(), CommError> {
    let mut w = BitWriter::new();
    value.encode(&mut w);
    let (payload, bits) = w.finish_vec();
    ep.send_encoded(round, label, bits, &payload)
}

/// Runs the `rc.side()` party of a protocol over the remote transport;
/// the peer process is expected to run the complementary party over the
/// same stream. See the module docs for the bit-identity contract and
/// the post-protocol output exchange.
/// Error for a split execution that was asked to run a side whose input
/// the caller does not hold.
pub(crate) fn missing_input(side: Party) -> CommError {
    CommError::protocol(format!(
        "storage-split execution needs {side}'s input, but this party does not hold it"
    ))
}

pub(crate) fn execute_remote<AIn, BIn, AOut, BOut, FA, FB>(
    rc: &RemoteCtx<'_>,
    alice_in: Option<AIn>,
    bob_in: Option<BIn>,
    alice_fn: FA,
    bob_fn: FB,
) -> Result<ExecutionOutcome<AOut, BOut>, CommError>
where
    AOut: Wire,
    BOut: Wire,
    FA: Fn(&Link<'_>, AIn) -> Result<AOut, CommError>,
    FB: Fn(&Link<'_>, BIn) -> Result<BOut, CommError>,
{
    let io = &rc.io;
    let core = RemoteCore::new(rc.side, io);
    let mut alice_out: Option<AOut> = None;
    let mut bob_out: Option<BOut> = None;
    let my_res: Result<(), CommError> = {
        let link = Link::remote(&core);
        // Only this context's side runs locally, so only its input is
        // required — storage-split callers pass `None` for the peer.
        match rc.side {
            Party::Alice => alice_in
                .ok_or_else(|| missing_input(Party::Alice))
                .and_then(|input| alice_fn(&link, input))
                .map(|out| alice_out = Some(out)),
            Party::Bob => bob_in
                .ok_or_else(|| missing_input(Party::Bob))
                .and_then(|input| bob_fn(&link, input))
                .map(|out| bob_out = Some(out)),
        }
    };
    let peer_res = core.end_exchange(my_res.as_ref().copied());
    // Same preference as the in-process backends: a real error beats the
    // ChannelClosed echo the other side observes.
    let (my_slot, peer_slot) = match rc.side {
        Party::Alice => (my_res, peer_res),
        Party::Bob => (peer_res, my_res),
    };
    resolve_party_results(my_slot, peer_slot)?;
    // Both parties succeeded: exchange outputs so the outcome is as
    // complete here as an in-process run's.
    let mut w = BitWriter::new();
    match rc.side {
        Party::Alice => alice_out
            .as_ref()
            .expect("local alice output")
            .encode(&mut w),
        Party::Bob => bob_out.as_ref().expect("local bob output").encode(&mut w),
    }
    let (mine, _bits) = w.finish_vec();
    let theirs = core.exchange_outputs(&mine)?;
    let mut r = BitReader::new(&theirs);
    match rc.side {
        Party::Alice => bob_out = Some(BOut::decode(&mut r)?),
        Party::Bob => alice_out = Some(AOut::decode(&mut r)?),
    }
    Ok(ExecutionOutcome {
        alice: alice_out.expect("both outputs resolved"),
        bob: bob_out.expect("both outputs resolved"),
        transcript: core.into_transcript(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_with, Exec};
    use std::collections::VecDeque;
    use std::sync::mpsc;

    /// An in-memory [`FrameIo`] built on two mpsc channels — the remote
    /// machinery without sockets.
    struct PipeIo {
        tx: mpsc::Sender<RemoteEvent>,
        rx: mpsc::Receiver<RemoteEvent>,
        buffered: VecDeque<RemoteEvent>,
    }

    fn pipe_pair() -> (PipeIo, PipeIo) {
        let (a_tx, b_rx) = mpsc::channel();
        let (b_tx, a_rx) = mpsc::channel();
        (
            PipeIo {
                tx: a_tx,
                rx: a_rx,
                buffered: VecDeque::new(),
            },
            PipeIo {
                tx: b_tx,
                rx: b_rx,
                buffered: VecDeque::new(),
            },
        )
    }

    impl FrameIo for PipeIo {
        fn send_frame(
            &mut self,
            round: u16,
            label: &str,
            bits: u64,
            payload: &[u8],
        ) -> Result<(), CommError> {
            self.tx
                .send(RemoteEvent::Frame(RemoteFrame {
                    round,
                    label: label.to_owned(),
                    bits,
                    payload: payload.to_vec(),
                }))
                .map_err(|_| CommError::ChannelClosed)
        }

        fn send_end(&mut self, status: Result<(), &CommError>) -> Result<(), CommError> {
            self.tx
                .send(RemoteEvent::End(status.map_err(Clone::clone)))
                .map_err(|_| CommError::ChannelClosed)
        }

        fn send_output(&mut self, payload: &[u8]) -> Result<(), CommError> {
            self.tx
                .send(RemoteEvent::Output(payload.to_vec()))
                .map_err(|_| CommError::ChannelClosed)
        }

        fn recv_event(&mut self) -> Result<RemoteEvent, CommError> {
            if let Some(ev) = self.buffered.pop_front() {
                return Ok(ev);
            }
            self.rx.recv().map_err(|_| CommError::ChannelClosed)
        }
    }

    type PairResult<AOut, BOut> = Result<ExecutionOutcome<AOut, BOut>, CommError>;

    /// Runs both remote halves of a protocol on two threads linked by an
    /// in-memory pipe and returns (alice outcome, bob outcome).
    fn run_remote_pair<AOut, BOut, FA, FB>(
        alice_fn: FA,
        bob_fn: FB,
    ) -> (PairResult<AOut, BOut>, PairResult<AOut, BOut>)
    where
        AOut: Wire + Send,
        BOut: Wire + Send,
        FA: Fn(&Link<'_>, ()) -> Result<AOut, CommError> + Send + Clone,
        FB: Fn(&Link<'_>, ()) -> Result<BOut, CommError> + Send + Clone,
    {
        let (mut a_io, mut b_io) = pipe_pair();
        std::thread::scope(|scope| {
            let (a_fn, b_fn) = (alice_fn.clone(), bob_fn.clone());
            let bob = scope.spawn(move || {
                let rc = RemoteCtx::new(Party::Bob, &mut b_io);
                execute_with(Exec::Remote(&rc), (), (), a_fn, b_fn)
            });
            let rc = RemoteCtx::new(Party::Alice, &mut a_io);
            let alice = execute_with(Exec::Remote(&rc), (), (), alice_fn, bob_fn);
            (alice, bob.join().expect("bob thread"))
        })
    }

    #[test]
    fn remote_pair_matches_fused_transcript_and_outputs() {
        let alice_fn = |link: &Link<'_>, ()| {
            link.send(0, "ping", &7u64)?;
            let pong: u64 = link.recv("pong")?;
            link.send(2, "ping", &(pong + 1))?;
            link.recv::<u64>("pong")
        };
        let bob_fn = |link: &Link<'_>, ()| {
            let a: u64 = link.recv("ping")?;
            link.send(1, "pong", &(a * 2))?;
            let b: u64 = link.recv("ping")?;
            link.send(3, "pong", &(b * 2))?;
            Ok(a + b)
        };
        let fused = execute_with(crate::ExecBackend::Fused, (), (), alice_fn, bob_fn).unwrap();
        let (alice, bob) = run_remote_pair(alice_fn, bob_fn);
        let (alice, bob) = (alice.unwrap(), bob.unwrap());
        // The output exchange completes both outcomes: each process ends
        // with the full result, bit-identical to the fused run.
        assert_eq!(alice, fused);
        assert_eq!(bob, fused);
    }

    #[test]
    fn peer_error_is_preferred_over_channel_closed() {
        let alice_fn = |link: &Link<'_>, ()| link.recv::<u64>("never");
        let bob_fn = |_link: &Link<'_>, ()| -> Result<u64, CommError> {
            Err(CommError::protocol("bob bad"))
        };
        let (alice, bob) = run_remote_pair(alice_fn, bob_fn);
        assert_eq!(alice.unwrap_err(), CommError::protocol("bob bad"));
        assert_eq!(bob.unwrap_err(), CommError::protocol("bob bad"));
    }

    #[test]
    fn label_mismatch_surfaces_on_the_receiving_side() {
        let alice_fn = |link: &Link<'_>, ()| link.send(0, "alpha", &1u64);
        let bob_fn = |link: &Link<'_>, ()| link.recv::<u64>("beta");
        let (alice, bob) = run_remote_pair(alice_fn, bob_fn);
        let expected = CommError::LabelMismatch {
            expected: "beta",
            got: intern_label("alpha").unwrap(),
        };
        assert_eq!(bob.unwrap_err(), expected);
        // Alice's own run succeeded locally but the resolution surfaces
        // the peer's real error, as in-process resolution would.
        assert_eq!(alice.unwrap_err(), expected);
    }

    #[test]
    fn unconsumed_frames_are_drained_into_the_transcript() {
        // Alice sends two messages; Bob consumes only the first. The
        // second must still appear in both transcripts (it was billed at
        // send time).
        let alice_fn = |link: &Link<'_>, ()| {
            link.send(0, "first", &1u64)?;
            link.send(0, "second", &2u64)?;
            Ok(())
        };
        let bob_fn = |link: &Link<'_>, ()| link.recv::<u64>("first");
        let fused = execute_with(crate::ExecBackend::Fused, (), (), alice_fn, bob_fn).unwrap();
        let (alice, bob) = run_remote_pair(alice_fn, bob_fn);
        let (alice, bob) = (alice.unwrap(), bob.unwrap());
        assert_eq!(fused.transcript.messages(), 2);
        assert_eq!(alice.transcript, fused.transcript);
        assert_eq!(bob.transcript, fused.transcript);
    }

    #[test]
    fn intern_label_is_stable_and_capped() {
        let a = intern_label("remote-test-label").unwrap();
        let b = intern_label(&String::from("remote-test-label")).unwrap();
        assert!(std::ptr::eq(a, b), "same allocation for the same label");
        let long = "x".repeat(MAX_LABEL_LEN + 1);
        assert!(intern_label(&long).is_err());
        assert!(intern_label(&"y".repeat(MAX_LABEL_LEN)).is_ok());
    }
}
