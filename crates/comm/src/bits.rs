//! Bit-level serialization primitives.
//!
//! All protocol messages are packed through [`BitWriter`] so that the
//! transcript's bit accounting reflects what would actually cross the wire.
//! The writer packs values MSB-first into a byte buffer; [`BitReader`]
//! mirrors it exactly. Varints use 8-bit groups (7 payload bits plus a
//! continuation bit), zigzag maps signed values onto unsigned ones, and
//! `f64` values are shipped as raw IEEE-754 words (64 bits — the paper's
//! `Õ(1)`-bit-per-entry convention, see DESIGN.md).

use crate::error::CommError;
use bytes::Bytes;

/// Number of bits needed to address `n` distinct values (`0..n`).
///
/// Returns 1 for `n <= 2` so that a value always occupies at least one bit.
///
/// ```
/// use mpest_comm::width_for;
/// assert_eq!(width_for(1), 1);
/// assert_eq!(width_for(2), 1);
/// assert_eq!(width_for(3), 2);
/// assert_eq!(width_for(1024), 10);
/// assert_eq!(width_for(1025), 11);
/// ```
#[must_use]
pub fn width_for(n: u64) -> u32 {
    if n <= 2 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

/// An MSB-first bit packer backed by a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Partial byte being filled, left-aligned.
    cur: u8,
    /// Number of bits already occupied in `cur` (0..8).
    cur_bits: u32,
    total_bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with pre-reserved capacity for `bits` bits.
    #[must_use]
    pub fn with_capacity_bits(bits: usize) -> Self {
        Self {
            buf: Vec::with_capacity(bits / 8 + 1),
            ..Self::default()
        }
    }

    /// Creates a writer over a recycled scratch buffer: the buffer is
    /// cleared but keeps its allocation, so a pooled caller (the fused
    /// executor) encodes without touching the allocator. The produced
    /// bytes are identical to a fresh writer's.
    #[must_use]
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self {
            buf,
            ..Self::default()
        }
    }

    /// Total number of bits written so far.
    #[must_use]
    pub fn bits_written(&self) -> u64 {
        self.total_bits
    }

    /// Writes the low `width` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` does not fit in `width` bits;
    /// both indicate a protocol implementation bug, not bad input data.
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "bit width {width} exceeds 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut remaining = width;
        while remaining > 0 {
            let free = 8 - self.cur_bits;
            let take = free.min(remaining);
            // Extract the `take` most significant of the remaining bits.
            let shift = remaining - take;
            let chunk = if take == 64 {
                value
            } else {
                (value >> shift) & ((1u64 << take) - 1)
            } as u8;
            self.cur |= chunk << (free - take);
            self.cur_bits += take;
            remaining -= take;
            if self.cur_bits == 8 {
                self.buf.push(self.cur);
                self.cur = 0;
                self.cur_bits = 0;
            }
        }
        self.total_bits += u64::from(width);
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(u64::from(bit), 1);
    }

    /// Writes an unsigned varint: 8-bit groups of 7 payload bits plus a
    /// continuation flag. Values below 128 cost exactly 8 bits.
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let group = value & 0x7f;
            value >>= 7;
            let cont = value != 0;
            self.write_bit(cont);
            self.write_bits(group, 7);
            if !cont {
                break;
            }
        }
    }

    /// Writes a signed value using zigzag mapping followed by a varint.
    pub fn write_zigzag(&mut self, value: i64) {
        let mapped = ((value << 1) ^ (value >> 63)) as u64;
        self.write_varint(mapped);
    }

    /// Writes an `f64` as its raw 64-bit IEEE-754 representation.
    pub fn write_f64(&mut self, value: f64) {
        self.write_bits(value.to_bits(), 64);
    }

    /// Finishes the stream, returning the packed bytes and the exact number
    /// of payload bits (the final byte may contain padding zeros that are
    /// *not* billed).
    #[must_use]
    pub fn finish(self) -> (Bytes, u64) {
        let (buf, bits) = self.finish_vec();
        (Bytes::from(buf), bits)
    }

    /// Like [`BitWriter::finish`], but returns the raw byte buffer
    /// without wrapping it in a shared [`Bytes`] handle (which copies
    /// into a fresh reference-counted allocation). The wire path of the
    /// fused executor moves these buffers between a scratch pool, the
    /// in-memory queues, and back — no copies, no refcounts.
    #[must_use]
    pub fn finish_vec(mut self) -> (Vec<u8>, u64) {
        if self.cur_bits > 0 {
            self.buf.push(self.cur);
        }
        (self.buf, self.total_bits)
    }
}

/// An MSB-first bit unpacker mirroring [`BitWriter`].
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit cursor from the start of `data`.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over a packed buffer.
    #[must_use]
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Number of bits consumed so far.
    #[must_use]
    pub fn bits_read(&self) -> u64 {
        self.pos
    }

    fn remaining_bits(&self) -> u64 {
        (self.data.len() as u64) * 8 - self.pos
    }

    /// Reads `width` bits, MSB first.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Decode`] if the buffer is exhausted.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CommError> {
        if width > 64 {
            return Err(CommError::decode("bit width exceeds 64"));
        }
        if u64::from(width) > self.remaining_bits() {
            return Err(CommError::decode("bit buffer exhausted"));
        }
        let mut out: u64 = 0;
        let mut remaining = width;
        while remaining > 0 {
            let byte = self.data[(self.pos / 8) as usize];
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(remaining);
            let chunk = (u64::from(byte) >> (avail - take)) & ((1u64 << take) - 1);
            out = if take == 64 {
                chunk
            } else {
                (out << take) | chunk
            };
            self.pos += u64::from(take);
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Decode`] if the buffer is exhausted.
    pub fn read_bit(&mut self) -> Result<bool, CommError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads an unsigned varint written by [`BitWriter::write_varint`].
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Decode`] on exhaustion or overlong encodings.
    pub fn read_varint(&mut self) -> Result<u64, CommError> {
        let mut out: u64 = 0;
        let mut shift = 0u32;
        loop {
            let cont = self.read_bit()?;
            let group = self.read_bits(7)?;
            if shift >= 64 || (shift == 63 && group > 1) {
                return Err(CommError::decode("varint overflows u64"));
            }
            out |= group << shift;
            shift += 7;
            if !cont {
                return Ok(out);
            }
        }
    }

    /// Reads a zigzag-encoded signed varint.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Decode`] on exhaustion or overlong encodings.
    pub fn read_zigzag(&mut self) -> Result<i64, CommError> {
        let mapped = self.read_varint()?;
        Ok(((mapped >> 1) as i64) ^ -((mapped & 1) as i64))
    }

    /// Reads a raw IEEE-754 `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Decode`] if the buffer is exhausted.
    pub fn read_f64(&mut self) -> Result<f64, CommError> {
        Ok(f64::from_bits(self.read_bits(64)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_edge_cases() {
        assert_eq!(width_for(0), 1);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(2), 1);
        assert_eq!(width_for(3), 2);
        assert_eq!(width_for(4), 2);
        assert_eq!(width_for(5), 3);
        assert_eq!(width_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_fixed_width() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(1, 1);
        w.write_bits(u64::MAX, 64);
        assert_eq!(w.bits_written(), 3 + 32 + 1 + 64);
        let (bytes, bits) = w.finish();
        assert_eq!(bits, 100);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(32).unwrap(), 0xdead_beef);
        assert_eq!(r.read_bits(1).unwrap(), 1);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.bits_read(), 100);
    }

    #[test]
    fn roundtrip_varints() {
        let vals = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.write_varint(v);
        }
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.read_varint().unwrap(), v);
        }
    }

    #[test]
    fn varint_small_values_cost_8_bits() {
        let mut w = BitWriter::new();
        w.write_varint(127);
        assert_eq!(w.bits_written(), 8);
        let mut w = BitWriter::new();
        w.write_varint(128);
        assert_eq!(w.bits_written(), 16);
    }

    #[test]
    fn roundtrip_zigzag() {
        let vals = [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -123_456_789];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.write_zigzag(v);
        }
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.read_zigzag().unwrap(), v);
        }
    }

    #[test]
    fn roundtrip_f64() {
        let vals = [0.0f64, -0.0, 1.5, f64::MAX, f64::MIN_POSITIVE, -3.25e-9];
        let mut w = BitWriter::new();
        for &v in &vals {
            w.write_f64(v);
        }
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &vals {
            assert_eq!(r.read_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn recycled_buffer_produces_identical_bytes() {
        let mut fresh = BitWriter::new();
        fresh.write_varint(12345);
        fresh.write_bits(0b1011, 4);
        let (expected, expected_bits) = fresh.finish_vec();

        // A dirty recycled buffer must not leak into the stream, and the
        // allocation must survive the round trip.
        let dirty = vec![0xffu8; 64];
        let capacity = dirty.capacity();
        let mut w = BitWriter::with_buf(dirty);
        w.write_varint(12345);
        w.write_bits(0b1011, 4);
        let (got, bits) = w.finish_vec();
        assert_eq!(got, expected);
        assert_eq!(bits, expected_bits);
        assert_eq!(got.capacity(), capacity, "allocation was reused");
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(2).is_ok());
        // The padding bits in the final byte are readable (they are real
        // bytes on the wire) but reading beyond the buffer fails.
        assert!(r.read_bits(7).is_err());
    }

    #[test]
    fn mixed_stream_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_varint(5000);
        w.write_zigzag(-77);
        w.write_f64(2.625);
        w.write_bits(0x3ff, 10);
        let (bytes, _) = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_varint().unwrap(), 5000);
        assert_eq!(r.read_zigzag().unwrap(), -77);
        assert!((r.read_f64().unwrap() - 2.625).abs() < 1e-15);
        assert_eq!(r.read_bits(10).unwrap(), 0x3ff);
    }
}
