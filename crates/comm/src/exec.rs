//! Executor backends: how the two party functions of a protocol actually
//! run.
//!
//! The paper's protocols are *communication*-bounded — the unit of cost
//! is bits on the wire — so the execution substrate should cost next to
//! nothing. This module provides two interchangeable backends behind one
//! entry point, [`execute_with`] (and [`execute`], which uses the
//! default):
//!
//! * [`ExecBackend::Threaded`] — the reference implementation: Alice and
//!   Bob run as scoped OS threads linked by channels (see
//!   [`crate::channel`]). Two thread spawns, channel sends, and a locked
//!   transcript recorder per query; trivially correct, but the per-query
//!   overhead (tens of microseconds) dwarfs a microsecond protocol.
//! * [`ExecBackend::Fused`] (the default) — both parties run
//!   cooperatively on the *calling* thread. `send` appends frames to
//!   in-memory per-direction queues, `recv` on an empty inbox yields to
//!   the peer, scratch buffers are pooled per thread and reused across
//!   messages and queries, and the transcript is recorded lock-free into
//!   per-party vectors. No threads, no channels, no locks, no
//!   per-message allocation in steady state.
//!
//! # How the fused scheduler works
//!
//! Party functions are plain blocking closures, so the fused backend
//! cannot suspend one mid-call. Instead it uses *restart-based*
//! cooperative scheduling, exploiting the fact that every party function
//! in this workspace is deterministic (all randomness flows from
//! explicit [`Seed`](crate::Seed)s):
//!
//! 1. Run Alice. When a `recv` finds her inbox empty, it returns the
//!    internal [`CommError::WouldBlock`] signal, which propagates out
//!    through the party's `?` chain — the party "yields".
//! 2. Run Bob, who now sees Alice's queued messages. When Bob yields (or
//!    finishes), switch back.
//! 3. A yielded party *re-runs from the start*: sends it already
//!    committed are skipped without re-encoding (determinism guarantees
//!    the bytes would be identical), and receives it already consumed are
//!    replayed from a per-party frame log. The replay reaches the yield
//!    point and continues past it with fresh frames.
//!
//! Each switch costs one re-run of the party's local prefix, so a
//! constant-round protocol (every protocol here is one) pays a constant
//! factor of local compute in exchange for eliminating *all* OS-level
//! machinery. If both parties yield with no message committed in
//! between, the protocol is deadlocked; the threaded backend would hang
//! forever, the fused one reports a protocol error.
//!
//! Outputs and transcripts are **bit-identical** across backends: frames
//! carry the same encodings, labels are checked the same way, and record
//! order is canonicalized identically (see
//! `tests/executor_equivalence.rs` for the 14-protocol proof).

use crate::bits::BitWriter;
use crate::channel::{
    canonicalize, decode_frame, execute_threaded, resolve_party_results, ExecutionOutcome, Frame,
    Link,
};
use crate::error::CommError;
use crate::remote::{execute_remote, missing_input, RemoteCtx};
use crate::transcript::{MsgRecord, Party, Transcript};
use crate::wire::Wire;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// Which executor runs a protocol's two party functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecBackend {
    /// Cooperative single-thread execution (the default): microsecond
    /// per-query cost, zero-allocation wire path, no OS involvement.
    #[default]
    Fused,
    /// Reference two-thread execution: each party on its own scoped
    /// thread. Parties compute their local phases in parallel, so this
    /// can win on *single* huge queries; for batches, run fused queries
    /// across an [`Engine`](../mpest_core/struct.Engine.html) pool
    /// instead.
    Threaded,
}

impl ExecBackend {
    /// Both backends, for sweeping tests and benches.
    pub const ALL: [ExecBackend; 2] = [ExecBackend::Fused, ExecBackend::Threaded];

    /// Stable lowercase name (matches the CLI `--executor` spelling).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ExecBackend::Fused => "fused",
            ExecBackend::Threaded => "threaded",
        }
    }
}

impl fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ExecBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fused" => Ok(ExecBackend::Fused),
            "threaded" => Ok(ExecBackend::Threaded),
            other => Err(format!(
                "unknown executor {other:?} (expected \"fused\" or \"threaded\")"
            )),
        }
    }
}

/// How a protocol execution actually runs: on an in-process
/// [`ExecBackend`], or as one party of a *remote* pair linked to a peer
/// process through a [`RemoteCtx`]. This is the type protocol
/// implementations thread through to [`execute_with`]; a plain
/// [`ExecBackend`] converts into it, so in-process callers never mention
/// it.
#[derive(Clone, Copy)]
pub enum Exec<'r> {
    /// Both parties in this process, on the given backend.
    Backend(ExecBackend),
    /// This process runs `ctx.side()` only; the peer party lives in
    /// another process behind `ctx`'s framed transport.
    Remote(&'r RemoteCtx<'r>),
}

impl fmt::Debug for Exec<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exec::Backend(b) => write!(f, "Exec::Backend({b})"),
            Exec::Remote(rc) => write!(f, "Exec::Remote({:?})", rc.side()),
        }
    }
}

impl From<ExecBackend> for Exec<'_> {
    fn from(backend: ExecBackend) -> Self {
        Exec::Backend(backend)
    }
}

impl Exec<'_> {
    /// The in-process backend, if this is one.
    #[must_use]
    pub fn backend(self) -> Option<ExecBackend> {
        match self {
            Exec::Backend(b) => Some(b),
            Exec::Remote(_) => None,
        }
    }
}

/// Retained scratch buffers per thread. Payload buffers cycle between
/// the pool, the in-flight queues, and the replay logs, so a thread
/// serving a stream of queries stops allocating on the wire path
/// entirely.
const POOL_MAX_BUFFERS: usize = 64;
/// Buffers above this capacity are dropped instead of pooled, so one
/// huge trivial-transfer query can't pin megabytes per thread forever.
const POOL_MAX_CAPACITY: usize = 1 << 20;

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

fn pool_get() -> Vec<u8> {
    SCRATCH_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default()
}

fn pool_put(buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > POOL_MAX_CAPACITY {
        return;
    }
    SCRATCH_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < POOL_MAX_BUFFERS {
            pool.push(buf);
        }
    });
}

/// Number of pooled scratch buffers currently retained by this thread
/// (diagnostics / tests).
#[must_use]
pub fn scratch_pool_len() -> usize {
    SCRATCH_POOL.with(|pool| pool.borrow().len())
}

const ALICE: usize = 0;
const BOB: usize = 1;

fn party_index(p: Party) -> usize {
    match p {
        Party::Alice => ALICE,
        Party::Bob => BOB,
    }
}

/// The shared state both fused [`Link`]s point at: per-direction frame
/// queues, per-party replay logs and transcript records, and the
/// counters that make restart-based scheduling exact. Interior
/// mutability is all `Cell`/`RefCell` — the whole structure lives and
/// dies on one thread.
#[derive(Debug, Default)]
pub(crate) struct FusedCore {
    /// `queues[i]` holds frames sent *by* party `i`, awaiting the peer.
    queues: [RefCell<VecDeque<Frame>>; 2],
    /// `logs[i]` holds frames already consumed by party `i`, in consume
    /// order, so a re-run can replay them.
    logs: [RefCell<Vec<Frame>>; 2],
    /// Replay cursor into `logs[i]` for the current run.
    cursors: [Cell<usize>; 2],
    /// Sends party `i` has committed (encoded + recorded + queued).
    committed: [Cell<u64>; 2],
    /// Sends party `i` has issued during the current run (≤ committed
    /// while replaying, == committed once past the replay prefix).
    issued: [Cell<u64>; 2],
    /// Per-party transcript records in send order.
    records: [RefCell<Vec<MsgRecord>>; 2],
    /// Whether party `i`'s function has returned (its link is "closed").
    finished: [Cell<bool>; 2],
}

impl FusedCore {
    /// Resets party `p`'s run-local state before (re-)running it.
    fn begin_run(&self, p: usize) {
        self.cursors[p].set(0);
        self.issued[p].set(0);
    }

    fn total_committed(&self) -> u64 {
        self.committed[ALICE].get() + self.committed[BOB].get()
    }

    pub(crate) fn send<T: Wire>(
        &self,
        from: Party,
        round: u16,
        label: &'static str,
        value: &T,
    ) -> Result<(), CommError> {
        let i = party_index(from);
        let seq = self.issued[i].get();
        self.issued[i].set(seq + 1);
        if seq < self.committed[i].get() {
            // Replayed send: already encoded, recorded, and delivered on
            // an earlier run. Determinism makes re-encoding redundant.
            return Ok(());
        }
        let mut w = BitWriter::with_buf(pool_get());
        value.encode(&mut w);
        let (payload, bits) = w.finish_vec();
        self.records[i].borrow_mut().push(MsgRecord {
            from,
            round,
            label,
            bits,
        });
        self.queues[i].borrow_mut().push_back(Frame {
            label,
            bits,
            payload,
        });
        self.committed[i].set(seq + 1);
        Ok(())
    }

    pub(crate) fn recv<T: Wire>(&self, to: Party, expect: &'static str) -> Result<T, CommError> {
        let i = party_index(to);
        let cursor = self.cursors[i].get();
        {
            // Replay prefix: serve the frame this receive consumed on an
            // earlier run.
            let log = self.logs[i].borrow();
            if let Some(frame) = log.get(cursor) {
                let value = decode_frame::<T>(frame, expect)?;
                drop(log);
                self.cursors[i].set(cursor + 1);
                return Ok(value);
            }
        }
        let frame = self.queues[1 - i].borrow_mut().pop_front();
        let Some(frame) = frame else {
            return Err(if self.finished[1 - i].get() {
                // The peer's function returned and will never send again:
                // same observation as a dropped channel sender.
                CommError::ChannelClosed
            } else {
                CommError::WouldBlock
            });
        };
        let value = decode_frame::<T>(&frame, expect)?;
        self.logs[i].borrow_mut().push(frame);
        self.cursors[i].set(cursor + 1);
        Ok(value)
    }

    /// Merges the per-party records into the canonical transcript order
    /// and returns every payload buffer to the thread's scratch pool.
    fn into_transcript(self) -> Transcript {
        let [a_rec, b_rec] = self.records;
        let mut records = a_rec.into_inner();
        records.append(&mut b_rec.into_inner());
        canonicalize(&mut records);
        for log in self.logs {
            for frame in log.into_inner() {
                pool_put(frame.payload);
            }
        }
        for queue in self.queues {
            for frame in queue.into_inner() {
                pool_put(frame.payload);
            }
        }
        Transcript { records }
    }
}

/// Runs a protocol on the fused single-thread backend (see the module
/// docs for the restart-based scheduling contract).
fn execute_fused<AIn, BIn, AOut, BOut, FA, FB>(
    alice_in: AIn,
    bob_in: BIn,
    alice_fn: FA,
    bob_fn: FB,
) -> Result<ExecutionOutcome<AOut, BOut>, CommError>
where
    AIn: Clone,
    BIn: Clone,
    FA: Fn(&Link<'_>, AIn) -> Result<AOut, CommError>,
    FB: Fn(&Link<'_>, BIn) -> Result<BOut, CommError>,
{
    let core = FusedCore::default();
    let links = [
        Link::fused(Party::Alice, &core),
        Link::fused(Party::Bob, &core),
    ];
    let mut alice_res: Option<Result<AOut, CommError>> = None;
    let mut bob_res: Option<Result<BOut, CommError>> = None;
    // Commit total at which each party last yielded (`u64::MAX` = never):
    // if a party yields at the same total its peer yielded at, no message
    // can ever unblock either side again.
    let mut yielded_at = [u64::MAX; 2];
    let mut current = ALICE;
    while alice_res.is_none() || bob_res.is_none() {
        if core.finished[current].get() {
            current = 1 - current;
            continue;
        }
        core.begin_run(current);
        let step: Result<(), CommError> = if current == ALICE {
            alice_fn(&links[ALICE], alice_in.clone()).map(|out| alice_res = Some(Ok(out)))
        } else {
            bob_fn(&links[BOB], bob_in.clone()).map(|out| bob_res = Some(Ok(out)))
        };
        match step {
            Ok(()) => core.finished[current].set(true),
            Err(CommError::WouldBlock) => {
                let total = core.total_committed();
                if yielded_at[1 - current] == total {
                    return Err(CommError::protocol(
                        "deadlock: both parties are blocked on a receive and no \
                         message is in flight",
                    ));
                }
                yielded_at[current] = total;
            }
            Err(real) => {
                // The party's link is now "closed" (it will never send
                // again). Keep scheduling the peer to completion so both
                // results exist, then resolve with the same real-error
                // preference as the threaded backend — the peer's own
                // error (e.g. a label mismatch on an already-queued
                // frame) must win or lose identically on both backends.
                core.finished[current].set(true);
                if current == ALICE {
                    alice_res = Some(Err(real));
                } else {
                    bob_res = Some(Err(real));
                }
            }
        }
        current = 1 - current;
    }
    let (alice, bob) = resolve_party_results(
        alice_res.expect("alice resolved"),
        bob_res.expect("bob resolved"),
    )?;
    Ok(ExecutionOutcome {
        alice,
        bob,
        transcript: core.into_transcript(),
    })
}

/// Runs a two-party protocol on the chosen executor. `alice_fn` and
/// `bob_fn` may only interact through their [`Link`]s; inputs must be
/// `Clone` (pass references — a re-run of a yielded party receives a
/// fresh clone) and the functions must be deterministic given their
/// input and received messages, which every protocol in this workspace
/// is by construction (explicit seeds).
///
/// `exec` is anything convertible into an [`Exec`]: a plain
/// [`ExecBackend`] runs both parties in this process, while
/// [`Exec::Remote`] runs only that context's party against a peer
/// process (see [`crate::remote`]). Outcomes — outputs *and*
/// transcripts — are bit-identical across all executors: the remote
/// path reconstructs the peer's transcript records from frame headers
/// and completes both output slots via its post-protocol output
/// exchange (which is why party outputs are [`Wire`] data).
///
/// # Errors
///
/// Returns the first [`CommError`] raised by either party, preferring a
/// party's own error over the [`CommError::ChannelClosed`] echo its peer
/// observes.
///
/// # Panics
///
/// Panics if a party function panics (the panic is propagated).
pub fn execute_with<'r, AIn, BIn, AOut, BOut, FA, FB>(
    exec: impl Into<Exec<'r>>,
    alice_in: AIn,
    bob_in: BIn,
    alice_fn: FA,
    bob_fn: FB,
) -> Result<ExecutionOutcome<AOut, BOut>, CommError>
where
    AIn: Send + Clone,
    BIn: Send + Clone,
    AOut: Send + Wire,
    BOut: Send + Wire,
    FA: Fn(&Link<'_>, AIn) -> Result<AOut, CommError> + Send,
    FB: Fn(&Link<'_>, BIn) -> Result<BOut, CommError> + Send,
{
    execute_split(exec, Some(alice_in), Some(bob_in), alice_fn, bob_fn)
}

/// Storage-split variant of [`execute_with`]: each party's input is an
/// `Option`, present only when this process actually holds it.
///
/// The in-process backends run both parties and therefore require both
/// inputs; a missing one is a typed protocol error. An [`Exec::Remote`]
/// executor runs only its context's side and requires only that side's
/// input — this is the entry point that lets a storage-split party
/// execute a protocol while holding nothing of its peer beyond public
/// metadata.
///
/// # Errors
///
/// Same as [`execute_with`], plus a [`CommError::Protocol`] when the
/// input for a side this process must run is `None`.
pub fn execute_split<'r, AIn, BIn, AOut, BOut, FA, FB>(
    exec: impl Into<Exec<'r>>,
    alice_in: Option<AIn>,
    bob_in: Option<BIn>,
    alice_fn: FA,
    bob_fn: FB,
) -> Result<ExecutionOutcome<AOut, BOut>, CommError>
where
    AIn: Send + Clone,
    BIn: Send + Clone,
    AOut: Send + Wire,
    BOut: Send + Wire,
    FA: Fn(&Link<'_>, AIn) -> Result<AOut, CommError> + Send,
    FB: Fn(&Link<'_>, BIn) -> Result<BOut, CommError> + Send,
{
    match exec.into() {
        Exec::Backend(backend) => {
            let alice_in = alice_in.ok_or_else(|| missing_input(Party::Alice))?;
            let bob_in = bob_in.ok_or_else(|| missing_input(Party::Bob))?;
            match backend {
                ExecBackend::Fused => execute_fused(alice_in, bob_in, alice_fn, bob_fn),
                ExecBackend::Threaded => execute_threaded(alice_in, bob_in, alice_fn, bob_fn),
            }
        }
        Exec::Remote(rc) => execute_remote(rc, alice_in, bob_in, alice_fn, bob_fn),
    }
}

/// Runs a two-party protocol on the default backend
/// ([`ExecBackend::Fused`]). See [`execute_with`] for the contract.
///
/// # Errors
///
/// Same as [`execute_with`].
pub fn execute<AIn, BIn, AOut, BOut, FA, FB>(
    alice_in: AIn,
    bob_in: BIn,
    alice_fn: FA,
    bob_fn: FB,
) -> Result<ExecutionOutcome<AOut, BOut>, CommError>
where
    AIn: Send + Clone,
    BIn: Send + Clone,
    AOut: Send + Wire,
    BOut: Send + Wire,
    FA: Fn(&Link<'_>, AIn) -> Result<AOut, CommError> + Send,
    FB: Fn(&Link<'_>, BIn) -> Result<BOut, CommError> + Send,
{
    execute_with(ExecBackend::default(), alice_in, bob_in, alice_fn, bob_fn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn backend_names_round_trip() {
        for backend in ExecBackend::ALL {
            assert_eq!(backend.as_str().parse::<ExecBackend>(), Ok(backend));
            assert_eq!(backend.to_string(), backend.as_str());
        }
        assert!("fibers".parse::<ExecBackend>().is_err());
        assert_eq!(ExecBackend::default(), ExecBackend::Fused);
    }

    #[test]
    fn fused_replays_parties_without_duplicating_messages() {
        // Alice must be restarted after her first recv yields; count her
        // runs and verify sends are committed exactly once anyway.
        let alice_runs = AtomicU32::new(0);
        let out = execute_with(
            ExecBackend::Fused,
            (),
            (),
            |link, ()| {
                alice_runs.fetch_add(1, Ordering::Relaxed);
                link.send(0, "ping", &7u64)?;
                let pong: u64 = link.recv("pong")?;
                link.send(2, "ping", &(pong + 1))?;
                let pong2: u64 = link.recv("pong")?;
                Ok(pong2)
            },
            |link, ()| {
                let a: u64 = link.recv("ping")?;
                link.send(1, "pong", &(a * 2))?;
                let b: u64 = link.recv("ping")?;
                link.send(3, "pong", &(b * 2))?;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out.alice, 30); // ((7*2)+1)*2
        assert_eq!(
            alice_runs.load(Ordering::Relaxed),
            3,
            "alice runs once per yield point plus the completing run"
        );
        assert_eq!(out.transcript.messages(), 4, "no duplicated sends");
        assert_eq!(out.transcript.rounds(), 4);
    }

    #[test]
    fn fused_detects_deadlock_instead_of_hanging() {
        let res: Result<ExecutionOutcome<u64, u64>, _> = execute_with(
            ExecBackend::Fused,
            (),
            (),
            |link, ()| link.recv("from-bob"),
            |link, ()| link.recv("from-alice"),
        );
        let err = res.unwrap_err();
        assert!(
            err.to_string().contains("deadlock"),
            "expected deadlock report, got {err:?}"
        );
    }

    #[test]
    fn double_error_resolution_matches_threaded_preference() {
        // Alice expects "y" but Bob sends "x" and then aborts: both
        // parties end with a real error. The threaded backend prefers
        // Alice's (resolve_party_results); the fused scheduler must not
        // short-circuit on whichever error it happens to hit first.
        let run = |backend| {
            execute_with::<(), (), u64, (), _, _>(
                backend,
                (),
                (),
                |link, ()| link.recv("y"),
                |link, ()| {
                    link.send(0, "x", &1u64)?;
                    Err(CommError::protocol("bob bad"))
                },
            )
            .unwrap_err()
        };
        let fused = run(ExecBackend::Fused);
        let threaded = run(ExecBackend::Threaded);
        assert_eq!(fused, threaded);
        assert_eq!(
            fused,
            CommError::LabelMismatch {
                expected: "y",
                got: "x"
            }
        );
    }

    #[test]
    fn fused_reports_channel_closed_when_peer_finishes_early() {
        let res: Result<ExecutionOutcome<(), u64>, _> = execute_with(
            ExecBackend::Fused,
            (),
            (),
            |_link, ()| Ok(()),
            |link, ()| link.recv("never-sent"),
        );
        assert_eq!(res.unwrap_err(), CommError::ChannelClosed);
    }

    #[test]
    fn would_block_never_escapes_on_success() {
        let out = execute_with(
            ExecBackend::Fused,
            (),
            (),
            |link, ()| {
                let v: u64 = link.recv("late")?;
                Ok(v)
            },
            |link, ()| {
                link.send(0, "late", &9u64)?;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(out.alice, 9);
    }

    #[test]
    fn scratch_buffers_are_pooled_across_executions() {
        let exchange = || {
            execute_with(
                ExecBackend::Fused,
                (),
                (),
                |link, ()| link.exchange(0, "xs", &vec![1u64, 2, 3]),
                |link, ()| link.exchange(0, "xs", &vec![4u64]),
            )
            .unwrap()
        };
        let first = exchange();
        let pooled = scratch_pool_len();
        assert!(pooled >= 2, "both payload buffers return to the pool");
        let second = exchange();
        assert_eq!(
            scratch_pool_len(),
            pooled,
            "steady state: reuses pooled buffers instead of growing the pool"
        );
        assert_eq!(first.transcript, second.transcript);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        pool_put(Vec::with_capacity(POOL_MAX_CAPACITY + 1));
        assert!(SCRATCH_POOL.with(|p| p.borrow().iter().all(|b| b.capacity() <= POOL_MAX_CAPACITY)));
    }

    #[test]
    fn fused_matches_threaded_on_an_asymmetric_chatty_protocol() {
        // A protocol exercising every scheduler path: simultaneous
        // exchange, alternation, bursts, and data-dependent lengths.
        let run = |backend| {
            execute_with(
                backend,
                3u64,
                4u64,
                |link, n| {
                    let theirs: u64 = link.exchange(0, "sizes", &n)?;
                    for i in 0..n {
                        link.send(1, "a-burst", &(i * i))?;
                    }
                    let mut total = 0u64;
                    for _ in 0..theirs {
                        total += link.recv::<u64>("b-burst")?;
                    }
                    link.send(3, "total", &total)?;
                    Ok(total)
                },
                |link, n| {
                    let theirs: u64 = link.exchange(0, "sizes", &n)?;
                    let mut got = Vec::new();
                    for _ in 0..theirs {
                        got.push(link.recv::<u64>("a-burst")?);
                    }
                    for i in 0..n {
                        link.send(2, "b-burst", &(i + 10))?;
                    }
                    let total: u64 = link.recv("total")?;
                    Ok((got, total))
                },
            )
            .unwrap()
        };
        let fused = run(ExecBackend::Fused);
        let threaded = run(ExecBackend::Threaded);
        assert_eq!(fused, threaded);
        assert_eq!(fused.transcript.records, threaded.transcript.records);
    }
}
