//! Deterministic randomness: seeds, substreams, and public coins.
//!
//! Every source of randomness in the library flows from an explicit
//! [`Seed`]. Seeds can be split into labeled substreams with
//! [`Seed::derive`], so that e.g. the sketch matrix, the row-sampling
//! coins, and the workload generator never share a stream. Public coins
//! (shared by both parties without being billed to the transcript) are
//! simply a `Seed` handed to both party closures.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 64-bit seed from which labeled substreams and RNGs are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

/// SplitMix64 finalizer; used to mix labels into seeds.
#[inline]
#[must_use]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Seed {
    /// Derives a child seed for the given label. Distinct labels produce
    /// (with overwhelming probability) independent-looking substreams, and
    /// derivation is deterministic.
    #[must_use]
    pub fn derive(self, label: &str) -> Seed {
        let mut h = self.0 ^ 0x51_7c_c1_b7_27_22_0a_95;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        Seed(splitmix64(h))
    }

    /// Derives a child seed for the given index (for per-item streams).
    #[must_use]
    pub fn derive_u64(self, index: u64) -> Seed {
        Seed(splitmix64(
            self.0 ^ splitmix64(index ^ 0xa076_1d64_78bd_642f),
        ))
    }

    /// Builds a standard RNG seeded from this seed.
    #[must_use]
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.0)
    }

    /// A cheap stateless uniform draw in `[0, 1)` keyed by `(self, index)`.
    ///
    /// Used for *nested* subsampling (Algorithm 2 of the paper): an item's
    /// survival level must be a deterministic function of the item so that
    /// the sampled matrices `A⁰ ⊇ A¹ ⊇ A² ⊇ …` are nested.
    #[must_use]
    pub fn unit_at(self, index: u64) -> f64 {
        let bits = splitmix64(self.0 ^ splitmix64(index.wrapping_add(0x9e37_79b9)));
        // 53 random mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let s = Seed(42);
        assert_eq!(s.derive("sketch"), s.derive("sketch"));
        assert_ne!(s.derive("sketch"), s.derive("sample"));
        assert_ne!(s.derive("a"), Seed(43).derive("a"));
    }

    #[test]
    fn derive_u64_distinct() {
        let s = Seed(7);
        let a = s.derive_u64(0);
        let b = s.derive_u64(1);
        assert_ne!(a, b);
        assert_eq!(a, s.derive_u64(0));
    }

    #[test]
    fn rng_reproducible() {
        let mut r1 = Seed(9).rng();
        let mut r2 = Seed(9).rng();
        let x1: u64 = r1.gen();
        let x2: u64 = r2.gen();
        assert_eq!(x1, x2);
    }

    #[test]
    fn unit_at_in_range_and_spread() {
        let s = Seed(1234);
        let mut sum = 0.0;
        let n = 10_000u64;
        for i in 0..n {
            let u = s.unit_at(i);
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn unit_at_deterministic() {
        let s = Seed(5);
        assert_eq!(s.unit_at(33).to_bits(), s.unit_at(33).to_bits());
    }
}
