//! A network cost model: why rounds matter.
//!
//! The paper optimizes two axes at once — total bits and rounds — because
//! real deployments pay `latency · rounds + bits / bandwidth`. This module
//! prices a [`Transcript`] under a [`NetworkModel`], which is what makes
//! the tradeoffs concrete: Algorithm 1 spends one extra round to save a
//! `1/ε` factor of bits, and whether that wins depends on the link.
//!
//! ```
//! use mpest_comm::{MsgRecord, NetworkModel, Party, Transcript};
//!
//! let t = Transcript {
//!     records: vec![MsgRecord { from: Party::Alice, round: 0, label: "x", bits: 8_000_000 }],
//! };
//! // A 10 Gbit/s datacenter link with 0.1 ms RTT:
//! let dc = NetworkModel::datacenter();
//! // A 100 Mbit/s WAN with 50 ms RTT:
//! let wan = NetworkModel::wan();
//! assert!(dc.seconds(&t) < wan.seconds(&t));
//! ```

use crate::transcript::Transcript;

/// A simple latency/bandwidth link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Per-round latency in seconds (one round = one synchronized phase;
    /// simultaneous messages within a round share the latency charge).
    pub round_latency_s: f64,
    /// Link bandwidth in bits per second (shared by both directions; the
    /// two parties' messages within a round are charged sequentially,
    /// a conservative half-duplex assumption).
    pub bits_per_second: f64,
}

impl NetworkModel {
    /// A datacenter link: 0.1 ms RTT, 10 Gbit/s.
    #[must_use]
    pub fn datacenter() -> Self {
        Self {
            round_latency_s: 1e-4,
            bits_per_second: 1e10,
        }
    }

    /// A wide-area link: 50 ms RTT, 100 Mbit/s.
    #[must_use]
    pub fn wan() -> Self {
        Self {
            round_latency_s: 0.05,
            bits_per_second: 1e8,
        }
    }

    /// A mobile/edge link: 200 ms RTT, 5 Mbit/s.
    #[must_use]
    pub fn mobile() -> Self {
        Self {
            round_latency_s: 0.2,
            bits_per_second: 5e6,
        }
    }

    /// Estimated wall-clock seconds to play out a transcript:
    /// `rounds · latency + total_bits / bandwidth`.
    #[must_use]
    pub fn seconds(&self, t: &Transcript) -> f64 {
        f64::from(t.rounds()) * self.round_latency_s + t.total_bits() as f64 / self.bits_per_second
    }

    /// The bit volume at which one extra round pays for itself: a
    /// protocol may spend up to this many *extra* bits per round saved
    /// before the round saving stops being worth it.
    #[must_use]
    pub fn bits_per_round(&self) -> f64 {
        self.round_latency_s * self.bits_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transcript::{MsgRecord, Party};

    fn transcript(bits_per_round: &[u64]) -> Transcript {
        Transcript {
            records: bits_per_round
                .iter()
                .enumerate()
                .map(|(r, &bits)| MsgRecord {
                    from: if r % 2 == 0 { Party::Alice } else { Party::Bob },
                    round: r as u16,
                    label: "m",
                    bits,
                })
                .collect(),
        }
    }

    #[test]
    fn pricing_formula() {
        let t = transcript(&[1_000_000, 1_000_000]);
        let m = NetworkModel {
            round_latency_s: 0.01,
            bits_per_second: 1e6,
        };
        // 2 rounds * 10ms + 2Mbit / 1Mbps = 0.02 + 2.0
        assert!((m.seconds(&t) - 2.02).abs() < 1e-9);
    }

    #[test]
    fn rounds_vs_bits_tradeoff_flips_with_the_link() {
        // Protocol X: 1 round, 100 Mbit. Protocol Y: 2 rounds, 10 Mbit.
        let x = transcript(&[100_000_000]);
        let y = transcript(&[5_000_000, 5_000_000]);
        // On a fat datacenter pipe, bits are cheap and X's single round
        // wins only if latency dominates — it doesn't at 0.1 ms.
        let dc = NetworkModel::datacenter();
        assert!(dc.seconds(&y) < dc.seconds(&x));
        // On a slow mobile link, Y's 10x bit saving dwarfs the extra RTT.
        let mobile = NetworkModel::mobile();
        assert!(mobile.seconds(&y) < mobile.seconds(&x));
        // With extreme latency and huge bandwidth, fewer rounds win.
        let satellite = NetworkModel {
            round_latency_s: 2.0,
            bits_per_second: 1e12,
        };
        assert!(satellite.seconds(&x) < satellite.seconds(&y));
    }

    #[test]
    fn break_even_bits() {
        let m = NetworkModel::wan();
        assert!((m.bits_per_round() - 5e6).abs() < 1.0);
    }

    #[test]
    fn empty_transcript_is_free() {
        let t = Transcript::default();
        assert_eq!(NetworkModel::wan().seconds(&t), 0.0);
    }
}
