//! Protocol execution substrate: the party-facing [`Link`] handle and the
//! reference [`Threaded`](crate::ExecBackend::Threaded) executor.
//!
//! A [`Link`] is one party's handle to the conversation: [`Link::send`]
//! encodes a [`Wire`] value into a byte frame, records its exact bit
//! count in the transcript, and delivers it to the peer; [`Link::recv`]
//! obtains the next frame, verifies the expected label, and decodes.
//! Messages within the same annotated round may flow in both directions
//! (simultaneous messages), matching the round convention of
//! communication complexity.
//!
//! How frames actually move depends on the executor backend (see
//! [`crate::exec`]): the *threaded* backend in this module runs Alice and
//! Bob as scoped threads linked by channels (the reference
//! implementation), while the *fused* backend runs both parties
//! cooperatively on the calling thread. Protocol code is written against
//! `Link` only and cannot observe the difference: outputs and transcripts
//! are bit-identical across backends.

use crate::bits::{BitReader, BitWriter};
use crate::error::CommError;
use crate::exec::FusedCore;
use crate::remote::{decode_remote, encode_and_send, RemoteEndpoint};
use crate::transcript::{MsgRecord, Party, Transcript};
use crate::wire::Wire;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// A frame on the wire: label + packed payload. The round annotation lives
/// only in the transcript (it is bookkeeping, not information sent).
#[derive(Debug)]
pub(crate) struct Frame {
    pub(crate) label: &'static str,
    pub(crate) bits: u64,
    pub(crate) payload: Vec<u8>,
}

/// Verifies a frame's label and decodes its payload — the one decode path
/// shared by every backend (and by replayed receives in the fused one).
pub(crate) fn decode_frame<T: Wire>(frame: &Frame, expect: &'static str) -> Result<T, CommError> {
    if frame.label != expect {
        return Err(CommError::LabelMismatch {
            expected: expect,
            got: frame.label,
        });
    }
    let mut r = BitReader::new(&frame.payload);
    let value = T::decode(&mut r)?;
    debug_assert!(
        r.bits_read() == frame.bits,
        "decoder for {expect:?} consumed {} of {} bits",
        r.bits_read(),
        frame.bits
    );
    Ok(value)
}

/// Canonicalizes transcript record order: simultaneous messages (both
/// directions within one round) would otherwise land in scheduling order.
/// The stable sort keys on (round, party) and preserves each sender's own
/// deterministic in-round order, so equal executions — on *any* backend —
/// yield equal transcripts.
pub(crate) fn canonicalize(records: &mut [MsgRecord]) {
    records.sort_by_key(|r| (r.round, r.from == Party::Bob));
}

/// Shared transcript recorder for the threaded backend. Messages are
/// recorded in global send order and canonicalized afterwards.
#[derive(Debug, Default)]
struct Recorder {
    records: Mutex<Vec<MsgRecord>>,
}

impl Recorder {
    fn record(&self, from: Party, round: u16, label: &'static str, bits: u64) {
        self.records.lock().push(MsgRecord {
            from,
            round,
            label,
            bits,
        });
    }
}

/// One party's handle to the conversation.
pub struct Link<'a> {
    side: Party,
    inner: LinkInner<'a>,
}

/// Backend-specific frame transport behind a [`Link`].
enum LinkInner<'a> {
    /// Crossbeam channels to a peer thread plus the shared recorder.
    Threaded {
        tx: Sender<Frame>,
        rx: Receiver<Frame>,
        recorder: &'a Recorder,
    },
    /// Single-thread cooperative state shared with the peer.
    Fused { core: &'a FusedCore },
    /// This party runs alone in this process; the peer is behind a framed
    /// byte transport in another process (see [`crate::remote`]).
    Remote { ep: &'a dyn RemoteEndpoint },
}

impl<'a> Link<'a> {
    fn threaded(
        side: Party,
        tx: Sender<Frame>,
        rx: Receiver<Frame>,
        recorder: &'a Recorder,
    ) -> Self {
        Self {
            side,
            inner: LinkInner::Threaded { tx, rx, recorder },
        }
    }

    pub(crate) fn fused(side: Party, core: &'a FusedCore) -> Self {
        Self {
            side,
            inner: LinkInner::Fused { core },
        }
    }

    pub(crate) fn remote(ep: &'a dyn RemoteEndpoint) -> Self {
        Self {
            side: ep.side(),
            inner: LinkInner::Remote { ep },
        }
    }

    /// The identity of the party holding this link.
    #[must_use]
    pub fn side(&self) -> Party {
        self.side
    }

    /// Encodes and sends a message in the given protocol round.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::ChannelClosed`] if the peer has terminated.
    pub fn send<T: Wire>(
        &self,
        round: u16,
        label: &'static str,
        value: &T,
    ) -> Result<(), CommError> {
        match &self.inner {
            LinkInner::Threaded { tx, recorder, .. } => {
                let mut w = BitWriter::new();
                value.encode(&mut w);
                let (payload, bits) = w.finish_vec();
                recorder.record(self.side, round, label, bits);
                tx.send(Frame {
                    label,
                    bits,
                    payload,
                })
                .map_err(|_| CommError::ChannelClosed)
            }
            LinkInner::Fused { core } => core.send(self.side, round, label, value),
            LinkInner::Remote { ep } => encode_and_send(*ep, round, label, value),
        }
    }

    /// Receives and decodes the next message, verifying its label.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::ChannelClosed`] if the peer hung up,
    /// [`CommError::LabelMismatch`] if the protocol state machines are out
    /// of sync, or [`CommError::Decode`] on a malformed payload.
    pub fn recv<T: Wire>(&self, expect_label: &'static str) -> Result<T, CommError> {
        match &self.inner {
            LinkInner::Threaded { rx, .. } => {
                let frame = rx.recv().map_err(|_| CommError::ChannelClosed)?;
                decode_frame(&frame, expect_label)
            }
            LinkInner::Fused { core } => core.recv(self.side, expect_label),
            LinkInner::Remote { ep } => {
                let frame = ep.recv_expect(expect_label)?;
                decode_remote(&frame)
            }
        }
    }

    /// Sends `value` and receives the peer's message under the same label —
    /// the "simultaneous exchange" idiom used by several protocols (both
    /// messages belong to the same round).
    ///
    /// # Errors
    ///
    /// Propagates any send/receive error.
    pub fn exchange<T: Wire>(
        &self,
        round: u16,
        label: &'static str,
        value: &T,
    ) -> Result<T, CommError> {
        self.send(round, label, value)?;
        self.recv(label)
    }
}

/// The result of running a protocol: both parties' outputs plus the
/// bit-exact transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome<AOut, BOut> {
    /// Alice's local output.
    pub alice: AOut,
    /// Bob's local output.
    pub bob: BOut,
    /// Everything that crossed the wire.
    pub transcript: Transcript,
}

/// Resolves the two parties' results the way the caller sees them: a
/// "real" error is preferred over the [`CommError::ChannelClosed`] echo
/// the peer observes when its counterpart aborts.
pub(crate) fn resolve_party_results<AOut, BOut>(
    a_res: Result<AOut, CommError>,
    b_res: Result<BOut, CommError>,
) -> Result<(AOut, BOut), CommError> {
    match (a_res, b_res) {
        (Ok(a), Ok(b)) => Ok((a, b)),
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => Err(e),
        (Err(ea), Err(eb)) => Err(if ea == CommError::ChannelClosed {
            eb
        } else {
            ea
        }),
    }
}

/// Runs a two-party protocol on the reference threaded backend:
/// `alice_fn` and `bob_fn` execute on separate scoped threads and may
/// only interact through their [`Link`]s.
///
/// # Errors
///
/// Returns the first [`CommError`] raised by either party. If one party
/// errors, the other typically observes [`CommError::ChannelClosed`]; the
/// originating error is preferred.
///
/// # Panics
///
/// Panics if a party function panics (the panic is propagated).
pub(crate) fn execute_threaded<AIn, BIn, AOut, BOut, FA, FB>(
    alice_in: AIn,
    bob_in: BIn,
    alice_fn: FA,
    bob_fn: FB,
) -> Result<ExecutionOutcome<AOut, BOut>, CommError>
where
    AIn: Send,
    BIn: Send,
    AOut: Send,
    BOut: Send,
    FA: FnOnce(&Link<'_>, AIn) -> Result<AOut, CommError> + Send,
    FB: FnOnce(&Link<'_>, BIn) -> Result<BOut, CommError> + Send,
{
    let recorder = Recorder::default();
    let (a_tx, b_rx) = unbounded::<Frame>();
    let (b_tx, a_rx) = unbounded::<Frame>();

    let (a_res, b_res) = std::thread::scope(|scope| {
        let rec = &recorder;
        let a_handle = scope.spawn(move || {
            let link = Link::threaded(Party::Alice, a_tx, a_rx, rec);
            alice_fn(&link, alice_in)
        });
        let b_handle = scope.spawn(move || {
            let link = Link::threaded(Party::Bob, b_tx, b_rx, rec);
            bob_fn(&link, bob_in)
        });
        (
            a_handle.join().expect("alice thread panicked"),
            b_handle.join().expect("bob thread panicked"),
        )
    });

    let (alice, bob) = resolve_party_results(a_res, b_res)?;
    let mut records = recorder.records.into_inner();
    canonicalize(&mut records);
    Ok(ExecutionOutcome {
        alice,
        bob,
        transcript: Transcript { records },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, execute_with, ExecBackend};
    use crate::wire::FixedU64s;

    /// Every behavioral test below runs on both backends: the executor is
    /// part of the contract, not an implementation detail.
    fn on_both(check: impl Fn(ExecBackend)) {
        for backend in ExecBackend::ALL {
            check(backend);
        }
    }

    #[test]
    fn one_round_protocol() {
        on_both(|backend| {
            let out = execute_with(
                backend,
                10u64,
                32u64,
                |link, a| {
                    link.send(0, "value", &a)?;
                    Ok(a)
                },
                |link, b| {
                    let a: u64 = link.recv("value")?;
                    Ok(a + b)
                },
            )
            .unwrap();
            assert_eq!(out.bob, 42);
            assert_eq!(out.transcript.rounds(), 1);
            assert_eq!(out.transcript.messages(), 1);
            assert_eq!(out.transcript.bits_from(Party::Alice), 8);
            assert_eq!(out.transcript.bits_from(Party::Bob), 0);
        });
    }

    #[test]
    fn multi_round_alternation() {
        on_both(|backend| {
            let out = execute_with(
                backend,
                (),
                (),
                |link, ()| {
                    link.send(0, "ping", &1u64)?;
                    let pong: u64 = link.recv("pong")?;
                    link.send(2, "done", &(pong + 1))?;
                    Ok(pong)
                },
                |link, ()| {
                    let ping: u64 = link.recv("ping")?;
                    link.send(1, "pong", &(ping * 10))?;
                    let done: u64 = link.recv("done")?;
                    Ok(done)
                },
            )
            .unwrap();
            assert_eq!(out.alice, 10);
            assert_eq!(out.bob, 11);
            assert_eq!(out.transcript.rounds(), 3);
        });
    }

    #[test]
    fn simultaneous_exchange_is_one_round() {
        on_both(|backend| {
            let out = execute_with(
                backend,
                vec![1u64, 2, 3],
                vec![9u64],
                |link, mine| link.exchange(0, "weights", &mine),
                |link, mine| link.exchange(0, "weights", &mine),
            )
            .unwrap();
            assert_eq!(out.alice, vec![9]);
            assert_eq!(out.bob, vec![1, 2, 3]);
            assert_eq!(out.transcript.rounds(), 1);
            assert_eq!(out.transcript.messages(), 2);
        });
    }

    #[test]
    fn label_mismatch_detected() {
        on_both(|backend| {
            let res = execute_with(
                backend,
                (),
                (),
                |link, ()| link.send(0, "alpha", &1u64),
                |link, ()| {
                    let _: u64 = link.recv("beta")?;
                    Ok(())
                },
            );
            match res {
                Err(CommError::LabelMismatch { expected, got }) => {
                    assert_eq!(expected, "beta");
                    assert_eq!(got, "alpha");
                }
                other => panic!("expected label mismatch, got {other:?}"),
            }
        });
    }

    #[test]
    fn protocol_error_propagates() {
        on_both(|backend| {
            let res: Result<ExecutionOutcome<(), ()>, _> = execute_with(
                backend,
                (),
                (),
                |_link, ()| Err(CommError::protocol("alice aborted")),
                |link, ()| {
                    // Bob waits forever -> observes channel closed; the
                    // orchestrator should surface Alice's real error.
                    let _: u64 = link.recv("never")?;
                    Ok(())
                },
            );
            assert_eq!(res.unwrap_err(), CommError::protocol("alice aborted"));
        });
    }

    #[test]
    fn transcript_bits_match_payload_encoding() {
        let ids = FixedU64s::for_dim(256, vec![1, 2, 3, 4, 5]);
        let expected_bits = ids.encoded_bits();
        on_both(|backend| {
            let out = execute_with(
                backend,
                ids.clone(),
                (),
                |link, v| link.send(0, "ids", &v),
                |link, ()| {
                    let v: FixedU64s = link.recv("ids")?;
                    Ok(v)
                },
            )
            .unwrap();
            assert_eq!(out.bob, ids);
            assert_eq!(out.transcript.total_bits(), expected_bits);
        });
    }

    #[test]
    fn many_messages_ordering_per_direction() {
        on_both(|backend| {
            let out = execute_with(
                backend,
                (),
                (),
                |link, ()| {
                    for i in 0..100u64 {
                        link.send(0, "seq", &i)?;
                    }
                    Ok(())
                },
                |link, ()| {
                    let mut got = Vec::new();
                    for _ in 0..100 {
                        got.push(link.recv::<u64>("seq")?);
                    }
                    Ok(got)
                },
            )
            .unwrap();
            assert_eq!(out.bob, (0..100).collect::<Vec<_>>());
        });
    }

    #[test]
    fn default_execute_is_fused() {
        // The plain `execute` entry point runs on the default backend and
        // must agree with an explicit threaded run bit-for-bit.
        let run = |backend: Option<ExecBackend>| {
            let alice = |link: &Link<'_>, a: u64| {
                link.send(0, "a", &a)?;
                let b: u64 = link.recv("b")?;
                Ok(a + b)
            };
            let bob = |link: &Link<'_>, b: u64| {
                let a: u64 = link.recv("a")?;
                link.send(1, "b", &(b * a))?;
                Ok(b)
            };
            match backend {
                None => execute(3u64, 5u64, alice, bob).unwrap(),
                Some(be) => execute_with(be, 3u64, 5u64, alice, bob).unwrap(),
            }
        };
        let default = run(None);
        assert_eq!(default, run(Some(ExecBackend::Fused)));
        assert_eq!(default, run(Some(ExecBackend::Threaded)));
    }
}
