//! Protocol execution: two party functions on two threads, linked by
//! byte-level channels, with a shared transcript recorder.
//!
//! [`execute`] spawns Alice and Bob as scoped threads. Each receives a
//! [`Link`] through which *all* interaction flows: [`Link::send`] encodes a
//! [`Wire`] value into a byte frame, records its exact bit count in the
//! transcript, and pushes it to the peer; [`Link::recv`] blocks for the
//! next frame, verifies the expected label, and decodes. Messages within
//! the same annotated round may flow in both directions (simultaneous
//! messages), matching the round convention of communication complexity.

use crate::bits::{BitReader, BitWriter};
use crate::error::CommError;
use crate::transcript::{MsgRecord, Party, Transcript};
use crate::wire::Wire;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// A frame on the wire: label + packed payload. The round annotation lives
/// only in the transcript (it is bookkeeping, not information sent).
#[derive(Debug)]
struct Frame {
    label: &'static str,
    bits: u64,
    payload: Bytes,
}

/// Shared transcript recorder. Messages are recorded in global send order;
/// the protocols in this workspace have a deterministic message order, so
/// transcripts are reproducible.
#[derive(Debug, Default)]
struct Recorder {
    records: Mutex<Vec<MsgRecord>>,
}

impl Recorder {
    fn record(&self, from: Party, round: u16, label: &'static str, bits: u64) {
        self.records.lock().push(MsgRecord {
            from,
            round,
            label,
            bits,
        });
    }
}

/// One party's handle to the conversation.
pub struct Link<'a> {
    side: Party,
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    recorder: &'a Recorder,
}

impl<'a> Link<'a> {
    /// The identity of the party holding this link.
    #[must_use]
    pub fn side(&self) -> Party {
        self.side
    }

    /// Encodes and sends a message in the given protocol round.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::ChannelClosed`] if the peer has terminated.
    pub fn send<T: Wire>(
        &self,
        round: u16,
        label: &'static str,
        value: &T,
    ) -> Result<(), CommError> {
        let mut w = BitWriter::new();
        value.encode(&mut w);
        let (payload, bits) = w.finish();
        self.recorder.record(self.side, round, label, bits);
        self.tx
            .send(Frame {
                label,
                bits,
                payload,
            })
            .map_err(|_| CommError::ChannelClosed)
    }

    /// Receives and decodes the next message, verifying its label.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::ChannelClosed`] if the peer hung up,
    /// [`CommError::LabelMismatch`] if the protocol state machines are out
    /// of sync, or [`CommError::Decode`] on a malformed payload.
    pub fn recv<T: Wire>(&self, expect_label: &'static str) -> Result<T, CommError> {
        let frame = self.rx.recv().map_err(|_| CommError::ChannelClosed)?;
        if frame.label != expect_label {
            return Err(CommError::LabelMismatch {
                expected: expect_label.to_string(),
                got: frame.label.to_string(),
            });
        }
        let mut r = BitReader::new(&frame.payload);
        let value = T::decode(&mut r)?;
        debug_assert!(
            r.bits_read() == frame.bits,
            "decoder for {expect_label:?} consumed {} of {} bits",
            r.bits_read(),
            frame.bits
        );
        Ok(value)
    }

    /// Sends `value` and receives the peer's message under the same label —
    /// the "simultaneous exchange" idiom used by several protocols (both
    /// messages belong to the same round).
    ///
    /// # Errors
    ///
    /// Propagates any send/receive error.
    pub fn exchange<T: Wire>(
        &self,
        round: u16,
        label: &'static str,
        value: &T,
    ) -> Result<T, CommError> {
        self.send(round, label, value)?;
        self.recv(label)
    }
}

/// The result of running a protocol: both parties' outputs plus the
/// bit-exact transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome<AOut, BOut> {
    /// Alice's local output.
    pub alice: AOut,
    /// Bob's local output.
    pub bob: BOut,
    /// Everything that crossed the wire.
    pub transcript: Transcript,
}

/// Runs a two-party protocol. `alice_fn` and `bob_fn` execute on separate
/// threads and may only interact through their [`Link`]s.
///
/// # Errors
///
/// Returns the first [`CommError`] raised by either party. If one party
/// errors, the other typically observes [`CommError::ChannelClosed`]; the
/// originating error is preferred.
///
/// # Panics
///
/// Panics if a party function panics (the panic is propagated).
pub fn execute<AIn, BIn, AOut, BOut, FA, FB>(
    alice_in: AIn,
    bob_in: BIn,
    alice_fn: FA,
    bob_fn: FB,
) -> Result<ExecutionOutcome<AOut, BOut>, CommError>
where
    AIn: Send,
    BIn: Send,
    AOut: Send,
    BOut: Send,
    FA: FnOnce(&Link<'_>, AIn) -> Result<AOut, CommError> + Send,
    FB: FnOnce(&Link<'_>, BIn) -> Result<BOut, CommError> + Send,
{
    let recorder = Recorder::default();
    let (a_tx, b_rx) = unbounded::<Frame>();
    let (b_tx, a_rx) = unbounded::<Frame>();

    let alice_link = Link {
        side: Party::Alice,
        tx: a_tx,
        rx: a_rx,
        recorder: &recorder,
    };
    let bob_link = Link {
        side: Party::Bob,
        tx: b_tx,
        rx: b_rx,
        recorder: &recorder,
    };

    let (a_res, b_res) = std::thread::scope(|scope| {
        let a_handle = scope.spawn(|| {
            let link = alice_link;
            alice_fn(&link, alice_in)
        });
        let b_handle = scope.spawn(|| {
            let link = bob_link;
            bob_fn(&link, bob_in)
        });
        (
            a_handle.join().expect("alice thread panicked"),
            b_handle.join().expect("bob thread panicked"),
        )
    });

    // Prefer a "real" error over the ChannelClosed echo the peer sees.
    let (alice, bob) = match (a_res, b_res) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), Ok(_)) | (Ok(_), Err(e)) => return Err(e),
        (Err(ea), Err(eb)) => {
            return Err(if ea == CommError::ChannelClosed {
                eb
            } else {
                ea
            });
        }
    };

    // Canonicalize record order: simultaneous messages (both directions
    // within one round) otherwise land in thread-scheduling order, which
    // would make transcripts nondeterministic. The stable sort keys on
    // (round, party) and preserves each sender's own deterministic
    // in-round order, so equal executions yield equal transcripts.
    let mut records = recorder.records.into_inner();
    records.sort_by_key(|r| (r.round, r.from == Party::Bob));
    let transcript = Transcript { records };
    Ok(ExecutionOutcome {
        alice,
        bob,
        transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::FixedU64s;

    #[test]
    fn one_round_protocol() {
        let out = execute(
            10u64,
            32u64,
            |link, a| {
                link.send(0, "value", &a)?;
                Ok(a)
            },
            |link, b| {
                let a: u64 = link.recv("value")?;
                Ok(a + b)
            },
        )
        .unwrap();
        assert_eq!(out.bob, 42);
        assert_eq!(out.transcript.rounds(), 1);
        assert_eq!(out.transcript.messages(), 1);
        assert_eq!(out.transcript.bits_from(Party::Alice), 8);
        assert_eq!(out.transcript.bits_from(Party::Bob), 0);
    }

    #[test]
    fn multi_round_alternation() {
        let out = execute(
            (),
            (),
            |link, ()| {
                link.send(0, "ping", &1u64)?;
                let pong: u64 = link.recv("pong")?;
                link.send(2, "done", &(pong + 1))?;
                Ok(pong)
            },
            |link, ()| {
                let ping: u64 = link.recv("ping")?;
                link.send(1, "pong", &(ping * 10))?;
                let done: u64 = link.recv("done")?;
                Ok(done)
            },
        )
        .unwrap();
        assert_eq!(out.alice, 10);
        assert_eq!(out.bob, 11);
        assert_eq!(out.transcript.rounds(), 3);
    }

    #[test]
    fn simultaneous_exchange_is_one_round() {
        let out = execute(
            vec![1u64, 2, 3],
            vec![9u64],
            |link, mine| link.exchange(0, "weights", &mine),
            |link, mine| link.exchange(0, "weights", &mine),
        )
        .unwrap();
        assert_eq!(out.alice, vec![9]);
        assert_eq!(out.bob, vec![1, 2, 3]);
        assert_eq!(out.transcript.rounds(), 1);
        assert_eq!(out.transcript.messages(), 2);
    }

    #[test]
    fn label_mismatch_detected() {
        let res = execute(
            (),
            (),
            |link, ()| link.send(0, "alpha", &1u64),
            |link, ()| {
                let _: u64 = link.recv("beta")?;
                Ok(())
            },
        );
        match res {
            Err(CommError::LabelMismatch { expected, got }) => {
                assert_eq!(expected, "beta");
                assert_eq!(got, "alpha");
            }
            other => panic!("expected label mismatch, got {other:?}"),
        }
    }

    #[test]
    fn protocol_error_propagates() {
        let res: Result<ExecutionOutcome<(), ()>, _> = execute(
            (),
            (),
            |_link, ()| Err(CommError::protocol("alice aborted")),
            |link, ()| {
                // Bob waits forever -> observes channel closed; the
                // orchestrator should surface Alice's real error.
                let _: u64 = link.recv("never")?;
                Ok(())
            },
        );
        assert_eq!(res.unwrap_err(), CommError::protocol("alice aborted"));
    }

    #[test]
    fn transcript_bits_match_payload_encoding() {
        let ids = FixedU64s::for_dim(256, vec![1, 2, 3, 4, 5]);
        let expected_bits = ids.encoded_bits();
        let out = execute(
            ids.clone(),
            (),
            |link, v| link.send(0, "ids", &v),
            |link, ()| {
                let v: FixedU64s = link.recv("ids")?;
                Ok(v)
            },
        )
        .unwrap();
        assert_eq!(out.bob, ids);
        assert_eq!(out.transcript.total_bits(), expected_bits);
    }

    #[test]
    fn many_messages_ordering_per_direction() {
        let out = execute(
            (),
            (),
            |link, ()| {
                for i in 0..100u64 {
                    link.send(0, "seq", &i)?;
                }
                Ok(())
            },
            |link, ()| {
                let mut got = Vec::new();
                for _ in 0..100 {
                    got.push(link.recv::<u64>("seq")?);
                }
                Ok(got)
            },
        )
        .unwrap();
        assert_eq!(out.bob, (0..100).collect::<Vec<_>>());
    }
}
