//! The [`Wire`] trait: typed, self-describing message payloads.
//!
//! Everything a protocol sends must implement [`Wire`], which serializes
//! through [`BitWriter`] / [`BitReader`]. Encodings are chosen so that the
//! transcript bit counts reflect the information content the paper bills:
//! indices cost `⌈log₂ dim⌉` bits via [`FixedU64s`], counts and integer
//! values cost varint/zigzag bits, and real-valued sketch entries cost 64
//! bits per word.

use crate::bits::{width_for, BitReader, BitWriter};
use crate::error::CommError;
use crate::remote::intern_label;
use crate::transcript::{BatchAccounting, MsgRecord, Party, Transcript};

/// A value that can cross the wire.
pub trait Wire: Sized {
    /// Serializes `self` into the writer.
    fn encode(&self, w: &mut BitWriter);

    /// Deserializes a value from the reader.
    ///
    /// # Errors
    ///
    /// Returns [`CommError::Decode`] on malformed or truncated input.
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError>;

    /// Convenience: the exact encoded size of `self` in bits.
    fn encoded_bits(&self) -> u64 {
        let mut w = BitWriter::new();
        self.encode(&mut w);
        w.bits_written()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut BitWriter) {
        w.write_bit(*self);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        r.read_bit()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(*self);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        r.read_varint()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(u64::from(*self));
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        u32::try_from(r.read_varint()?).map_err(|_| CommError::decode("u32 overflow"))
    }
}

impl Wire for u16 {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(u64::from(*self));
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        u16::try_from(r.read_varint()?).map_err(|_| CommError::decode("u16 overflow"))
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut BitWriter) {
        w.write_zigzag(*self);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        r.read_zigzag()
    }
}

impl Wire for f64 {
    fn encode(&self, w: &mut BitWriter) {
        w.write_f64(*self);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        r.read_f64()
    }
}

impl Wire for i128 {
    fn encode(&self, w: &mut BitWriter) {
        // Zigzag into u128, then two u64 varints (low word first) — small
        // magnitudes cost the same as an i64 zigzag plus one byte.
        let mapped = ((self << 1) ^ (self >> 127)) as u128;
        w.write_varint(mapped as u64);
        w.write_varint((mapped >> 64) as u64);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let low = u128::from(r.read_varint()?);
        let high = u128::from(r.read_varint()?);
        let mapped = (high << 64) | low;
        Ok(((mapped >> 1) as i128) ^ -((mapped & 1) as i128))
    }
}

impl Wire for String {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.len() as u64);
        for &b in self.as_bytes() {
            w.write_bits(u64::from(b), 8);
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("string length overflow"))?;
        let mut bytes = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            bytes.push(r.read_bits(8)? as u8);
        }
        String::from_utf8(bytes).map_err(|_| CommError::decode("string is not UTF-8"))
    }
}

impl Wire for Party {
    fn encode(&self, w: &mut BitWriter) {
        w.write_bit(matches!(self, Party::Bob));
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(if r.read_bit()? {
            Party::Bob
        } else {
            Party::Alice
        })
    }
}

impl Wire for MsgRecord {
    fn encode(&self, w: &mut BitWriter) {
        self.from.encode(w);
        w.write_varint(u64::from(self.round));
        self.label.to_owned().encode(w);
        w.write_varint(self.bits);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let from = Party::decode(r)?;
        let round = u16::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("round overflows u16"))?;
        let label = intern_label(&String::decode(r)?)?;
        let bits = r.read_varint()?;
        Ok(Self {
            from,
            round,
            label,
            bits,
        })
    }
}

impl Wire for Transcript {
    fn encode(&self, w: &mut BitWriter) {
        self.records.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(Self {
            records: Vec::decode(r)?,
        })
    }
}

impl Wire for BatchAccounting {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.queries);
        w.write_varint(self.total_bits);
        w.write_varint(self.alice_bits);
        w.write_varint(self.bob_bits);
        w.write_varint(self.total_rounds);
        w.write_varint(u64::from(self.max_rounds));
        w.write_varint(self.messages);
        w.write_varint(self.bits_by_label.len() as u64);
        for (label, bits) in &self.bits_by_label {
            (*label).to_owned().encode(w);
            w.write_varint(*bits);
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let queries = r.read_varint()?;
        let total_bits = r.read_varint()?;
        let alice_bits = r.read_varint()?;
        let bob_bits = r.read_varint()?;
        let total_rounds = r.read_varint()?;
        let max_rounds = u32::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("max_rounds overflows u32"))?;
        let messages = r.read_varint()?;
        let labels = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("label count overflow"))?;
        let mut bits_by_label = std::collections::BTreeMap::new();
        for _ in 0..labels {
            let label = intern_label(&String::decode(r)?)?;
            bits_by_label.insert(label, r.read_varint()?);
        }
        Ok(Self {
            queries,
            total_bits,
            alice_bits,
            bob_bits,
            total_rounds,
            max_rounds,
            messages,
            bits_by_label,
        })
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(*self as u64);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("usize overflow"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("vec length overflow"))?;
        // Guard against absurd lengths from corrupt streams: cap the initial
        // reservation; growth beyond this is still possible but amortized.
        let mut out = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            Some(v) => {
                w.write_bit(true);
                v.encode(w);
            }
            None => w.write_bit(false),
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        if r.read_bit()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut BitWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut BitWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn encode(&self, w: &mut BitWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
        self.3.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

impl Wire for () {
    fn encode(&self, _w: &mut BitWriter) {}
    fn decode(_r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(())
    }
}

/// A vector of `u64` values packed at a fixed bit width — the encoding for
/// index lists, where each index costs exactly `⌈log₂ dim⌉` bits.
///
/// ```
/// use mpest_comm::{FixedU64s, Wire};
/// let ids = FixedU64s::for_dim(1024, vec![3, 17, 1023]);
/// // 6 width bits + 8 length bits + 3 * 10 index bits.
/// assert_eq!(ids.encoded_bits(), 6 + 8 + 30);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedU64s {
    /// Bit width of each packed value.
    pub width: u32,
    /// The values; each must fit in `width` bits.
    pub vals: Vec<u64>,
}

impl FixedU64s {
    /// Packs index values drawn from `0..dim`.
    ///
    /// # Panics
    ///
    /// Panics if any value is `>= dim` (an implementation bug).
    #[must_use]
    pub fn for_dim(dim: u64, vals: Vec<u64>) -> Self {
        let width = width_for(dim);
        for &v in &vals {
            assert!(v < dim.max(2), "index {v} out of range for dim {dim}");
        }
        Self { width, vals }
    }
}

impl Wire for FixedU64s {
    fn encode(&self, w: &mut BitWriter) {
        w.write_bits(u64::from(self.width), 6);
        w.write_varint(self.vals.len() as u64);
        for &v in &self.vals {
            w.write_bits(v, self.width);
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let width = r.read_bits(6)? as u32;
        if width == 0 || width > 64 {
            return Err(CommError::decode("invalid fixed width"));
        }
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("fixed vec length overflow"))?;
        let mut vals = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            vals.push(r.read_bits(width)?);
        }
        Ok(Self { width, vals })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = BitWriter::new();
        v.encode(&mut w);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(
            r.bits_read(),
            bits,
            "decoder consumed exactly what was written"
        );
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u64);
        roundtrip(&u64::MAX);
        roundtrip(&12345u32);
        roundtrip(&77u16);
        roundtrip(&(-999i64));
        roundtrip(&1.25f64);
        roundtrip(&42usize);
        roundtrip(&());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&Some(5i64));
        roundtrip(&Option::<i64>::None);
        roundtrip(&(1u64, -2i64));
        roundtrip(&(1u64, 2.5f64, vec![true, false]));
        roundtrip(&vec![(0u64, 1i64), (5, -5)]);
    }

    #[test]
    fn fixed_u64s_roundtrip_and_cost() {
        let v = FixedU64s::for_dim(100, vec![0, 50, 99]);
        assert_eq!(v.width, 7);
        roundtrip(&v);
        // width(6) + len varint(8) + 3*7
        assert_eq!(v.encoded_bits(), 6 + 8 + 21);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fixed_u64s_range_check() {
        let _ = FixedU64s::for_dim(10, vec![10]);
    }

    #[test]
    fn fixed_u64s_dim_one() {
        let v = FixedU64s::for_dim(1, vec![0, 0]);
        roundtrip(&v);
    }

    #[test]
    fn vec_of_f64_costs_64_bits_each() {
        let v = vec![1.0f64, 2.0, 3.0];
        // 8 length bits + 3 * 64.
        assert_eq!(v.encoded_bits(), 8 + 192);
    }

    #[test]
    fn decode_rejects_truncated() {
        let mut w = BitWriter::new();
        vec![1u64, 2, 3].encode(&mut w);
        let (bytes, _) = w.finish();
        let truncated = &bytes[..bytes.len() - 1];
        let mut r = BitReader::new(truncated);
        assert!(Vec::<u64>::decode(&mut r).is_err());
    }
}
