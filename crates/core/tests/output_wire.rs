//! Wire-format pinning for the serve layer's payloads: every
//! [`AnyOutput`] variant, [`EstimateReport`], and [`EstimateRequest`].
//!
//! The `mpest serve` daemon and its clients exchange these encodings
//! across builds, so the byte layout is a compatibility contract:
//! golden-byte tests pin it exactly (a change here is a codec version
//! bump, not a refactor), and generative roundtrips cover the value
//! space the goldens cannot.

use mpest_comm::{BitReader, BitWriter, MsgRecord, Party, Transcript, Wire};
use mpest_core::{
    AnyOutput, EstimateReport, EstimateRequest, HeavyHitters, HhPair, L1Sample, LinfEstimate,
    MatrixSample, ProductShares,
};
use mpest_matrix::PNorm;
use proptest::prelude::*;

fn encode<T: Wire>(v: &T) -> (Vec<u8>, u64) {
    let mut w = BitWriter::new();
    v.encode(&mut w);
    w.finish_vec()
}

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    let (bytes, bits) = encode(v);
    let mut r = BitReader::new(&bytes);
    let back = T::decode(&mut r).expect("decode");
    assert_eq!(&back, v);
    assert_eq!(r.bits_read(), bits, "decoder consumed exactly the encoding");
}

/// Every `AnyOutput` variant roundtrips (one representative per shape,
/// edge values included).
#[test]
fn every_output_variant_roundtrips() {
    let outputs = vec![
        AnyOutput::Scalar(0.0),
        AnyOutput::Scalar(-1.5e300),
        AnyOutput::Count(0),
        AnyOutput::Count(i128::MAX),
        AnyOutput::Count(i128::MIN + 1),
        AnyOutput::Sample(MatrixSample::Sampled {
            row: 7,
            col: u32::MAX,
            value: -42,
        }),
        AnyOutput::Sample(MatrixSample::ZeroMatrix),
        AnyOutput::Sample(MatrixSample::Failed),
        AnyOutput::L1Sample(None),
        AnyOutput::L1Sample(Some(L1Sample {
            row: 1,
            col: 2,
            witness: 3,
        })),
        AnyOutput::Linf(LinfEstimate {
            estimate: 12.5,
            level: Some(4),
        }),
        AnyOutput::Linf(LinfEstimate {
            estimate: 0.0,
            level: None,
        }),
        AnyOutput::HeavyHitters(HeavyHitters::default()),
        AnyOutput::HeavyHitters(HeavyHitters {
            pairs: vec![
                HhPair {
                    row: 0,
                    col: 9,
                    estimate: 3.25,
                },
                HhPair {
                    row: 8,
                    col: 1,
                    estimate: -0.5,
                },
            ],
        }),
        AnyOutput::Shares(ProductShares::default()),
        AnyOutput::Shares(ProductShares {
            alice: vec![(0, 0, 5), (1, 3, -2)],
            bob: vec![(2, 2, 7)],
        }),
        AnyOutput::Exact(mpest_core::trivial::ExactStats {
            l0: 3.0,
            l1: 10.0,
            l2_sq: 38.0,
            linf: (-6, (2, 4)),
        }),
    ];
    for output in &outputs {
        roundtrip(output);
    }
}

/// A full `EstimateReport` — protocol name, type-erased output, and
/// transcript records (labels interned on decode) — roundtrips.
#[test]
fn estimate_report_roundtrips() {
    let report = EstimateReport {
        protocol: "exact-l1",
        output: AnyOutput::Count(123_456_789_012_345),
        transcript: Transcript {
            records: vec![
                MsgRecord {
                    from: Party::Alice,
                    round: 0,
                    label: "l1-col-sums",
                    bits: 987,
                },
                MsgRecord {
                    from: Party::Bob,
                    round: 1,
                    label: "ack",
                    bits: 1,
                },
            ],
        },
    };
    roundtrip(&report);

    // Unknown protocol names are a typed decode error, not a panic.
    let (bytes, _) = encode(&report);
    let mut mangled = report.clone();
    mangled.protocol = "exact-l1";
    let mut w = BitWriter::new();
    "no-such-protocol".to_string().encode(&mut w);
    mangled.output.encode(&mut w);
    mangled.transcript.encode(&mut w);
    let (bad, _) = w.finish_vec();
    assert!(EstimateReport::decode(&mut BitReader::new(&bad)).is_err());
    assert!(EstimateReport::decode(&mut BitReader::new(&bytes[..bytes.len() - 1])).is_err());
}

/// Every catalog request roundtrips, and every request's parameters
/// survive exactly (f64 bit patterns included).
#[test]
fn every_request_variant_roundtrips() {
    for request in EstimateRequest::catalog() {
        roundtrip(&request);
    }
    roundtrip(&EstimateRequest::LpNorm {
        p: PNorm::P(1.7),
        eps: 0.125,
    });
    roundtrip(&EstimateRequest::LpBaseline {
        p: PNorm::Inf,
        eps: 1.0,
    });
}

// --- golden bytes -----------------------------------------------------------
//
// These pin the exact encodings. If one of these assertions fails, the
// wire format changed: bump `mpest_net::codec::VERSION` and regenerate.

#[test]
fn golden_bytes_scalar_output() {
    // Tag 0 (4 bits) then IEEE-754 1.5 = 0x3FF8000000000000, MSB-first,
    // shifted 4 bits into the stream.
    let (bytes, bits) = encode(&AnyOutput::Scalar(1.5));
    assert_eq!(bits, 4 + 64);
    assert_eq!(
        bytes,
        vec![0x03, 0xFF, 0x80, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00]
    );
}

#[test]
fn golden_bytes_count_output() {
    // Tag 1, then zigzag(-3) = 5 as two u64 varints (low = 5, high = 0):
    // varint bytes are [cont=0][7-bit group].
    let (bytes, bits) = encode(&AnyOutput::Count(-3));
    assert_eq!(bits, 4 + 8 + 8);
    assert_eq!(bytes, vec![0x10, 0x50, 0x00]);
}

#[test]
fn golden_bytes_exact_l1_request() {
    // Tag 2 (4 bits), no parameters; the padding zeros are unbilled.
    let (bytes, bits) = encode(&EstimateRequest::ExactL1);
    assert_eq!(bits, 4);
    assert_eq!(bytes, vec![0x20]);
}

#[test]
fn golden_bytes_lp_request() {
    // Tag 0, PNorm::Zero tag 0 (2 bits), eps = 0.25 (0x3FD0000000000000).
    let (bytes, bits) = encode(&EstimateRequest::LpNorm {
        p: PNorm::Zero,
        eps: 0.25,
    });
    assert_eq!(bits, 4 + 2 + 64);
    assert_eq!(
        bytes,
        vec![0x00, 0xFF, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00]
    );
}

#[test]
fn golden_bytes_heavy_hitter_output() {
    // Tag 5, vec len varint 1, row varint 2, col varint 3, estimate 2.0.
    let (bytes, bits) = encode(&AnyOutput::HeavyHitters(HeavyHitters {
        pairs: vec![HhPair {
            row: 2,
            col: 3,
            estimate: 2.0,
        }],
    }));
    assert_eq!(bits, 4 + 8 + 8 + 8 + 64);
    assert_eq!(
        bytes,
        vec![0x50, 0x10, 0x20, 0x34, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00]
    );
}

#[test]
fn golden_bytes_report() {
    // "lp" (len varint 2 then 'l','p'), Scalar(0.0), empty transcript.
    let report = EstimateReport {
        protocol: "lp",
        output: AnyOutput::Scalar(0.0),
        transcript: Transcript::default(),
    };
    let (bytes, bits) = encode(&report);
    assert_eq!(bits, 8 + 16 + (4 + 64) + 8);
    assert_eq!(
        bytes,
        vec![0x02, 0x6C, 0x70, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00]
    );
}

// --- generative coverage ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Heavy-hitter sets of arbitrary size and content roundtrip.
    #[test]
    fn prop_heavy_hitters_roundtrip(
        pairs in proptest::collection::vec((any::<u32>(), any::<u32>(), -1e12f64..1e12), 0..40)
    ) {
        let hh = HeavyHitters {
            pairs: pairs
                .iter()
                .map(|&(row, col, estimate)| HhPair { row, col, estimate })
                .collect(),
        };
        roundtrip(&AnyOutput::HeavyHitters(hh));
    }

    /// Product shares with arbitrary triplets roundtrip.
    #[test]
    fn prop_shares_roundtrip(
        alice in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<i64>()), 0..30),
        bob in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<i64>()), 0..30),
    ) {
        roundtrip(&AnyOutput::Shares(ProductShares { alice, bob }));
    }

    /// Counts across the i128 range roundtrip (two-varint zigzag).
    #[test]
    fn prop_counts_roundtrip(low in any::<u64>(), high in any::<u64>(), neg in proptest::bool::ANY) {
        let magnitude = (i128::from(high >> 1) << 64) | i128::from(low);
        let value = if neg { -magnitude } else { magnitude };
        roundtrip(&AnyOutput::Count(value));
    }

    /// Transcripts with arbitrary record shapes roundtrip; labels come
    /// back pointer-interned but value-equal.
    #[test]
    fn prop_transcripts_roundtrip(
        records in proptest::collection::vec(
            (proptest::bool::ANY, any::<u16>(), 0u64..1u64 << 40, 0usize..4),
            0..20,
        )
    ) {
        const LABELS: [&str; 4] = ["sketch", "rows", "l1-col-sums", "x"];
        let transcript = Transcript {
            records: records
                .iter()
                .map(|&(bob, round, bits, label)| MsgRecord {
                    from: if bob { Party::Bob } else { Party::Alice },
                    round,
                    label: LABELS[label],
                    bits,
                })
                .collect(),
        };
        roundtrip(&transcript);
    }

    /// Requests with arbitrary parameters roundtrip.
    #[test]
    fn prop_requests_roundtrip(
        eps in 1e-6f64..1.0,
        p in 0.0f64..2.0,
        phi in 1e-6f64..0.5,
        kappa in 1usize..100,
        t in 1u32..1000,
        variant in 0usize..6,
    ) {
        let request = match variant {
            0 => EstimateRequest::LpNorm { p: PNorm::P(p), eps },
            1 => EstimateRequest::LpBaseline { p: PNorm::Zero, eps },
            2 => EstimateRequest::L0Sample { eps },
            3 => EstimateRequest::HhBinary { p, phi, eps: phi / 2.0 },
            4 => EstimateRequest::LinfGeneral { kappa },
            _ => EstimateRequest::AtLeastTJoin { t, slack: eps },
        };
        roundtrip(&request);
    }
}
