//! Algorithm 1 / Theorem 3.1: `(1+ε)`-approximation of `‖AB‖_p^p` for
//! `p ∈ [0, 2]` in **2 rounds** and `Õ(n/ε)` bits.
//!
//! The two-round structure is the paper's headline trick. A direct,
//! one-round application of an `ℓp` sketch needs accuracy `ε` and hence
//! `Õ(1/ε²)` words per row (\[16\]; implemented in
//! [`crate::lp_baseline`]). Algorithm 1 instead:
//!
//! 1. (Round 1, Bob→Alice) ships `ℓp` sketches of the rows of `B` at the
//!    *coarse* accuracy `β = √ε` — only `Õ(1/ε)` words per row. By
//!    linearity Alice turns them into sketches of every row of `C = A·B`
//!    (`sk(C_{i,*}) = Σ_k A_{i,k} · sk(B_{k,*})`) and gets each row norm
//!    within `(1+β)`.
//! 2. (Round 2, Alice→Bob) Alice buckets rows into `(1+β)`-geometric
//!    groups by estimated norm and samples `ρ = Θ(1/ε)` rows with
//!    probability proportional to their group mass. She ships the sampled
//!    rows of `A`; Bob computes those rows of `C` *exactly* and returns
//!    the Horvitz–Thompson estimator `Σ ‖C_{i,*}‖_p^p / p_i`.
//!
//! The coarse estimates only control the *variance* of the second-stage
//! sampler (the estimator is unbiased regardless), which is why `β = √ε`
//! suffices — and the total cost is `Õ(n/β²) + Õ(n/ε) = Õ(n/ε)`.

use crate::config::{check_eps, Constants};
use crate::protocol::Protocol;
use crate::result::ProtocolRun;
use crate::session::{ProductDims, SessionCtx};
use crate::sketchcache::{pnorm_bits, SketchCache, SketchKey, SketchKind};
use crate::wire::{WSkMat, WSkMatShared, WSparseVec};
use mpest_comm::{execute_split, CommError, Exec, Link, Seed};
use mpest_matrix::norms::sparse_lp_pow;
use mpest_matrix::{CsrMatrix, PNorm, SparseVec};
use mpest_sketch::NormSketch;
use rand::Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Parameters of the `ℓp`-norm protocol.
#[derive(Debug, Clone, Copy)]
pub struct LpParams {
    /// Which norm to estimate (`p ∈ [0, 2]`).
    pub p: PNorm,
    /// Target multiplicative accuracy `ε`.
    pub eps: f64,
    /// Protocol constants.
    pub consts: Constants,
    /// Overrides the round-1 sketch accuracy `β` (default `√ε`, the
    /// paper's choice). Exposed for the ablation experiment: `β = ε`
    /// recovers the \[16\]-style direct estimation inside the two-round
    /// structure, paying `Õ(n/ε²)` again.
    pub beta_override: Option<f64>,
}

impl LpParams {
    /// Convenience constructor with default constants.
    #[must_use]
    pub fn new(p: PNorm, eps: f64) -> Self {
        Self {
            p,
            eps,
            consts: Constants::default(),
            beta_override: None,
        }
    }

    pub(crate) fn validate(&self) -> Result<(), CommError> {
        check_eps(self.eps)?;
        if !self.p.supported_by_lp_protocol() {
            return Err(CommError::protocol(format!(
                "Algorithm 1 supports p in [0, 2], got {:?}",
                self.p
            )));
        }
        if let Some(b) = self.beta_override {
            check_eps(b)?;
        }
        Ok(())
    }

    fn beta(&self) -> f64 {
        self.beta_override
            .unwrap_or_else(|| self.eps.sqrt())
            .clamp(1e-6, 1.0)
    }

    pub(crate) fn sketch(&self, dim: usize, pub_seed: Seed) -> NormSketch {
        NormSketch::for_norm(
            self.p,
            dim,
            self.beta(),
            self.consts.sketch_reps,
            pub_seed.derive("lp-sketch").0,
        )
    }

    /// The memo-store identity of the round-1 row sketches of `B` that
    /// [`LpParams::sketch`] would build — shared by `bob_phase` and the
    /// engine's batch prewarm, so both address the same entry.
    pub(crate) fn cache_key(&self, dim: usize, pub_seed: Seed) -> SketchKey {
        SketchKey {
            kind: SketchKind::LpRowsB,
            seed: pub_seed.derive("lp-sketch").0,
            dim,
            params: [
                pnorm_bits(self.p),
                self.beta().to_bits(),
                self.consts.sketch_reps as u64,
            ],
        }
    }
}

/// Alice's phase of Algorithm 1 (reusable as a sub-phase; rounds
/// `base_round` and `base_round + 1`). `b_cols` is the width of `B`
/// (matrix dimensions are public in the two-party model); it determines
/// the shared sketch shape that both parties reconstruct from public
/// coins.
pub(crate) fn alice_phase(
    link: &Link<'_>,
    base_round: u16,
    a: &CsrMatrix,
    b_cols: usize,
    params: &LpParams,
    pub_seed: Seed,
    alice_seed: Seed,
) -> Result<(), CommError> {
    let sketch = params.sketch(b_cols.max(1), pub_seed);
    let skb_mat: WSkMat = link.recv("lp-row-sketches")?;
    let skb = skb_mat.0;
    if skb.rows() != a.cols() {
        return Err(CommError::protocol(format!(
            "sketched-rows count {} does not match inner dimension {}",
            skb.rows(),
            a.cols()
        )));
    }
    if skb.width() != sketch.rows() {
        return Err(CommError::protocol(format!(
            "sketch width {} does not match shared shape {}",
            skb.width(),
            sketch.rows()
        )));
    }
    let beta = params.beta();
    let log_base = (1.0 + beta).ln();

    // Row-norm estimates via linearity.
    let mut ests = vec![0.0f64; a.rows()];
    for (i, est) in ests.iter_mut().enumerate() {
        let weights = a.row_vec(i).entries;
        if weights.is_empty() {
            continue;
        }
        let skc = sketch.combine(&skb, &weights);
        *est = sketch.estimate_pow(&skc).max(0.0);
    }
    let total: f64 = ests.iter().sum();

    let mut sampled: Vec<(u32, f64, WSparseVec)> = Vec::new();
    if total > 0.0 {
        // Geometric grouping by estimated row mass.
        let mut groups: BTreeMap<i64, (Vec<u32>, f64)> = BTreeMap::new();
        for (i, &e) in ests.iter().enumerate() {
            if e > 0.0 {
                let level = (e.ln() / log_base).floor() as i64;
                let slot = groups.entry(level).or_insert_with(|| (Vec::new(), 0.0));
                slot.0.push(i as u32);
                slot.1 += e;
            }
        }
        let rho = params.consts.rho_const / params.eps;
        let mut rng = alice_seed.rng();
        for (_, (members, mass)) in groups {
            let p_l = (rho / members.len() as f64 * (mass / total)).min(1.0);
            for &i in &members {
                if rng.gen::<f64>() < p_l {
                    sampled.push((
                        i,
                        p_l,
                        WSparseVec {
                            dim: a.cols() as u64,
                            entries: a.row_vec(i as usize).entries,
                        },
                    ));
                }
            }
        }
    }
    link.send(base_round + 1, "lp-sampled-rows", &sampled)
}

/// Bob's phase of Algorithm 1; returns the `(1+ε)` estimate of
/// `‖AB‖_p^p`.
pub(crate) fn bob_phase(
    link: &Link<'_>,
    base_round: u16,
    b: &CsrMatrix,
    params: &LpParams,
    pub_seed: Seed,
    cache: Option<&SketchCache>,
) -> Result<f64, CommError> {
    let dim = b.cols().max(1);
    let sketch = params.sketch(dim, pub_seed);
    // The row sketches are a pure function of (params, derived seed, B):
    // consult the session memo store — a batch prewarm or an earlier
    // replay may have built them already — before paying the matrix
    // pass. The encoding (and hence the transcript) is identical either
    // way.
    let skb = match cache {
        Some(c) => c.norm(params.cache_key(dim, pub_seed), || sketch.sketch_rows(b)),
        None => Arc::new(sketch.sketch_rows(b)),
    };
    link.send(base_round, "lp-row-sketches", &WSkMatShared(skb))?;
    let sampled: Vec<(u32, f64, WSparseVec)> = link.recv("lp-sampled-rows")?;
    let mut estimate = 0.0f64;
    for (i, p_i, row) in sampled {
        if !(p_i > 0.0 && p_i <= 1.0) {
            return Err(CommError::protocol(format!(
                "invalid sampling probability {p_i} for row {i}"
            )));
        }
        if row.entries.len() > b.rows() {
            return Err(CommError::protocol("sampled row too long".to_string()));
        }
        let c_row = b.vecmat(&SparseVec {
            dim: b.rows(),
            entries: row.entries,
        });
        estimate += sparse_lp_pow(&c_row.entries, params.p) / p_i;
    }
    Ok(estimate)
}

/// The Algorithm 1 / Theorem 3.1 protocol as a [`Protocol`]:
/// `(1±ε)·‖AB‖_p^p` for `p ∈ [0, 2]` in 2 rounds and `Õ(n/ε)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpNorm;

impl Protocol for LpNorm {
    type Params = LpParams;
    type Output = f64;

    fn name(&self) -> &'static str {
        "lp"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &LpParams,
    ) -> Result<ProtocolRun<f64>, CommError> {
        let (a, b) = ctx.csr_halves();
        run_unchecked(
            a,
            b,
            ctx.dims(),
            params,
            ctx.seed(),
            Some(ctx.sketch_cache()),
            ctx.executor(),
        )
    }
}

pub(crate) fn run_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    dims: ProductDims,
    params: &LpParams,
    seed: Seed,
    cache: Option<&SketchCache>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<f64>, CommError> {
    params.validate()?;
    let pub_seed = seed.derive("public");
    let alice_seed = seed.derive("alice");
    let b_cols = dims.b_cols;
    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a| alice_phase(link, 0, a, b_cols, params, pub_seed, alice_seed),
        |link, b| bob_phase(link, 0, b, params, pub_seed, cache),
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{stats, Workloads};

    fn run(
        a: &CsrMatrix,
        b: &CsrMatrix,
        params: &LpParams,
        seed: Seed,
    ) -> Result<ProtocolRun<f64>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&LpNorm, params, seed)
    }

    fn relative_error_ok(p: PNorm, eps: f64, tolerance: f64, seed_base: u64) {
        let a = Workloads::bernoulli_bits(48, 64, 0.25, seed_base).to_csr();
        let b = Workloads::bernoulli_bits(64, 48, 0.25, seed_base + 1).to_csr();
        let truth = stats::lp_pow_of_product(&a, &b, p);
        assert!(truth > 0.0);
        let params = LpParams::new(p, eps);
        let mut ok = 0;
        let trials = 9;
        for t in 0..trials {
            let run = run(&a, &b, &params, Seed(1000 + seed_base * 100 + t)).unwrap();
            assert_eq!(run.rounds(), 2, "Algorithm 1 is a 2-round protocol");
            if (run.output - truth).abs() <= tolerance * truth {
                ok += 1;
            }
        }
        assert!(
            ok * 3 >= trials * 2,
            "p={p:?}: only {ok}/{trials} within tolerance"
        );
    }

    #[test]
    fn l0_accuracy() {
        relative_error_ok(PNorm::Zero, 0.3, 0.35, 1);
    }

    #[test]
    fn l1_accuracy() {
        relative_error_ok(PNorm::ONE, 0.3, 0.35, 3);
    }

    #[test]
    fn l2_accuracy() {
        relative_error_ok(PNorm::TWO, 0.3, 0.40, 5);
    }

    #[test]
    fn fractional_p_accuracy() {
        relative_error_ok(PNorm::P(0.5), 0.3, 0.40, 7);
    }

    #[test]
    fn zero_product() {
        let (a, b) = Workloads::disjoint_supports(20, 40, 0.4, 9);
        let params = LpParams::new(PNorm::Zero, 0.5);
        let run = run(&a.to_csr(), &b.to_csr(), &params, Seed(4)).unwrap();
        assert!(
            run.output.abs() < 3.0,
            "zero product estimated {}",
            run.output
        );
    }

    #[test]
    fn integer_matrices_supported() {
        let a = Workloads::integer_csr(32, 40, 0.2, 4, false, 21);
        let b = Workloads::integer_csr(40, 32, 0.2, 4, false, 22);
        let truth = stats::lp_pow_of_product(&a, &b, PNorm::ONE);
        let params = LpParams::new(PNorm::ONE, 0.3);
        let mut ok = 0;
        for t in 0..9 {
            let run = run(&a, &b, &params, Seed(50 + t)).unwrap();
            if (run.output - truth).abs() <= 0.35 * truth {
                ok += 1;
            }
        }
        assert!(ok >= 6, "integer-matrix accuracy {ok}/9");
    }

    #[test]
    fn rejects_bad_params() {
        let a = CsrMatrix::zeros(4, 4);
        let b = CsrMatrix::zeros(4, 4);
        assert!(run(&a, &b, &LpParams::new(PNorm::Inf, 0.5), Seed(0)).is_err());
        assert!(run(&a, &b, &LpParams::new(PNorm::ONE, 0.0), Seed(0)).is_err());
        let b5 = CsrMatrix::zeros(5, 4);
        assert!(run(&a, &b5, &LpParams::new(PNorm::ONE, 0.5), Seed(0)).is_err());
    }

    #[test]
    fn unbiasedness_over_many_seeds() {
        // The Horvitz–Thompson estimator is unbiased; the mean over many
        // runs should be closer to the truth than single runs.
        let a = Workloads::bernoulli_bits(32, 48, 0.3, 31).to_csr();
        let b = Workloads::bernoulli_bits(48, 32, 0.3, 32).to_csr();
        let truth = stats::lp_pow_of_product(&a, &b, PNorm::ONE);
        let params = LpParams::new(PNorm::ONE, 0.4);
        let mut sum = 0.0;
        let runs = 30;
        for t in 0..runs {
            sum += run(&a, &b, &params, Seed(7000 + t)).unwrap().output;
        }
        let mean = sum / runs as f64;
        assert!(
            (mean - truth).abs() < 0.15 * truth,
            "mean over {runs} runs {mean} vs truth {truth}"
        );
    }
}
