//! Algorithm 3 / Theorem 4.3: `κ`-approximation of `‖AB‖∞` for binary
//! matrices, `κ ∈ [4, n]`, in `O(1)` rounds and `Õ(n^{1.5}/κ)` bits.
//!
//! Two nested sampling stages. First, *universe sampling*: keep each
//! inner-dimension item (column of `A`) with probability
//! `q = min(α/κ, 1)`, shrinking both the surviving universe (`Õ(n/κ)`
//! items) and every product entry (`D_{i,j} ≈ q·C_{i,j}`). Then run the
//! Algorithm 2 machinery on `D = A'·B` with powers-of-two levels
//! `p_ℓ = 2^{-ℓ}` and the smaller mass threshold `α·n²/κ`, and rescale by
//! `1/(q·p_{ℓ*})`. If the universe sample wipes the product out
//! (`‖D‖₁ = 0`), every entry of `C` is below `≈ κ/4` w.h.p., so
//! answering `1` (or `0` for a zero product, checked via Remark 2 on the
//! full `A`) is already a `κ`-approximation.

use crate::config::Constants;
use crate::exchange::{ExchangeCfg, ItemLists};
use crate::protocol::Protocol;
use crate::result::{LinfEstimate, ProtocolRun};
use crate::session::{ProductDims, SessionCtx};
use crate::wire::WU64Grid;
use mpest_comm::{execute_split, CommError, Exec, Seed};
use mpest_matrix::BitMatrix;

/// Parameters of the `κ`-approximation protocol.
#[derive(Debug, Clone, Copy)]
pub struct LinfKappaParams {
    /// Approximation target `κ` (paper range `[4, n]`).
    pub kappa: f64,
    /// Protocol constants (`α = alpha_const · ln(cells)`).
    pub consts: Constants,
}

impl LinfKappaParams {
    /// Convenience constructor with default constants.
    #[must_use]
    pub fn new(kappa: f64) -> Self {
        Self {
            kappa,
            consts: Constants::default(),
        }
    }
}

/// Nested powers-of-two level for a 1-entry of `A'`.
fn entry_level2(seed: Seed, key: u64, max_level: u32) -> u32 {
    let u = seed.unit_at(key).max(f64::MIN_POSITIVE);
    let lvl = (1.0 / u).log2().floor();
    if lvl < 0.0 {
        0
    } else {
        (lvl as u32).min(max_level)
    }
}

/// The Algorithm 3 / Theorem 4.3 protocol as a [`Protocol`]:
/// `κ`-approximate `‖AB‖∞` for binary matrices in `O(1)` rounds and
/// `Õ(n^1.5/κ)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinfKappa;

impl Protocol for LinfKappa {
    type Params = LinfKappaParams;
    type Output = LinfEstimate;

    fn name(&self) -> &'static str {
        "linf-kappa"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &LinfKappaParams,
    ) -> Result<ProtocolRun<LinfEstimate>, CommError> {
        let (a, b) = ctx.bit_halves()?;
        run_unchecked(a, b, ctx.dims(), params, ctx.seed(), ctx.executor())
    }
}

pub(crate) fn run_unchecked(
    a: Option<&BitMatrix>,
    b: Option<&BitMatrix>,
    dims: ProductDims,
    params: &LinfKappaParams,
    seed: Seed,
    exec: Exec<'_>,
) -> Result<ProtocolRun<LinfEstimate>, CommError> {
    if params.kappa < 1.0 {
        return Err(CommError::protocol(format!(
            "kappa must be >= 1, got {}",
            params.kappa
        )));
    }
    let cells = (dims.a_rows * dims.b_cols).max(2) as f64;
    let alpha = params.consts.alpha_const * cells.ln();
    let q = (alpha / params.kappa).min(1.0);
    let threshold = alpha * cells / params.kappa;
    let inner = dims.inner;
    let universe_seed = seed.derive("alice-universe");
    let level_seed = seed.derive("alice-linf2-levels");
    let cfg = ExchangeCfg {
        round: 0,
        binary: true,
        out_rows: dims.a_rows,
        out_cols: dims.b_cols,
        inner_dim: inner,
    };
    let items: Vec<u32> = (0..inner as u32).collect();

    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a: &BitMatrix| {
            // The level cap depends on ‖A‖₀ — Alice-private, never needed
            // by Bob (he reads the level count off the shipped grid).
            let max_level = {
                let ones = a.count_ones().max(1) as f64;
                ones.log2().ceil() as u32 + 1
            };
            let levels = max_level as usize + 1;
            // Universe sampling (Alice's coins): survive(j) with prob q.
            let survives = |j: u32| universe_seed.unit_at(u64::from(j)) < q;
            // Per-column entries of A' with powers-of-two levels.
            let mut cols: Vec<Vec<(u32, u32)>> = vec![Vec::new(); inner];
            let mut full_colsums = vec![0u64; inner];
            for i in 0..a.rows() {
                for j in a.row_indices(i) {
                    full_colsums[j as usize] += 1;
                    if survives(j) {
                        let key = (i as u64) * (inner as u64) + u64::from(j);
                        let lvl = entry_level2(level_seed, key, max_level);
                        cols[j as usize].push((i as u32, lvl));
                    }
                }
            }
            let mut level_sums = vec![vec![0u64; inner]; levels];
            for (j, entries) in cols.iter().enumerate() {
                for &(_, lvl) in entries {
                    for row in level_sums.iter_mut().take(lvl as usize + 1) {
                        row[j] += 1;
                    }
                }
            }
            let keep = level_sums
                .iter()
                .position(|row| row.iter().all(|&v| v == 0))
                .map_or(level_sums.len(), |idx| idx + 1)
                .max(1);
            level_sums.truncate(keep);
            link.send(
                0,
                "linf2-colsums",
                &(WU64Grid(vec![full_colsums]), WU64Grid(level_sums.clone())),
            )?;
            let (short_circuit, lstar, v64, bob_lists): (bool, u64, Vec<u64>, ItemLists) =
                link.recv("linf2-bob-lists")?;
            if short_circuit {
                return Ok(());
            }
            let lstar = lstar as u32;
            let v: Vec<u32> = v64.iter().map(|&x| x as u32).collect();
            if v.len() != inner || (lstar as usize) >= level_sums.len() {
                return Err(CommError::protocol(
                    "round-2 payload out of range".to_string(),
                ));
            }
            let u: Vec<u32> = level_sums[lstar as usize]
                .iter()
                .map(|&x| x as u32)
                .collect();
            let col_of = |k: u32| -> Vec<(u32, i64)> {
                cols[k as usize]
                    .iter()
                    .filter(|&&(_, lvl)| lvl >= lstar)
                    .map(|&(row, _)| (row, 1i64))
                    .collect()
            };
            let ca = bob_lists.accumulate_against(cfg, col_of, true);
            let max_a = ca.max_abs().0;
            let mine = ItemLists::build(cfg, a.rows(), &items, &u, &v, |uk, vk| uk <= vk, col_of);
            link.send(2, "linf2-alice-lists", &(mine, max_a as u64))?;
            Ok(())
        },
        |link, b: &BitMatrix| {
            let (full_grid, level_grid): (WU64Grid, WU64Grid) = link.recv("linf2-colsums")?;
            let full_colsums = full_grid.0.into_iter().next().unwrap_or_default();
            let level_sums = level_grid.0;
            if full_colsums.len() != inner || level_sums.is_empty() || level_sums[0].len() != inner
            {
                return Err(CommError::protocol("column-sum shape mismatch".to_string()));
            }
            let v: Vec<u32> = (0..b.rows()).map(|j| b.row_ones(j)).collect();
            let mass = |lvl: &[u64]| -> f64 {
                lvl.iter()
                    .zip(v.iter())
                    .map(|(&uj, &vj)| uj as f64 * f64::from(vj))
                    .sum()
            };
            let c_l1 = mass(&full_colsums);
            let d_l1 = mass(&level_sums[0]);
            if d_l1 == 0.0 {
                // ‖D‖₁ = 0: all entries of C are below ~κ/4 w.h.p.
                let estimate = if c_l1 > 0.0 { 1.0 } else { 0.0 };
                link.send(
                    1,
                    "linf2-bob-lists",
                    &(
                        true,
                        0u64,
                        Vec::<u64>::new(),
                        ItemLists::build(cfg, b.cols(), &[], &[], &[], |_, _| false, |_| vec![]),
                    ),
                )?;
                return Ok(LinfEstimate {
                    estimate,
                    level: None,
                });
            }
            let lstar = level_sums
                .iter()
                .position(|lvl| mass(lvl) <= threshold)
                .unwrap_or(level_sums.len() - 1) as u32;
            let u: Vec<u32> = level_sums[lstar as usize]
                .iter()
                .map(|&x| x as u32)
                .collect();
            let row_of = |k: u32| -> Vec<(u32, i64)> {
                b.row_indices(k as usize).map(|c| (c, 1i64)).collect()
            };
            let mine = ItemLists::build(cfg, b.cols(), &items, &u, &v, |uk, vk| vk < uk, row_of);
            link.send(
                1,
                "linf2-bob-lists",
                &(
                    false,
                    u64::from(lstar),
                    v.iter().map(|&x| u64::from(x)).collect::<Vec<u64>>(),
                    mine,
                ),
            )?;
            let (alice_lists, max_a): (ItemLists, u64) = link.recv("linf2-alice-lists")?;
            let cb = alice_lists.accumulate_against(cfg, row_of, false);
            let max_b = cb.max_abs().0 as u64;
            let scale = q * 2f64.powi(-(lstar as i32));
            Ok(LinfEstimate {
                estimate: max_a.max(max_b) as f64 / scale,
                level: Some(lstar),
            })
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{stats, Workloads};

    fn run(
        a: &BitMatrix,
        b: &BitMatrix,
        params: &LinfKappaParams,
        seed: Seed,
    ) -> Result<ProtocolRun<LinfEstimate>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&LinfKappa, params, seed)
    }

    #[test]
    fn constant_rounds_and_within_kappa_on_planted() {
        // Planted heavy pair well above kappa: estimate must land within
        // a kappa-factor band of the truth most of the time.
        let n = 64;
        let (a, b, _) = Workloads::planted_pairs(n, 96, 0.15, &[(5, 11)], 80, 7);
        let truth = stats::linf_of_product_binary(&a, &b).0 as f64;
        let kappa = 8.0;
        let params = LinfKappaParams::new(kappa);
        let mut ok = 0;
        for t in 0..9 {
            let run = run(&a, &b, &params, Seed(100 + t)).unwrap();
            assert!(run.rounds() <= 3, "O(1) rounds");
            let est = run.output.estimate;
            // kappa-approximation band (with slack for practical consts).
            if est >= truth / (2.5 * kappa) && est <= 2.5 * kappa * truth {
                ok += 1;
            }
        }
        assert!(ok >= 6, "kappa-approx failed too often: {ok}/9");
    }

    #[test]
    fn zero_product_outputs_zero() {
        let (a, b) = Workloads::disjoint_supports(16, 32, 0.4, 3);
        let run = run(&a, &b, &LinfKappaParams::new(8.0), Seed(5)).unwrap();
        assert_eq!(run.output.estimate, 0.0);
    }

    #[test]
    fn wiped_universe_outputs_one() {
        // Huge kappa -> q tiny -> universe likely wiped; nonzero product
        // must yield the fallback answer 1.
        let a = Workloads::bernoulli_bits(16, 24, 0.05, 9);
        let b = Workloads::bernoulli_bits(24, 16, 0.05, 10);
        let truth = stats::linf_of_product_binary(&a, &b).0;
        if truth == 0 {
            return; // degenerate draw; nothing to assert
        }
        let mut consts = Constants::practical();
        consts.alpha_const = 0.05; // make q truly tiny
        let params = LinfKappaParams { kappa: 1e6, consts };
        let mut saw_fallback = false;
        for t in 0..10 {
            let run = run(&a, &b, &params, Seed(200 + t)).unwrap();
            if run.output.level.is_none() {
                assert_eq!(run.output.estimate, 1.0);
                saw_fallback = true;
            }
        }
        assert!(saw_fallback, "fallback path never exercised");
    }

    #[test]
    fn larger_kappa_costs_less() {
        let n = 96;
        let (a, b, _) = Workloads::planted_pairs(n, n, 0.3, &[(1, 2)], 72, 13);
        let bits_small = run(&a, &b, &LinfKappaParams::new(4.0), Seed(1))
            .unwrap()
            .bits();
        let bits_large = run(&a, &b, &LinfKappaParams::new(32.0), Seed(1))
            .unwrap()
            .bits();
        assert!(
            bits_large < bits_small,
            "kappa=32 cost {bits_large} not below kappa=4 cost {bits_small}"
        );
    }

    #[test]
    fn rejects_bad_kappa() {
        let a = BitMatrix::zeros(4, 4);
        let b = BitMatrix::zeros(4, 4);
        assert!(run(&a, &b, &LinfKappaParams::new(0.5), Seed(0)).is_err());
    }
}
