//! Section 5.2 / Theorem 5.3: `ℓp`-(φ, ε) heavy hitters of `AB` for
//! **binary** matrices in `O(1)` rounds and `Õ(n + φ/ε²)` bits.
//!
//! The binary structure buys a big saving over Algorithm 4: instead of
//! recovering a thinned product with sparse multiplication
//! (`Õ(√φ/ε · n)`), the protocol
//!
//! 1. 2-approximates `L_p = ‖C‖_p` with an Algorithm 1 sub-phase (`Õ(n)`);
//! 2. *universe-samples* the inner dimension at rate
//!    `β = min(α/(φ^{1/p} L_p), 1)` and runs the Algorithm 2 min-side
//!    exchange on the surviving items only, giving additive shares
//!    `C_A + C_B = C'` with every `φ`-heavy entry still carrying
//!    `Ω̃(1)` surviving witnesses;
//! 3. collects candidates — entries whose *share* clears
//!    `β·(φ/20)^{1/p} L_p` on either side — and verifies each by
//!    public-coin coordinate sampling (`Õ((φ/ε)²)` bits per candidate,
//!    `Õ(1/φ)` candidates), falling back to exact verification when the
//!    sample budget reaches the dimension.
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_core::hh_binary::HhBinaryParams;
//! use mpest_core::{HhBinary, Session};
//! use mpest_matrix::{norms, PNorm, Workloads};
//!
//! let (a, b, _) = Workloads::planted_pairs(32, 64, 0.05, &[(3, 7)], 40, 1);
//! let c = a.to_csr().matmul(&b.to_csr());
//! let phi = (c.get(3, 7) as f64 - 6.0) / norms::csr_lp_pow(&c, PNorm::ONE);
//! let params = HhBinaryParams::new(1.0, phi, phi / 2.0);
//! let run = Session::new(a, b).run_seeded(&HhBinary, &params, Seed(4)).unwrap();
//! assert!(run.output.contains(3, 7), "the planted heavy pair is reported");
//! ```

use crate::config::{check_phi_eps, Constants};
use crate::exact_l1;
use crate::exchange::{exchange_alice, exchange_bob, ExchangeCfg};
use crate::lp_norm::{self, LpParams};
use crate::protocol::Protocol;
use crate::result::{HeavyHitters, HhPair, ProtocolRun};
use crate::session::{cached_or, ProductDims, Reuse, SessionCtx};
use crate::wire::{WBits, WPositions};
use mpest_comm::{execute_split, CommError, Exec, Seed};
use mpest_matrix::{BitMatrix, PNorm};
use mpest_sketch::CoordinateSampler;

/// Parameters of the binary heavy-hitter protocol.
#[derive(Debug, Clone, Copy)]
pub struct HhBinaryParams {
    /// The norm exponent `p ∈ (0, 2]`.
    pub p: f64,
    /// Heavy-hitter threshold `φ`.
    pub phi: f64,
    /// Approximation slack `ε` (`0 < ε ≤ φ ≤ 1`).
    pub eps: f64,
    /// Protocol constants.
    pub consts: Constants,
}

impl HhBinaryParams {
    /// Convenience constructor with default constants.
    #[must_use]
    pub fn new(p: f64, phi: f64, eps: f64) -> Self {
        Self {
            p,
            phi,
            eps,
            consts: Constants::default(),
        }
    }

    fn validate(&self) -> Result<(), CommError> {
        check_phi_eps(self.phi, self.eps)?;
        if !(self.p > 0.0 && self.p <= 2.0) {
            return Err(CommError::protocol(format!(
                "heavy hitters support p in (0, 2], got {}",
                self.p
            )));
        }
        Ok(())
    }
}

/// The Section 5.2 / Theorem 5.3 protocol as a [`Protocol`]:
/// `(φ, ε)`-heavy hitters for binary matrices in `O(1)` rounds and
/// `Õ(n + φ/ε²)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HhBinary;

impl Protocol for HhBinary {
    type Params = HhBinaryParams;
    type Output = HeavyHitters;

    fn name(&self) -> &'static str {
        "hh-binary"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &HhBinaryParams,
    ) -> Result<ProtocolRun<HeavyHitters>, CommError> {
        let (a, b) = ctx.bit_halves()?;
        let (a_csr, b_csr) = ctx.csr_halves();
        let reuse = Reuse {
            a_csr,
            b_csr,
            ..Reuse::default()
        };
        run_unchecked(a, b, ctx.dims(), params, ctx.seed(), reuse, ctx.executor())
    }
}

/// The phase-4 verification sampler, or `None` to verify exactly.
///
/// Coordinate sampling estimates a candidate's overlap as
/// `hits · inner / t`, so its *resolution* is `inner / t`. The Chernoff
/// mean target `hh_mean_const · (φ/ε)² · ln(cells)` alone is blind to
/// that: a threshold-sized entry carries `τ = (φ·L_p^p)^{1/p}` surviving
/// witnesses, and a budget `t` only sees `t·τ/inner` of them in
/// expectation. When `τ` is small (an at-least-`T` join with tiny `T`,
/// say), a budget below `inner/τ · mean-target` has granularity coarser
/// than the `[φ−ε, φ]` acceptance gap and mandatory pairs get dropped
/// wholesale — the statistical-guarantee harness caught exactly that
/// regression shape. Scaling the budget by `inner/τ` restores the
/// mean-hits target; once it reaches `inner`, exact verification is
/// cheaper anyway.
///
/// Both parties call this with the same public-coin seed and the same
/// phase-1 estimate, so they construct identical samplers.
fn verification_sampler(
    inner: usize,
    cells: f64,
    params: &HhBinaryParams,
    lp_pow: f64,
    coord_seed: u64,
) -> Option<CoordinateSampler> {
    let mean_target = params.consts.hh_mean_const * (params.phi / params.eps).powi(2) * cells.ln();
    let tau = (params.phi * lp_pow.max(0.0)).powf(1.0 / params.p).max(1.0);
    let t_budget = (mean_target * inner as f64 / tau).ceil();
    if t_budget >= inner as f64 {
        None
    } else {
        Some(CoordinateSampler::new(
            inner,
            (t_budget as usize).max(1),
            coord_seed,
        ))
    }
}

#[allow(clippy::too_many_lines)]
pub(crate) fn run_unchecked(
    a: Option<&BitMatrix>,
    b: Option<&BitMatrix>,
    dims: ProductDims,
    params: &HhBinaryParams,
    seed: Seed,
    reuse: Reuse<'_>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<HeavyHitters>, CommError> {
    params.validate()?;
    let pub_seed = seed.derive("public");
    let alice_seed = seed.derive("alice");
    let p = params.p;
    let cells = (dims.a_rows * dims.b_cols).max(2) as f64;
    let inner = dims.inner;
    let b_cols = dims.b_cols;
    let out_rows = dims.a_rows;
    let lp_params = LpParams {
        p: PNorm::P(p),
        eps: 1.0 / 3.0,
        consts: params.consts,
        beta_override: None,
    };
    // Universe sampling is public-coin (equivalent to the paper's
    // Alice-side sampling up to Newman; documented in DESIGN.md).
    let universe_seed = pub_seed.derive("hh-universe");
    // The verification sampler is public-coin too, but its budget
    // depends on the phase-1 `Lp` estimate, so each party constructs it
    // (identically) once that estimate is known.
    let coord_seed = pub_seed.derive("hh-coords").0;
    // For p = 1 the 2-approximation of step 1 comes for free from the
    // exact Remark 2 exchange (binary matrices are non-negative); other p
    // use an Algorithm 1 sub-phase at accuracy 1/3.
    let exact_p1 = (p - 1.0).abs() < 1e-12;
    let base: u16 = if exact_p1 { 1 } else { 3 };
    let cfg = ExchangeCfg {
        round: base + 1,
        binary: true,
        out_rows,
        out_cols: b_cols,
        inner_dim: inner,
    };

    // The CSR views feed the exact-`ℓ1` / Algorithm 1 sub-phases; a
    // session caches them across queries. Each process derives only the
    // view of the half it holds.
    let a_csr = a.map(|a| cached_or(reuse.a_csr, || a.to_csr()));
    let b_csr = b.map(|b| cached_or(reuse.b_csr, || b.to_csr()));

    let outcome = execute_split(
        exec,
        a.zip(a_csr.as_deref()),
        b.zip(b_csr.as_deref()),
        |link, (a, a_csr): (&BitMatrix, &mpest_matrix::CsrMatrix)| {
            // Phase 1: 2-approximate Lp.
            let lp_pow: f64 = if exact_p1 {
                exact_l1::exchange_alice(link, 0, a_csr)? as f64
            } else {
                lp_norm::alice_phase(
                    link,
                    0,
                    a_csr,
                    b_cols,
                    &lp_params,
                    pub_seed.derive("hh-lp"),
                    alice_seed.derive("hh-lp"),
                )?;
                link.recv("hhb-lp-estimate")?
            };
            let coord = verification_sampler(inner, cells, params, lp_pow, coord_seed);
            let lp_norm_est = lp_pow.max(0.0).powf(1.0 / p);
            let beta = if lp_norm_est <= 0.0 {
                1.0
            } else {
                ((params.consts.alpha_const * cells.ln()).powf(1.0 / p)
                    / (params.phi.powf(1.0 / p) * lp_norm_est))
                    .min(1.0)
            };
            let survivors: Vec<u32> = (0..inner as u32)
                .filter(|&j| universe_seed.unit_at(u64::from(j)) < beta)
                .collect();
            // Phase 2: weights for surviving items, then min-side lists.
            let at = a.transpose();
            let mut u = vec![0u32; inner];
            for &j in &survivors {
                u[j as usize] = at.row_ones(j as usize);
            }
            let v64: Vec<u64> = link.exchange(
                base,
                "hhb-weights",
                &u.iter().map(|&x| u64::from(x)).collect::<Vec<u64>>(),
            )?;
            let v: Vec<u32> = v64.iter().map(|&x| x as u32).collect();
            if v.len() != inner {
                return Err(CommError::protocol("weight length mismatch".to_string()));
            }
            let ca = exchange_alice(link, cfg, &survivors, &u, &v, |k| {
                at.row_indices(k as usize).map(|i| (i, 1i64)).collect()
            })?;
            // Phase 3: candidates from Alice's share. The threshold is a
            // quarter of a heavy entry's expected surviving mass
            // `β·(φ·L_p^p)^{1/p}` — same asymptotics as the paper's
            // `β^p·φL^p/20`, but a constant that actually prunes at
            // laptop scale (see DESIGN.md).
            let tau_cand = beta * params.phi.powf(1.0 / p) * lp_norm_est / 4.0;
            let sa: Vec<(u32, u32)> = ca
                .into_entries()
                .into_iter()
                .filter(|&(_, _, val)| val as f64 >= tau_cand)
                .map(|(r, c, _)| (r, c))
                .collect();
            link.send(
                base + 2,
                "hhb-candidates-a",
                &WPositions {
                    rows: out_rows as u64,
                    cols: b_cols as u64,
                    pos: sa,
                },
            )?;
            let union: WPositions = link.recv("hhb-candidates-union")?;
            // Phase 4: verification bits for each candidate row.
            let mut bits = Vec::new();
            match &coord {
                Some(c) => {
                    for &(i, _) in &union.pos {
                        for &k in c.coords() {
                            bits.push(a.get(i as usize, k as usize));
                        }
                    }
                }
                None => {
                    for &(i, _) in &union.pos {
                        for k in 0..inner {
                            bits.push(a.get(i as usize, k));
                        }
                    }
                }
            }
            link.send(base + 4, "hhb-verify-bits", &WBits(bits))?;
            Ok(())
        },
        |link, (b, b_csr): (&BitMatrix, &mpest_matrix::CsrMatrix)| {
            let lp_pow: f64 = if exact_p1 {
                exact_l1::exchange_bob(link, 0, b_csr)? as f64
            } else {
                let est =
                    lp_norm::bob_phase(link, 0, b_csr, &lp_params, pub_seed.derive("hh-lp"), None)?;
                link.send(2, "hhb-lp-estimate", &est)?;
                est
            };
            let coord = verification_sampler(inner, cells, params, lp_pow, coord_seed);
            let lp_norm_est = lp_pow.max(0.0).powf(1.0 / p);
            let beta = if lp_norm_est <= 0.0 {
                1.0
            } else {
                ((params.consts.alpha_const * cells.ln()).powf(1.0 / p)
                    / (params.phi.powf(1.0 / p) * lp_norm_est))
                    .min(1.0)
            };
            let survivors: Vec<u32> = (0..inner as u32)
                .filter(|&j| universe_seed.unit_at(u64::from(j)) < beta)
                .collect();
            let mut v = vec![0u32; inner];
            for &j in &survivors {
                v[j as usize] = b.row_ones(j as usize);
            }
            let u64s: Vec<u64> = link.exchange(
                base,
                "hhb-weights",
                &v.iter().map(|&x| u64::from(x)).collect::<Vec<u64>>(),
            )?;
            let u: Vec<u32> = u64s.iter().map(|&x| x as u32).collect();
            if u.len() != inner {
                return Err(CommError::protocol("weight length mismatch".to_string()));
            }
            let cb = exchange_bob(link, cfg, &survivors, &u, &v, |k| {
                b.row_indices(k as usize).map(|c| (c, 1i64)).collect()
            })?;
            let tau_cand = beta * params.phi.powf(1.0 / p) * lp_norm_est / 4.0;
            let sa: WPositions = link.recv("hhb-candidates-a")?;
            let mut union: Vec<(u32, u32)> = sa.pos;
            for (r, c, val) in cb.into_entries() {
                if val as f64 >= tau_cand && !union.contains(&(r, c)) {
                    union.push((r, c));
                }
            }
            union.sort_unstable();
            union.dedup();
            link.send(
                base + 3,
                "hhb-candidates-union",
                &WPositions {
                    rows: out_rows as u64,
                    cols: b_cols as u64,
                    pos: union.clone(),
                },
            )?;
            let bits: WBits = link.recv("hhb-verify-bits")?;
            let per = coord.as_ref().map_or(inner, CoordinateSampler::len);
            if bits.0.len() != union.len() * per {
                return Err(CommError::protocol(
                    "verification bits length mismatch".to_string(),
                ));
            }
            // Verify and threshold.
            let tau_out = ((params.phi - params.eps / 2.0).max(0.0) * lp_pow).powf(1.0 / p);
            let mut pairs = Vec::new();
            for (c_idx, &(i, j)) in union.iter().enumerate() {
                let chunk = &bits.0[c_idx * per..(c_idx + 1) * per];
                let est = match &coord {
                    Some(cs) => {
                        let hits = cs
                            .coords()
                            .iter()
                            .zip(chunk.iter())
                            .filter(|(&k, &bit)| bit && b.get(k as usize, j as usize))
                            .count() as u64;
                        cs.estimate(hits)
                    }
                    None => chunk
                        .iter()
                        .enumerate()
                        .filter(|&(k, &bit)| bit && b.get(k, j as usize))
                        .count() as f64,
                };
                if est >= tau_out {
                    pairs.push(HhPair {
                        row: i,
                        col: j,
                        estimate: est,
                    });
                }
            }
            Ok(HeavyHitters { pairs })
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

/// Parameters of the [`AtLeastTJoin`] protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtLeastTParams {
    /// Overlap threshold `T` (pairs with `|A_i ∩ B_j| ≥ T` are reported).
    pub t: u32,
    /// Tolerance band: pairs in `[T·(1−slack), T)` may also appear.
    pub slack: f64,
}

/// The at-least-`T` join as a [`Protocol`]: report the pairs of the
/// product with value at least `T` (paper Section 4.3 application).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AtLeastTJoin;

impl Protocol for AtLeastTJoin {
    type Params = AtLeastTParams;
    type Output = HeavyHitters;

    fn name(&self) -> &'static str {
        "at-least-t-join"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &AtLeastTParams,
    ) -> Result<ProtocolRun<HeavyHitters>, CommError> {
        let (a, b) = ctx.bit_halves()?;
        let (a_csr, b_csr) = ctx.csr_halves();
        let reuse = Reuse {
            a_csr,
            b_csr,
            a_col_abs: ctx.a_col_abs_sums(),
            b_row_abs: ctx.b_row_abs_sums(),
            ..Reuse::default()
        };
        at_least_t_join_unchecked(a, b, ctx.dims(), params, ctx.seed(), reuse, ctx.executor())
    }
}

fn at_least_t_join_unchecked(
    a: Option<&BitMatrix>,
    b: Option<&BitMatrix>,
    dims: ProductDims,
    params: &AtLeastTParams,
    seed: Seed,
    reuse: Reuse<'_>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<HeavyHitters>, CommError> {
    let AtLeastTParams { t, slack } = *params;
    if t == 0 {
        return Err(CommError::protocol(
            "threshold T must be positive".to_string(),
        ));
    }
    if !(slack > 0.0 && slack <= 1.0) {
        return Err(CommError::protocol("slack must lie in (0, 1]".to_string()));
    }
    let a_csr = a.map(|a| cached_or(reuse.a_csr, || a.to_csr()));
    let b_csr = b.map(|b| cached_or(reuse.b_csr, || b.to_csr()));
    // One extra exact-l1 round prices phi; its transcript is absorbed.
    // Both ends learn the exact total (remote runs resolve outputs on
    // both sides), so the derived phi is identical across processes.
    let l1_run =
        crate::exact_l1::run_unchecked(a_csr.as_deref(), b_csr.as_deref(), seed, reuse, exec)?;
    let l1 = l1_run.output as f64;
    if l1 <= 0.0 || f64::from(t) > l1 {
        return Ok(ProtocolRun {
            output: HeavyHitters::default(),
            transcript: l1_run.transcript,
        });
    }
    let phi = (f64::from(t) / l1).min(1.0);
    let eps = (phi * slack).min(phi);
    let mut run = run_unchecked(
        a,
        b,
        dims,
        &HhBinaryParams::new(1.0, phi, eps),
        seed,
        Reuse {
            a_csr: a_csr.as_deref(),
            b_csr: b_csr.as_deref(),
            ..Reuse::default()
        },
        exec,
    )?;
    let mut transcript = l1_run.transcript;
    transcript.absorb_sequential(run.transcript);
    run.transcript = transcript;
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{norms, stats, Workloads};

    fn run(
        a: &BitMatrix,
        b: &BitMatrix,
        params: &HhBinaryParams,
        seed: Seed,
    ) -> Result<ProtocolRun<HeavyHitters>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&HhBinary, params, seed)
    }

    fn at_least_t_join(
        a: &BitMatrix,
        b: &BitMatrix,
        t: u32,
        slack: f64,
        seed: Seed,
    ) -> Result<ProtocolRun<HeavyHitters>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(
            &AtLeastTJoin,
            &AtLeastTParams { t, slack },
            seed,
        )
    }

    fn planted_setup(
        n: usize,
        u: usize,
        overlap: usize,
        seed: u64,
    ) -> (BitMatrix, BitMatrix, Vec<(u32, u32)>, f64) {
        let (a, b, planted) = Workloads::planted_pairs(n, u, 0.05, &[(3, 7)], overlap, seed);
        let c = a.to_csr().matmul(&b.to_csr());
        let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
        let phi = ((overlap as f64 - 8.0) / l1).min(0.9);
        (a, b, planted, phi)
    }

    #[test]
    fn containment_p1() {
        let (a, b, planted, phi) = planted_setup(32, 64, 40, 1);
        let params = HhBinaryParams::new(1.0, phi, (phi / 2.0).min(0.4));
        let (ac, bc) = (a.to_csr(), b.to_csr());
        let must = stats::heavy_hitters_of_product(&ac, &bc, PNorm::ONE, phi);
        let may = stats::heavy_hitters_of_product(&ac, &bc, PNorm::ONE, phi - params.eps);
        let mut ok = 0;
        for t in 0..9 {
            let run = run(&a, &b, &params, Seed(100 + t)).unwrap();
            let got = run.output.positions();
            let contains_must = must.iter().all(|pos| got.contains(pos));
            let within_may = got.iter().all(|pos| may.contains(pos));
            if contains_must && within_may {
                ok += 1;
            }
            for &(i, j) in &planted {
                assert!(
                    run.output.contains(i, j) || !must.contains(&(i, j)),
                    "planted heavy ({i},{j}) missing at seed {t}"
                );
            }
        }
        assert!(ok >= 6, "binary HH containment failed too often: {ok}/9");
    }

    #[test]
    fn cheaper_than_general_protocol() {
        // The point of Theorem 5.3: binary inputs cost Õ(n + φ/ε²),
        // beating Algorithm 4's Õ(√φ/ε · n) on the same instance.
        let (a, b, _, phi) = planted_setup(48, 96, 64, 3);
        let eps = (phi / 2.0).min(0.4);
        let run_bin = run(&a, &b, &HhBinaryParams::new(1.0, phi, eps), Seed(5)).unwrap();
        let run_gen = crate::Session::new(a.to_csr(), b.to_csr())
            .run_seeded(
                &crate::HhGeneral,
                &crate::hh_general::HhGeneralParams::new(1.0, phi, eps),
                Seed(5),
            )
            .unwrap();
        assert!(
            run_bin.bits() < run_gen.bits() * 3,
            "binary {} vs general {} bits",
            run_bin.bits(),
            run_gen.bits()
        );
    }

    #[test]
    fn empty_product() {
        let (a, b) = Workloads::disjoint_supports(16, 32, 0.3, 7);
        let params = HhBinaryParams::new(1.0, 0.5, 0.25);
        let run = run(&a, &b, &params, Seed(2)).unwrap();
        assert!(run.output.pairs.is_empty());
    }

    #[test]
    fn p2_variant() {
        let (a, b, planted) = Workloads::planted_pairs(24, 48, 0.05, &[(2, 4)], 36, 9);
        let c = a.to_csr().matmul(&b.to_csr());
        let l2 = norms::csr_lp_pow(&c, PNorm::TWO);
        let phi = ((30.0f64 * 30.0) / l2).min(0.9);
        let params = HhBinaryParams::new(2.0, phi, (phi / 2.0).min(phi));
        let mut hit = 0;
        for t in 0..9 {
            let run = run(&a, &b, &params, Seed(400 + t)).unwrap();
            if planted.iter().all(|&(i, j)| run.output.contains(i, j)) {
                hit += 1;
            }
        }
        assert!(hit >= 6, "p=2 planted recovery {hit}/9");
    }

    #[test]
    fn constant_rounds() {
        let (a, b, _, phi) = planted_setup(24, 48, 30, 11);
        let params = HhBinaryParams::new(1.0, phi.max(0.05), (phi / 2.0).clamp(0.02, 0.4));
        let run = run(&a, &b, &params, Seed(8)).unwrap();
        assert!(run.rounds() <= 8, "rounds {} not O(1)-small", run.rounds());
    }

    #[test]
    fn rejects_invalid() {
        let a = BitMatrix::zeros(4, 4);
        let b = BitMatrix::zeros(4, 4);
        assert!(run(&a, &b, &HhBinaryParams::new(1.0, 0.1, 0.2), Seed(0)).is_err());
        assert!(run(&a, &b, &HhBinaryParams::new(0.0, 0.5, 0.2), Seed(0)).is_err());
    }

    #[test]
    fn at_least_t_join_finds_threshold_pairs() {
        let (a, b, planted) = Workloads::planted_pairs(32, 64, 0.04, &[(5, 9)], 40, 21);
        let c = a.to_csr().matmul(&b.to_csr());
        let t = (c.get(5, 9) - 6).max(1) as u32;
        let mut hit = 0;
        for s in 0..7 {
            let run = at_least_t_join(&a, &b, t, 0.5, Seed(800 + s)).unwrap();
            // Every reported pair is genuinely near-threshold.
            for p in &run.output.pairs {
                assert!(
                    c.get(p.row as usize, p.col) as f64 >= f64::from(t) * 0.4,
                    "reported pair far below threshold"
                );
            }
            if planted.iter().all(|&(i, j)| run.output.contains(i, j)) {
                hit += 1;
            }
        }
        assert!(hit >= 5, "at-least-T join missed planted pair: {hit}/7");
    }

    #[test]
    fn at_least_t_join_edge_cases() {
        let a = BitMatrix::zeros(8, 8);
        let b = BitMatrix::zeros(8, 8);
        // Zero product: empty result, no error.
        let run = at_least_t_join(&a, &b, 3, 0.5, Seed(0)).unwrap();
        assert!(run.output.pairs.is_empty());
        // Bad parameters.
        assert!(at_least_t_join(&a, &b, 0, 0.5, Seed(0)).is_err());
        assert!(at_least_t_join(&a, &b, 3, 0.0, Seed(0)).is_err());
        // Threshold above the total mass: trivially empty.
        let (a, b) = (
            Workloads::bernoulli_bits(8, 8, 0.2, 1),
            Workloads::bernoulli_bits(8, 8, 0.2, 2),
        );
        let run = at_least_t_join(&a, &b, 1_000_000, 0.5, Seed(1)).unwrap();
        assert!(run.output.pairs.is_empty());
    }
}
