//! Wire encodings for matrix- and sketch-typed messages.
//!
//! The `Wire` trait lives in `mpest-comm` and the payload types live in
//! `mpest-matrix` / `mpest-sketch`, so this crate provides newtype
//! adapters. Encodings follow the paper's accounting: indices at
//! `⌈log₂ dim⌉` bits, integer values as zigzag varints, real sketch words
//! at 64 bits, field words at 61 bits.

use crate::request::{AnyOutput, EstimateReport, EstimateRequest};
use crate::result::{HeavyHitters, HhPair, L1Sample, LinfEstimate, MatrixSample, ProductShares};
use crate::trivial::ExactStats;
use mpest_comm::{width_for, BitReader, BitWriter, CommError, Wire};
use mpest_matrix::{DenseMatrix, PNorm};
use mpest_sketch::{SkMat, M61};

/// A sparse integer vector over a known dimension: indices fixed-width,
/// values zigzag varints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WSparseVec {
    /// Ambient dimension (determines index width).
    pub dim: u64,
    /// `(index, value)` entries.
    pub entries: Vec<(u32, i64)>,
}

impl Wire for WSparseVec {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.dim);
        w.write_varint(self.entries.len() as u64);
        let width = width_for(self.dim);
        for &(i, v) in &self.entries {
            w.write_bits(u64::from(i), width);
            w.write_zigzag(v);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let dim = r.read_varint()?;
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("sparse vec length overflow"))?;
        let width = width_for(dim);
        let mut entries = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let i = u32::try_from(r.read_bits(width)?)
                .map_err(|_| CommError::decode("index overflow"))?;
            let v = r.read_zigzag()?;
            entries.push((i, v));
        }
        Ok(Self { dim, entries })
    }
}

/// A sparse *binary* vector: indices only (used by the binary protocols,
/// where shipping unit values would double the cost for nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WIndexVec {
    /// Ambient dimension (determines index width).
    pub dim: u64,
    /// Sorted indices of the ones.
    pub idx: Vec<u32>,
}

impl Wire for WIndexVec {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.dim);
        w.write_varint(self.idx.len() as u64);
        let width = width_for(self.dim);
        for &i in &self.idx {
            w.write_bits(u64::from(i), width);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let dim = r.read_varint()?;
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("index vec length overflow"))?;
        let width = width_for(dim);
        let mut idx = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            idx.push(
                u32::try_from(r.read_bits(width)?)
                    .map_err(|_| CommError::decode("index overflow"))?,
            );
        }
        Ok(Self { dim, idx })
    }
}

/// A sketched-rows matrix (one sketch vector per input row), word-type
/// erased: real words at 64 bits, field words at 61 bits.
#[derive(Debug, Clone, PartialEq)]
pub struct WSkMat(pub SkMat);

/// The shared encoding behind [`WSkMat`] and [`WSkMatShared`]: the two
/// wrappers are byte-identical on the wire, so a cached `Arc` sketch can
/// answer a peer that decodes the owned form.
fn encode_skmat(m: &SkMat, w: &mut BitWriter) {
    match m {
        SkMat::Real(m) => {
            w.write_bit(false);
            w.write_varint(m.rows() as u64);
            w.write_varint(m.cols() as u64);
            for &x in m.as_slice() {
                w.write_f64(x);
            }
        }
        SkMat::Field(m) => {
            w.write_bit(true);
            w.write_varint(m.rows() as u64);
            w.write_varint(m.cols() as u64);
            for &x in m.as_slice() {
                w.write_bits(x.value(), 61);
            }
        }
    }
}

impl Wire for WSkMat {
    fn encode(&self, w: &mut BitWriter) {
        encode_skmat(&self.0, w);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let is_field = r.read_bit()?;
        let rows =
            usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("rows overflow"))?;
        let cols =
            usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("cols overflow"))?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| CommError::decode("matrix size overflow"))?;
        if is_field {
            let mut data = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                data.push(M61::new(r.read_bits(61)?));
            }
            Ok(WSkMat(SkMat::Field(DenseMatrix::from_vec(
                rows, cols, data,
            ))))
        } else {
            let mut data = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                data.push(r.read_f64()?);
            }
            Ok(WSkMat(SkMat::Real(DenseMatrix::from_vec(rows, cols, data))))
        }
    }
}

/// Arc-backed counterpart of [`WSkMat`] for cache-resident sketches:
/// byte-identical on the wire, but sends straight out of the session's
/// sketch memo store without cloning the matrix. Decodes into a fresh
/// `Arc`, so the two wrappers interoperate across a channel.
#[derive(Debug, Clone)]
pub struct WSkMatShared(pub std::sync::Arc<SkMat>);

impl Wire for WSkMatShared {
    fn encode(&self, w: &mut BitWriter) {
        encode_skmat(&self.0, w);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        WSkMat::decode(r).map(|m| Self(std::sync::Arc::new(m.0)))
    }
}

/// A dense field matrix (the `ℓ0`-sampler sketches of Theorem 3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct WFieldMat(pub DenseMatrix<M61>);

/// The shared encoding behind [`WFieldMat`] and [`WFieldMatShared`].
fn encode_field_mat(m: &DenseMatrix<M61>, w: &mut BitWriter) {
    w.write_varint(m.rows() as u64);
    w.write_varint(m.cols() as u64);
    for &x in m.as_slice() {
        w.write_bits(x.value(), 61);
    }
}

impl Wire for WFieldMat {
    fn encode(&self, w: &mut BitWriter) {
        encode_field_mat(&self.0, w);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let rows =
            usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("rows overflow"))?;
        let cols =
            usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("cols overflow"))?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| CommError::decode("matrix size overflow"))?;
        let mut data = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            data.push(M61::new(r.read_bits(61)?));
        }
        Ok(WFieldMat(DenseMatrix::from_vec(rows, cols, data)))
    }
}

/// Arc-backed counterpart of [`WFieldMat`] (see [`WSkMatShared`]).
#[derive(Debug, Clone)]
pub struct WFieldMatShared(pub std::sync::Arc<DenseMatrix<M61>>);

impl Wire for WFieldMatShared {
    fn encode(&self, w: &mut BitWriter) {
        encode_field_mat(&self.0, w);
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        WFieldMat::decode(r).map(|m| Self(std::sync::Arc::new(m.0)))
    }
}

/// A grid of small counts packed at a per-row fixed width (the per-level
/// column sums of Algorithms 2–3). Each row carries a 6-bit width header
/// and then `cols` entries at that width — much tighter than varints when
/// counts shrink level by level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WU64Grid(pub Vec<Vec<u64>>);

impl Wire for WU64Grid {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.0.len() as u64);
        w.write_varint(self.0.first().map_or(0, Vec::len) as u64);
        for row in &self.0 {
            let max = row.iter().copied().max().unwrap_or(0);
            let width = width_for(max.saturating_add(1)).max(1);
            w.write_bits(u64::from(width), 6);
            for &v in row {
                w.write_bits(v, width);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let rows = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("grid rows overflow"))?;
        let cols = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("grid cols overflow"))?;
        let mut out = Vec::with_capacity(rows.min(1 << 16));
        for _ in 0..rows {
            let width = r.read_bits(6)? as u32;
            if width == 0 || width > 64 {
                return Err(CommError::decode("invalid grid width"));
            }
            let mut row = Vec::with_capacity(cols.min(1 << 24));
            for _ in 0..cols {
                row.push(r.read_bits(width)?);
            }
            out.push(row);
        }
        Ok(WU64Grid(out))
    }
}

/// Positions `(row, col)` at fixed widths (heavy-hitter candidate sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WPositions {
    /// Row dimension (index width).
    pub rows: u64,
    /// Column dimension (index width).
    pub cols: u64,
    /// The positions.
    pub pos: Vec<(u32, u32)>,
}

impl Wire for WPositions {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.rows);
        w.write_varint(self.cols);
        w.write_varint(self.pos.len() as u64);
        let rw = width_for(self.rows);
        let cw = width_for(self.cols);
        for &(i, j) in &self.pos {
            w.write_bits(u64::from(i), rw);
            w.write_bits(u64::from(j), cw);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let rows = r.read_varint()?;
        let cols = r.read_varint()?;
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("positions length overflow"))?;
        let rw = width_for(rows);
        let cw = width_for(cols);
        let mut pos = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let i =
                u32::try_from(r.read_bits(rw)?).map_err(|_| CommError::decode("row overflow"))?;
            let j =
                u32::try_from(r.read_bits(cw)?).map_err(|_| CommError::decode("col overflow"))?;
            pos.push((i, j));
        }
        Ok(Self { rows, cols, pos })
    }
}

/// A party's additive-share accumulator as wire data (shape plus sorted
/// nonzero triplets). The sparse-matmul party functions return these:
/// party outputs must be [`Wire`] so the remote executor's output
/// exchange can complete the outcome on both processes.
#[derive(Debug, Clone)]
pub struct WAccum(pub mpest_matrix::Accumulator);

impl Wire for WAccum {
    fn encode(&self, w: &mut BitWriter) {
        let (rows, cols) = self.0.shape();
        w.write_varint(rows as u64);
        w.write_varint(cols as u64);
        self.0.entries().encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let rows = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("accumulator rows overflow"))?;
        let cols = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("accumulator cols overflow"))?;
        let entries: Vec<(u32, u32, i64)> = Vec::decode(r)?;
        let mut acc = mpest_matrix::Accumulator::new(rows, cols);
        for (i, j, v) in entries {
            if i as usize >= rows || j as usize >= cols {
                return Err(CommError::decode("accumulator entry out of range"));
            }
            acc.add(i, j, v);
        }
        Ok(Self(acc))
    }
}

/// A packed bit payload (per-candidate coordinate samples in Section 5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WBits(pub Vec<bool>);

impl Wire for WBits {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.0.len() as u64);
        for &b in &self.0 {
            w.write_bit(b);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("bits length overflow"))?;
        let mut out = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            out.push(r.read_bit()?);
        }
        Ok(WBits(out))
    }
}

// ---------------------------------------------------------------------------
// Request / report encodings — the serve layer's payloads.
//
// `mpest-net` ships `EstimateRequest`s to a daemon and `EstimateReport`s
// (type-erased outputs plus full transcripts) back, so every one of
// these types has a pinned wire format. Tags are 4-bit (8 output shapes,
// 14 request variants); adding a variant appends a tag, never renumbers
// — the golden-byte tests in `tests/` pin this.
// ---------------------------------------------------------------------------

fn encode_pnorm(w: &mut BitWriter, p: PNorm) {
    match p {
        PNorm::Zero => w.write_bits(0, 2),
        PNorm::P(v) => {
            w.write_bits(1, 2);
            w.write_f64(v);
        }
        PNorm::Inf => w.write_bits(2, 2),
    }
}

fn decode_pnorm(r: &mut BitReader<'_>) -> Result<PNorm, CommError> {
    match r.read_bits(2)? {
        0 => Ok(PNorm::Zero),
        1 => Ok(PNorm::P(r.read_f64()?)),
        2 => Ok(PNorm::Inf),
        tag => Err(CommError::decode(format!("unknown PNorm tag {tag}"))),
    }
}

/// Maps a wire-carried protocol name back to the `&'static str` the
/// report layer uses. Only the 14 catalog names decode; anything else is
/// a stream from an incompatible build.
///
/// # Errors
///
/// Returns [`CommError::Decode`] for an unknown name.
pub fn protocol_static_name(name: &str) -> Result<&'static str, CommError> {
    const NAMES: [&str; 14] = [
        "lp",
        "lp-baseline",
        "exact-l1",
        "l1-sample",
        "l0-sample",
        "sparse-matmul",
        "linf-binary",
        "linf-kappa",
        "linf-general",
        "hh-general",
        "hh-binary",
        "at-least-t-join",
        "trivial-binary",
        "trivial-csr",
    ];
    NAMES
        .iter()
        .find(|&&n| n == name)
        .copied()
        .ok_or_else(|| CommError::decode(format!("unknown protocol name {name:?}")))
}

impl Wire for MatrixSample {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            MatrixSample::Sampled { row, col, value } => {
                w.write_bits(0, 2);
                w.write_varint(u64::from(*row));
                w.write_varint(u64::from(*col));
                w.write_zigzag(*value);
            }
            MatrixSample::ZeroMatrix => w.write_bits(1, 2),
            MatrixSample::Failed => w.write_bits(2, 2),
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        match r.read_bits(2)? {
            0 => Ok(MatrixSample::Sampled {
                row: u32::try_from(r.read_varint()?)
                    .map_err(|_| CommError::decode("row overflow"))?,
                col: u32::try_from(r.read_varint()?)
                    .map_err(|_| CommError::decode("col overflow"))?,
                value: r.read_zigzag()?,
            }),
            1 => Ok(MatrixSample::ZeroMatrix),
            2 => Ok(MatrixSample::Failed),
            tag => Err(CommError::decode(format!("unknown sample tag {tag}"))),
        }
    }
}

impl Wire for L1Sample {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(u64::from(self.row));
        w.write_varint(u64::from(self.col));
        w.write_varint(u64::from(self.witness));
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let field = |r: &mut BitReader<'_>, what| {
            u32::try_from(r.read_varint()?)
                .map_err(|_| CommError::decode(format!("{what} overflow")))
        };
        Ok(Self {
            row: field(r, "row")?,
            col: field(r, "col")?,
            witness: field(r, "witness")?,
        })
    }
}

impl Wire for HhPair {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(u64::from(self.row));
        w.write_varint(u64::from(self.col));
        w.write_f64(self.estimate);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(Self {
            row: u32::try_from(r.read_varint()?).map_err(|_| CommError::decode("row overflow"))?,
            col: u32::try_from(r.read_varint()?).map_err(|_| CommError::decode("col overflow"))?,
            estimate: r.read_f64()?,
        })
    }
}

impl Wire for HeavyHitters {
    fn encode(&self, w: &mut BitWriter) {
        self.pairs.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(Self {
            pairs: Vec::decode(r)?,
        })
    }
}

impl Wire for LinfEstimate {
    fn encode(&self, w: &mut BitWriter) {
        w.write_f64(self.estimate);
        self.level.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(Self {
            estimate: r.read_f64()?,
            level: Option::decode(r)?,
        })
    }
}

impl Wire for ProductShares {
    fn encode(&self, w: &mut BitWriter) {
        self.alice.encode(w);
        self.bob.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(Self {
            alice: Vec::decode(r)?,
            bob: Vec::decode(r)?,
        })
    }
}

impl Wire for ExactStats {
    fn encode(&self, w: &mut BitWriter) {
        w.write_f64(self.l0);
        w.write_f64(self.l1);
        w.write_f64(self.l2_sq);
        self.linf.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(Self {
            l0: r.read_f64()?,
            l1: r.read_f64()?,
            l2_sq: r.read_f64()?,
            linf: Wire::decode(r)?,
        })
    }
}

impl Wire for AnyOutput {
    fn encode(&self, w: &mut BitWriter) {
        match self {
            AnyOutput::Scalar(v) => {
                w.write_bits(0, 4);
                w.write_f64(*v);
            }
            AnyOutput::Count(v) => {
                w.write_bits(1, 4);
                v.encode(w);
            }
            AnyOutput::Sample(s) => {
                w.write_bits(2, 4);
                s.encode(w);
            }
            AnyOutput::L1Sample(s) => {
                w.write_bits(3, 4);
                s.encode(w);
            }
            AnyOutput::Linf(e) => {
                w.write_bits(4, 4);
                e.encode(w);
            }
            AnyOutput::HeavyHitters(hh) => {
                w.write_bits(5, 4);
                hh.encode(w);
            }
            AnyOutput::Shares(sh) => {
                w.write_bits(6, 4);
                sh.encode(w);
            }
            AnyOutput::Exact(st) => {
                w.write_bits(7, 4);
                st.encode(w);
            }
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(match r.read_bits(4)? {
            0 => AnyOutput::Scalar(r.read_f64()?),
            1 => AnyOutput::Count(i128::decode(r)?),
            2 => AnyOutput::Sample(MatrixSample::decode(r)?),
            3 => AnyOutput::L1Sample(Option::decode(r)?),
            4 => AnyOutput::Linf(LinfEstimate::decode(r)?),
            5 => AnyOutput::HeavyHitters(HeavyHitters::decode(r)?),
            6 => AnyOutput::Shares(ProductShares::decode(r)?),
            7 => AnyOutput::Exact(ExactStats::decode(r)?),
            tag => return Err(CommError::decode(format!("unknown output tag {tag}"))),
        })
    }
}

impl Wire for EstimateReport {
    fn encode(&self, w: &mut BitWriter) {
        self.protocol.to_owned().encode(w);
        self.output.encode(w);
        self.transcript.encode(w);
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(Self {
            protocol: protocol_static_name(&String::decode(r)?)?,
            output: AnyOutput::decode(r)?,
            transcript: mpest_comm::Transcript::decode(r)?,
        })
    }
}

impl Wire for EstimateRequest {
    fn encode(&self, w: &mut BitWriter) {
        match *self {
            EstimateRequest::LpNorm { p, eps } => {
                w.write_bits(0, 4);
                encode_pnorm(w, p);
                w.write_f64(eps);
            }
            EstimateRequest::LpBaseline { p, eps } => {
                w.write_bits(1, 4);
                encode_pnorm(w, p);
                w.write_f64(eps);
            }
            EstimateRequest::ExactL1 => w.write_bits(2, 4),
            EstimateRequest::L1Sample => w.write_bits(3, 4),
            EstimateRequest::L0Sample { eps } => {
                w.write_bits(4, 4);
                w.write_f64(eps);
            }
            EstimateRequest::SparseMatmul => w.write_bits(5, 4),
            EstimateRequest::LinfBinary { eps } => {
                w.write_bits(6, 4);
                w.write_f64(eps);
            }
            EstimateRequest::LinfKappa { kappa } => {
                w.write_bits(7, 4);
                w.write_f64(kappa);
            }
            EstimateRequest::LinfGeneral { kappa } => {
                w.write_bits(8, 4);
                w.write_varint(kappa as u64);
            }
            EstimateRequest::HhGeneral { p, phi, eps } => {
                w.write_bits(9, 4);
                w.write_f64(p);
                w.write_f64(phi);
                w.write_f64(eps);
            }
            EstimateRequest::HhBinary { p, phi, eps } => {
                w.write_bits(10, 4);
                w.write_f64(p);
                w.write_f64(phi);
                w.write_f64(eps);
            }
            EstimateRequest::AtLeastTJoin { t, slack } => {
                w.write_bits(11, 4);
                w.write_varint(u64::from(t));
                w.write_f64(slack);
            }
            EstimateRequest::TrivialBinary => w.write_bits(12, 4),
            EstimateRequest::TrivialCsr => w.write_bits(13, 4),
        }
    }
    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        Ok(match r.read_bits(4)? {
            0 => EstimateRequest::LpNorm {
                p: decode_pnorm(r)?,
                eps: r.read_f64()?,
            },
            1 => EstimateRequest::LpBaseline {
                p: decode_pnorm(r)?,
                eps: r.read_f64()?,
            },
            2 => EstimateRequest::ExactL1,
            3 => EstimateRequest::L1Sample,
            4 => EstimateRequest::L0Sample { eps: r.read_f64()? },
            5 => EstimateRequest::SparseMatmul,
            6 => EstimateRequest::LinfBinary { eps: r.read_f64()? },
            7 => EstimateRequest::LinfKappa {
                kappa: r.read_f64()?,
            },
            8 => EstimateRequest::LinfGeneral {
                kappa: usize::try_from(r.read_varint()?)
                    .map_err(|_| CommError::decode("kappa overflow"))?,
            },
            9 => EstimateRequest::HhGeneral {
                p: r.read_f64()?,
                phi: r.read_f64()?,
                eps: r.read_f64()?,
            },
            10 => EstimateRequest::HhBinary {
                p: r.read_f64()?,
                phi: r.read_f64()?,
                eps: r.read_f64()?,
            },
            11 => EstimateRequest::AtLeastTJoin {
                t: u32::try_from(r.read_varint()?).map_err(|_| CommError::decode("t overflow"))?,
                slack: r.read_f64()?,
            },
            12 => EstimateRequest::TrivialBinary,
            13 => EstimateRequest::TrivialCsr,
            tag => return Err(CommError::decode(format!("unknown request tag {tag}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = BitWriter::new();
        v.encode(&mut w);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(r.bits_read(), bits);
    }

    #[test]
    fn sparse_vec_roundtrip_and_cost() {
        let v = WSparseVec {
            dim: 1024,
            entries: vec![(0, 1), (512, -3), (1023, 100)],
        };
        roundtrip(&v);
        // dim varint (16) + len varint (8) + 3 * (10 idx + zigzag).
        let bits = v.encoded_bits();
        assert!(bits >= 16 + 8 + 3 * 10, "bits {bits}");
    }

    #[test]
    fn index_vec_roundtrip() {
        roundtrip(&WIndexVec {
            dim: 256,
            idx: vec![0, 17, 255],
        });
        roundtrip(&WIndexVec {
            dim: 1,
            idx: vec![],
        });
        // Cost: indices at exactly 8 bits each for dim 256.
        let v = WIndexVec {
            dim: 256,
            idx: vec![1, 2, 3, 4],
        };
        assert_eq!(v.encoded_bits(), 16 + 8 + 4 * 8);
    }

    #[test]
    fn skmat_real_roundtrip() {
        let m = DenseMatrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.5);
        roundtrip(&WSkMat(SkMat::Real(m.clone())));
        let w = WSkMat(SkMat::Real(m));
        assert_eq!(w.encoded_bits(), 1 + 8 + 8 + 12 * 64);
    }

    #[test]
    fn skmat_field_roundtrip() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| M61::new((i * 3 + j) as u64 * 999));
        roundtrip(&WSkMat(SkMat::Field(m.clone())));
        let w = WSkMat(SkMat::Field(m));
        assert_eq!(w.encoded_bits(), 1 + 8 + 8 + 6 * 61);
    }

    #[test]
    fn field_mat_roundtrip() {
        let m = DenseMatrix::from_fn(2, 2, |i, j| M61::new((i + j) as u64));
        roundtrip(&WFieldMat(m));
    }

    #[test]
    fn grid_roundtrip_and_packing() {
        let g = WU64Grid(vec![vec![5, 0, 63, 2], vec![1, 1, 0, 0], vec![0, 0, 0, 0]]);
        roundtrip(&g);
        // Row widths: 6 (max 63), 1 (max 1), 1 (max 0 -> width 1).
        assert_eq!(g.encoded_bits(), 8 + 8 + (6 + 24) + (6 + 4) + (6 + 4));
        roundtrip(&WU64Grid(vec![]));
    }

    #[test]
    fn positions_roundtrip() {
        roundtrip(&WPositions {
            rows: 100,
            cols: 200,
            pos: vec![(0, 0), (99, 199)],
        });
    }

    #[test]
    fn bits_roundtrip() {
        roundtrip(&WBits(vec![true, false, true, true, false]));
        roundtrip(&WBits(vec![]));
        let b = WBits(vec![true; 100]);
        assert_eq!(b.encoded_bits(), 8 + 100);
    }
}
