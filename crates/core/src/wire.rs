//! Wire encodings for matrix- and sketch-typed messages.
//!
//! The `Wire` trait lives in `mpest-comm` and the payload types live in
//! `mpest-matrix` / `mpest-sketch`, so this crate provides newtype
//! adapters. Encodings follow the paper's accounting: indices at
//! `⌈log₂ dim⌉` bits, integer values as zigzag varints, real sketch words
//! at 64 bits, field words at 61 bits.

use mpest_comm::{width_for, BitReader, BitWriter, CommError, Wire};
use mpest_matrix::DenseMatrix;
use mpest_sketch::{SkMat, M61};

/// A sparse integer vector over a known dimension: indices fixed-width,
/// values zigzag varints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WSparseVec {
    /// Ambient dimension (determines index width).
    pub dim: u64,
    /// `(index, value)` entries.
    pub entries: Vec<(u32, i64)>,
}

impl Wire for WSparseVec {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.dim);
        w.write_varint(self.entries.len() as u64);
        let width = width_for(self.dim);
        for &(i, v) in &self.entries {
            w.write_bits(u64::from(i), width);
            w.write_zigzag(v);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let dim = r.read_varint()?;
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("sparse vec length overflow"))?;
        let width = width_for(dim);
        let mut entries = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let i = u32::try_from(r.read_bits(width)?)
                .map_err(|_| CommError::decode("index overflow"))?;
            let v = r.read_zigzag()?;
            entries.push((i, v));
        }
        Ok(Self { dim, entries })
    }
}

/// A sparse *binary* vector: indices only (used by the binary protocols,
/// where shipping unit values would double the cost for nothing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WIndexVec {
    /// Ambient dimension (determines index width).
    pub dim: u64,
    /// Sorted indices of the ones.
    pub idx: Vec<u32>,
}

impl Wire for WIndexVec {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.dim);
        w.write_varint(self.idx.len() as u64);
        let width = width_for(self.dim);
        for &i in &self.idx {
            w.write_bits(u64::from(i), width);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let dim = r.read_varint()?;
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("index vec length overflow"))?;
        let width = width_for(dim);
        let mut idx = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            idx.push(
                u32::try_from(r.read_bits(width)?)
                    .map_err(|_| CommError::decode("index overflow"))?,
            );
        }
        Ok(Self { dim, idx })
    }
}

/// A sketched-rows matrix (one sketch vector per input row), word-type
/// erased: real words at 64 bits, field words at 61 bits.
#[derive(Debug, Clone, PartialEq)]
pub struct WSkMat(pub SkMat);

impl Wire for WSkMat {
    fn encode(&self, w: &mut BitWriter) {
        match &self.0 {
            SkMat::Real(m) => {
                w.write_bit(false);
                w.write_varint(m.rows() as u64);
                w.write_varint(m.cols() as u64);
                for &x in m.as_slice() {
                    w.write_f64(x);
                }
            }
            SkMat::Field(m) => {
                w.write_bit(true);
                w.write_varint(m.rows() as u64);
                w.write_varint(m.cols() as u64);
                for &x in m.as_slice() {
                    w.write_bits(x.value(), 61);
                }
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let is_field = r.read_bit()?;
        let rows =
            usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("rows overflow"))?;
        let cols =
            usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("cols overflow"))?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| CommError::decode("matrix size overflow"))?;
        if is_field {
            let mut data = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                data.push(M61::new(r.read_bits(61)?));
            }
            Ok(WSkMat(SkMat::Field(DenseMatrix::from_vec(
                rows, cols, data,
            ))))
        } else {
            let mut data = Vec::with_capacity(len.min(1 << 24));
            for _ in 0..len {
                data.push(r.read_f64()?);
            }
            Ok(WSkMat(SkMat::Real(DenseMatrix::from_vec(rows, cols, data))))
        }
    }
}

/// A dense field matrix (the `ℓ0`-sampler sketches of Theorem 3.2).
#[derive(Debug, Clone, PartialEq)]
pub struct WFieldMat(pub DenseMatrix<M61>);

impl Wire for WFieldMat {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.0.rows() as u64);
        w.write_varint(self.0.cols() as u64);
        for &x in self.0.as_slice() {
            w.write_bits(x.value(), 61);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let rows =
            usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("rows overflow"))?;
        let cols =
            usize::try_from(r.read_varint()?).map_err(|_| CommError::decode("cols overflow"))?;
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| CommError::decode("matrix size overflow"))?;
        let mut data = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            data.push(M61::new(r.read_bits(61)?));
        }
        Ok(WFieldMat(DenseMatrix::from_vec(rows, cols, data)))
    }
}

/// A grid of small counts packed at a per-row fixed width (the per-level
/// column sums of Algorithms 2–3). Each row carries a 6-bit width header
/// and then `cols` entries at that width — much tighter than varints when
/// counts shrink level by level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WU64Grid(pub Vec<Vec<u64>>);

impl Wire for WU64Grid {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.0.len() as u64);
        w.write_varint(self.0.first().map_or(0, Vec::len) as u64);
        for row in &self.0 {
            let max = row.iter().copied().max().unwrap_or(0);
            let width = width_for(max.saturating_add(1)).max(1);
            w.write_bits(u64::from(width), 6);
            for &v in row {
                w.write_bits(v, width);
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let rows = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("grid rows overflow"))?;
        let cols = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("grid cols overflow"))?;
        let mut out = Vec::with_capacity(rows.min(1 << 16));
        for _ in 0..rows {
            let width = r.read_bits(6)? as u32;
            if width == 0 || width > 64 {
                return Err(CommError::decode("invalid grid width"));
            }
            let mut row = Vec::with_capacity(cols.min(1 << 24));
            for _ in 0..cols {
                row.push(r.read_bits(width)?);
            }
            out.push(row);
        }
        Ok(WU64Grid(out))
    }
}

/// Positions `(row, col)` at fixed widths (heavy-hitter candidate sets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WPositions {
    /// Row dimension (index width).
    pub rows: u64,
    /// Column dimension (index width).
    pub cols: u64,
    /// The positions.
    pub pos: Vec<(u32, u32)>,
}

impl Wire for WPositions {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.rows);
        w.write_varint(self.cols);
        w.write_varint(self.pos.len() as u64);
        let rw = width_for(self.rows);
        let cw = width_for(self.cols);
        for &(i, j) in &self.pos {
            w.write_bits(u64::from(i), rw);
            w.write_bits(u64::from(j), cw);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let rows = r.read_varint()?;
        let cols = r.read_varint()?;
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("positions length overflow"))?;
        let rw = width_for(rows);
        let cw = width_for(cols);
        let mut pos = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let i =
                u32::try_from(r.read_bits(rw)?).map_err(|_| CommError::decode("row overflow"))?;
            let j =
                u32::try_from(r.read_bits(cw)?).map_err(|_| CommError::decode("col overflow"))?;
            pos.push((i, j));
        }
        Ok(Self { rows, cols, pos })
    }
}

/// A packed bit payload (per-candidate coordinate samples in Section 5.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WBits(pub Vec<bool>);

impl Wire for WBits {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.0.len() as u64);
        for &b in &self.0 {
            w.write_bit(b);
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let len = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("bits length overflow"))?;
        let mut out = Vec::with_capacity(len.min(1 << 24));
        for _ in 0..len {
            out.push(r.read_bit()?);
        }
        Ok(WBits(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = BitWriter::new();
        v.encode(&mut w);
        let (bytes, bits) = w.finish();
        let mut r = BitReader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(r.bits_read(), bits);
    }

    #[test]
    fn sparse_vec_roundtrip_and_cost() {
        let v = WSparseVec {
            dim: 1024,
            entries: vec![(0, 1), (512, -3), (1023, 100)],
        };
        roundtrip(&v);
        // dim varint (16) + len varint (8) + 3 * (10 idx + zigzag).
        let bits = v.encoded_bits();
        assert!(bits >= 16 + 8 + 3 * 10, "bits {bits}");
    }

    #[test]
    fn index_vec_roundtrip() {
        roundtrip(&WIndexVec {
            dim: 256,
            idx: vec![0, 17, 255],
        });
        roundtrip(&WIndexVec {
            dim: 1,
            idx: vec![],
        });
        // Cost: indices at exactly 8 bits each for dim 256.
        let v = WIndexVec {
            dim: 256,
            idx: vec![1, 2, 3, 4],
        };
        assert_eq!(v.encoded_bits(), 16 + 8 + 4 * 8);
    }

    #[test]
    fn skmat_real_roundtrip() {
        let m = DenseMatrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.5);
        roundtrip(&WSkMat(SkMat::Real(m.clone())));
        let w = WSkMat(SkMat::Real(m));
        assert_eq!(w.encoded_bits(), 1 + 8 + 8 + 12 * 64);
    }

    #[test]
    fn skmat_field_roundtrip() {
        let m = DenseMatrix::from_fn(2, 3, |i, j| M61::new((i * 3 + j) as u64 * 999));
        roundtrip(&WSkMat(SkMat::Field(m.clone())));
        let w = WSkMat(SkMat::Field(m));
        assert_eq!(w.encoded_bits(), 1 + 8 + 8 + 6 * 61);
    }

    #[test]
    fn field_mat_roundtrip() {
        let m = DenseMatrix::from_fn(2, 2, |i, j| M61::new((i + j) as u64));
        roundtrip(&WFieldMat(m));
    }

    #[test]
    fn grid_roundtrip_and_packing() {
        let g = WU64Grid(vec![vec![5, 0, 63, 2], vec![1, 1, 0, 0], vec![0, 0, 0, 0]]);
        roundtrip(&g);
        // Row widths: 6 (max 63), 1 (max 1), 1 (max 0 -> width 1).
        assert_eq!(g.encoded_bits(), 8 + 8 + (6 + 24) + (6 + 4) + (6 + 4));
        roundtrip(&WU64Grid(vec![]));
    }

    #[test]
    fn positions_roundtrip() {
        roundtrip(&WPositions {
            rows: 100,
            cols: 200,
            pos: vec![(0, 0), (99, 199)],
        });
    }

    #[test]
    fn bits_roundtrip() {
        roundtrip(&WBits(vec![true, false, true, true, false]));
        roundtrip(&WBits(vec![]));
        let b = WBits(vec![true; 100]);
        assert_eq!(b.encoded_bits(), 8 + 100);
    }
}
