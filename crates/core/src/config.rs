//! Tunable protocol constants.
//!
//! The paper uses safety constants like `10⁴ log n` chosen to make
//! union-bound arguments go through at any polynomial scale; running with
//! those constants at laptop scale would drown every instance in the
//! "no-subsampling" regime (all thresholds larger than the whole input).
//! [`Constants::practical`] (the default) scales them down so the
//! interesting code paths — subsampling levels, universe sampling,
//! recovery — are actually exercised, while [`Constants::paper_faithful`]
//! restores the paper's orders of magnitude for asymptotic audits. Every
//! experiment in EXPERIMENTS.md records which preset it used.

/// Multiplicative constants and repetition counts shared by the protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constants {
    /// Algorithm 1: expected number of sampled rows is `rho_const / ε`.
    /// (Paper: `ρ = 10⁴/ε`.)
    pub rho_const: f64,
    /// Algorithm 2: stop subsampling once `‖Cˡ‖₁ ≤ γ · cells`, with
    /// `γ = gamma_const · ln(cells) / ε²`. (Paper: `γ = 10⁴ log n / ε²`.)
    pub gamma_const: f64,
    /// Algorithm 3 / Section 5.2: universe-sampling rate multiplier
    /// `α = alpha_const · ln(cells)`. (Paper: `α = 10⁴ log n`.)
    pub alpha_const: f64,
    /// Heavy hitters: the Chernoff mean target is
    /// `hh_mean_const · ln(cells) / δ²` for relative accuracy `δ` at the
    /// heavy-hitter threshold.
    pub hh_mean_const: f64,
    /// Repetition count standing in for `O(log(1/δ))` in sketch medians.
    pub sketch_reps: usize,
    /// Repetitions of the `ℓ0`-sampler's recovery structure.
    pub sampler_reps: usize,
}

impl Constants {
    /// Laptop-scale constants (default): small multipliers so subsampling
    /// and recovery paths activate on `n` in the hundreds.
    #[must_use]
    pub fn practical() -> Self {
        Self {
            rho_const: 24.0,
            gamma_const: 0.5,
            alpha_const: 2.0,
            hh_mean_const: 3.0,
            sketch_reps: 5,
            sampler_reps: 10,
        }
    }

    /// The paper's orders of magnitude (`10⁴`-scale multipliers). At
    /// laptop scale these put most instances in the "no subsampling
    /// needed" regime — correct, but exercising fewer code paths.
    #[must_use]
    pub fn paper_faithful() -> Self {
        Self {
            rho_const: 1e4,
            gamma_const: 1e4,
            alpha_const: 1e4,
            hh_mean_const: 1e4,
            sketch_reps: 17,
            sampler_reps: 24,
        }
    }
}

impl Default for Constants {
    fn default() -> Self {
        Self::practical()
    }
}

/// Validates an approximation parameter `ε ∈ (0, 1]`.
///
/// # Errors
///
/// Returns a protocol error when out of range.
pub fn check_eps(eps: f64) -> Result<(), mpest_comm::CommError> {
    if eps > 0.0 && eps <= 1.0 {
        Ok(())
    } else {
        Err(mpest_comm::CommError::protocol(format!(
            "epsilon must lie in (0, 1], got {eps}"
        )))
    }
}

/// Validates heavy-hitter parameters `0 < ε ≤ φ ≤ 1`.
///
/// # Errors
///
/// Returns a protocol error when out of range.
pub fn check_phi_eps(phi: f64, eps: f64) -> Result<(), mpest_comm::CommError> {
    if eps > 0.0 && eps <= phi && phi <= 1.0 {
        Ok(())
    } else {
        Err(mpest_comm::CommError::protocol(format!(
            "heavy-hitter parameters must satisfy 0 < eps <= phi <= 1, got phi={phi}, eps={eps}"
        )))
    }
}

/// Validates that inner dimensions agree for a product `A · B`.
///
/// # Errors
///
/// Returns a protocol error on mismatch.
pub fn check_dims(a_cols: usize, b_rows: usize) -> Result<(), mpest_comm::CommError> {
    if a_cols == b_rows {
        Ok(())
    } else {
        Err(mpest_comm::CommError::protocol(format!(
            "inner dimension mismatch: A has {a_cols} columns, B has {b_rows} rows"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ() {
        let p = Constants::practical();
        let f = Constants::paper_faithful();
        assert!(f.gamma_const > p.gamma_const * 100.0);
        assert_eq!(Constants::default(), p);
    }

    #[test]
    fn eps_validation() {
        assert!(check_eps(0.5).is_ok());
        assert!(check_eps(1.0).is_ok());
        assert!(check_eps(0.0).is_err());
        assert!(check_eps(-0.1).is_err());
        assert!(check_eps(1.5).is_err());
    }

    #[test]
    fn phi_eps_validation() {
        assert!(check_phi_eps(0.2, 0.1).is_ok());
        assert!(check_phi_eps(0.2, 0.2).is_ok());
        assert!(check_phi_eps(0.1, 0.2).is_err());
        assert!(check_phi_eps(1.2, 0.1).is_err());
        assert!(check_phi_eps(0.5, 0.0).is_err());
    }

    #[test]
    fn dims_validation() {
        assert!(check_dims(5, 5).is_ok());
        assert!(check_dims(5, 6).is_err());
    }
}
