//! Lemma 2.5 (\[16\]): distributed sparse matrix multiplication — the
//! parties compute additive shares `C_A + C_B = A·B` in **2 rounds** and
//! `Õ(n·√‖AB‖₀)` bits.
//!
//! The protocol of \[16\] is not restated in the paper, so we implement the
//! min-side exchange that achieves the same interface and bound (see
//! DESIGN.md): round 1 exchanges per-item weights `(u_k, v_k)`; round 2
//! ships, for each inner index `k`, the lighter of Alice's column and
//! Bob's row, so each outer-product term is computed wholly by one party.
//! Cost: `Σ_k min(u_k, v_k) ≤ Σ_k √(u_k v_k) ≤ √(n · ‖C‖₁)`, and for
//! polynomially bounded entries `‖C‖₁ ≤ poly(n) · ‖C‖₀`, giving
//! `Õ(n √‖C‖₀)`.
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_matrix::Workloads;
//!
//! let a = Workloads::integer_csr(16, 20, 0.2, 5, true, 1);
//! let b = Workloads::integer_csr(20, 16, 0.2, 5, true, 2);
//! let run = mpest_core::Session::new(a.clone(), b.clone())
//!     .run_seeded(&mpest_core::SparseMatmul, &(), Seed(3))
//!     .unwrap();
//! // The additive shares reconstruct A·B exactly.
//! assert_eq!(run.output.reconstruct(16, 16), a.matmul(&b));
//! assert_eq!(run.rounds(), 2);
//! ```

use crate::exchange::{exchange_alice, exchange_bob, ExchangeCfg};
use crate::protocol::Protocol;
use crate::result::{ProductShares, ProtocolRun};
use crate::session::{cached_or, ProductDims, Reuse, SessionCtx};
use mpest_comm::{execute_split, CommError, Exec, Link, Seed};
use mpest_matrix::{Accumulator, CsrMatrix};

/// Alice's phases (rounds `base_round` and `base_round + 1`); returns her
/// share accumulator.
pub(crate) fn alice_phase(
    link: &Link<'_>,
    base_round: u16,
    a: &CsrMatrix,
    out_cols: usize,
    binary: bool,
) -> Result<Accumulator, CommError> {
    alice_phase_pre(link, base_round, a, out_cols, binary, None, None)
}

/// [`alice_phase`] with optional session-cached support table and
/// transpose (both pure functions of `a`, so reuse is message-neutral).
fn alice_phase_pre(
    link: &Link<'_>,
    base_round: u16,
    a: &CsrMatrix,
    out_cols: usize,
    binary: bool,
    pre_nnz: Option<&[u32]>,
    pre_t: Option<&CsrMatrix>,
) -> Result<Accumulator, CommError> {
    let u: std::borrow::Cow<'_, [u32]> = match pre_nnz {
        Some(nnz) => std::borrow::Cow::Borrowed(nnz),
        None => std::borrow::Cow::Owned(a.col_nnz()),
    };
    link.send(
        base_round,
        "sparse-mm-u",
        &u.iter().map(|&x| u64::from(x)).collect::<Vec<_>>(),
    )?;
    let v64: Vec<u64> = link.recv("sparse-mm-v")?;
    if v64.len() != u.len() {
        return Err(CommError::protocol(
            "weight vector length mismatch".to_string(),
        ));
    }
    let v: Vec<u32> = v64.iter().map(|&x| x as u32).collect();
    let at = cached_or(pre_t, || a.transpose());
    let items: Vec<u32> = (0..a.cols() as u32).collect();
    exchange_alice(
        link,
        ExchangeCfg {
            round: base_round + 1,
            binary,
            out_rows: a.rows(),
            out_cols,
            inner_dim: a.cols(),
        },
        &items,
        &u,
        &v,
        |k| at.row_vec(k as usize).entries,
    )
}

/// Bob's phases; returns his share accumulator.
pub(crate) fn bob_phase(
    link: &Link<'_>,
    base_round: u16,
    b: &CsrMatrix,
    out_rows: usize,
    binary: bool,
) -> Result<Accumulator, CommError> {
    bob_phase_pre(link, base_round, b, out_rows, binary, None)
}

/// [`bob_phase`] with an optional session-cached support table.
fn bob_phase_pre(
    link: &Link<'_>,
    base_round: u16,
    b: &CsrMatrix,
    out_rows: usize,
    binary: bool,
    pre_nnz: Option<&[u32]>,
) -> Result<Accumulator, CommError> {
    let v: std::borrow::Cow<'_, [u32]> = match pre_nnz {
        Some(nnz) => std::borrow::Cow::Borrowed(nnz),
        None => std::borrow::Cow::Owned(b.row_nnz()),
    };
    link.send(
        base_round,
        "sparse-mm-v",
        &v.iter().map(|&x| u64::from(x)).collect::<Vec<_>>(),
    )?;
    let u64s: Vec<u64> = link.recv("sparse-mm-u")?;
    if u64s.len() != v.len() {
        return Err(CommError::protocol(
            "weight vector length mismatch".to_string(),
        ));
    }
    let u: Vec<u32> = u64s.iter().map(|&x| x as u32).collect();
    let items: Vec<u32> = (0..b.rows() as u32).collect();
    exchange_bob(
        link,
        ExchangeCfg {
            round: base_round + 1,
            binary,
            out_rows,
            out_cols: b.cols(),
            inner_dim: b.rows(),
        },
        &items,
        &u,
        &v,
        |k| b.row_vec(k as usize).entries,
    )
}

/// The Lemma 2.5 protocol as a [`Protocol`]: additive shares
/// `C_A + C_B = A·B` in 2 rounds and `Õ(n√‖AB‖₀)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SparseMatmul;

impl Protocol for SparseMatmul {
    type Params = ();
    type Output = ProductShares;

    fn name(&self) -> &'static str {
        "sparse-matmul"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        (): &(),
    ) -> Result<ProtocolRun<ProductShares>, CommError> {
        let (a, b) = ctx.csr_halves();
        let reuse = Reuse {
            a_t: ctx.a_transpose(),
            a_col_nnz: ctx.a_col_nnz(),
            b_row_nnz: ctx.b_row_nnz(),
            ..Reuse::default()
        };
        run_unchecked(
            a,
            b,
            ctx.dims(),
            ctx.pair_binary(),
            ctx.seed(),
            reuse,
            ctx.executor(),
        )
    }
}

pub(crate) fn run_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    dims: ProductDims,
    binary: bool,
    seed: Seed,
    reuse: Reuse<'_>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<ProductShares>, CommError> {
    let _ = seed; // deterministic protocol: no coins needed
    let out_rows = dims.a_rows;
    let out_cols = dims.b_cols;
    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a| {
            alice_phase_pre(link, 0, a, out_cols, binary, reuse.a_col_nnz, reuse.a_t)
                .map(crate::wire::WAccum)
        },
        |link, b| {
            bob_phase_pre(link, 0, b, out_rows, binary, reuse.b_row_nnz).map(crate::wire::WAccum)
        },
    )?;
    Ok(ProtocolRun {
        output: ProductShares {
            alice: outcome.alice.0.into_entries(),
            bob: outcome.bob.0.into_entries(),
        },
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::Workloads;

    fn run(
        a: &CsrMatrix,
        b: &CsrMatrix,
        seed: Seed,
    ) -> Result<ProtocolRun<ProductShares>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&SparseMatmul, &(), seed)
    }

    #[test]
    fn exact_reconstruction_binary() {
        let a = Workloads::bernoulli_bits(30, 40, 0.15, 1).to_csr();
        let b = Workloads::bernoulli_bits(40, 30, 0.15, 2).to_csr();
        let run = run(&a, &b, Seed(1)).unwrap();
        assert_eq!(run.output.reconstruct(30, 30), a.matmul(&b));
        assert_eq!(run.rounds(), 2, "Lemma 2.5 is a 2-round protocol");
    }

    #[test]
    fn exact_reconstruction_integer_signed() {
        let a = Workloads::integer_csr(25, 30, 0.2, 7, true, 3);
        let b = Workloads::integer_csr(30, 25, 0.2, 7, true, 4);
        let run = run(&a, &b, Seed(2)).unwrap();
        assert_eq!(run.output.reconstruct(25, 25), a.matmul(&b));
    }

    #[test]
    fn cost_scales_with_sqrt_sparsity() {
        // Sweep output sparsity; bits should grow clearly sublinearly in s
        // (the n·sqrt(s) law is checked quantitatively in the bench
        // harness — here we sanity-check monotone sublinear growth).
        let n = 48;
        let mut results = Vec::new();
        for (avg, seed) in [(1.5, 10u64), (6.0, 11)] {
            let (a, b) = Workloads::sparse_pair(n, n, avg, seed);
            let (ac, bc) = (a.to_csr(), b.to_csr());
            let s = ac.matmul(&bc).nnz().max(1);
            let bits = run(&ac, &bc, Seed(seed)).unwrap().bits();
            results.push((s, bits));
        }
        let (s0, b0) = results[0];
        let (s1, b1) = results[1];
        assert!(s1 > s0, "workloads must differ in sparsity");
        let bit_ratio = b1 as f64 / b0 as f64;
        let s_ratio = s1 as f64 / s0 as f64;
        assert!(
            bit_ratio < s_ratio,
            "bits grew {bit_ratio:.2}x for {s_ratio:.2}x sparsity — not sublinear"
        );
    }

    #[test]
    fn zero_matrices() {
        let a = CsrMatrix::zeros(8, 8);
        let b = CsrMatrix::zeros(8, 8);
        let run = run(&a, &b, Seed(0)).unwrap();
        assert!(run.output.alice.is_empty());
        assert!(run.output.bob.is_empty());
    }

    #[test]
    fn rectangular_shapes() {
        let a = Workloads::integer_csr(10, 50, 0.2, 3, false, 5);
        let b = Workloads::integer_csr(50, 20, 0.2, 3, false, 6);
        let run = run(&a, &b, Seed(3)).unwrap();
        assert_eq!(run.output.reconstruct(10, 20), a.matmul(&b));
    }
}
