//! The "standard median trick" (Theorem 3.1's boosting step).
//!
//! Every estimation protocol in this crate succeeds with constant
//! probability; the paper boosts to `1 − 1/n¹⁰` by running `O(log n)`
//! independent copies and taking the median, "paying another `O(log n)`
//! factor in the communication cost (which will be absorbed by the `Õ(·)`
//! notation)". This module makes that a first-class combinator: the
//! copies run with independent derived seeds and are accounted as
//! *parallel* executions (bits add, rounds do not — independent copies
//! share each round's synchronization).
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_core::boost::median_boost;
//! use mpest_core::lp_norm::LpParams;
//! use mpest_core::{LpNorm, Session};
//! use mpest_matrix::{PNorm, Workloads};
//!
//! let a = Workloads::bernoulli_bits(32, 48, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(48, 32, 0.2, 2).to_csr();
//! let session = Session::new(a, b);
//! let params = LpParams::new(PNorm::ONE, 0.3);
//! let run = median_boost(5, Seed(7), |s| session.run_seeded(&LpNorm, &params, s)).unwrap();
//! assert_eq!(run.rounds(), 2, "boosting does not add rounds");
//! ```

use crate::result::ProtocolRun;
use mpest_comm::{CommError, Seed, Transcript};

/// Runs `copies` independent executions of an `f64`-valued protocol and
/// returns the median estimate, with bits summed and rounds unchanged.
///
/// # Errors
///
/// Propagates the first error from any copy; fails if `copies == 0`.
pub fn median_boost<F>(
    copies: usize,
    seed: Seed,
    mut run_one: F,
) -> Result<ProtocolRun<f64>, CommError>
where
    F: FnMut(Seed) -> Result<ProtocolRun<f64>, CommError>,
{
    if copies == 0 {
        return Err(CommError::protocol(
            "median boosting needs >= 1 copy".to_string(),
        ));
    }
    let mut outputs = Vec::with_capacity(copies);
    let mut transcript = Transcript::default();
    for c in 0..copies {
        let run = run_one(seed.derive_u64(c as u64))?;
        outputs.push(run.output);
        transcript.absorb_parallel(run.transcript);
    }
    outputs.sort_by(f64::total_cmp);
    Ok(ProtocolRun {
        output: outputs[(outputs.len() - 1) / 2],
        transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_norm::LpParams;
    use crate::{LpNorm, Session};
    use mpest_matrix::{stats, PNorm, Workloads};

    #[test]
    fn median_reduces_failure_rate() {
        // Compare single-run vs 5-copy-median failure rates for a tight
        // tolerance: the median must fail no more often (and typically
        // much less).
        let a = Workloads::bernoulli_bits(40, 56, 0.2, 1).to_csr();
        let b = Workloads::bernoulli_bits(56, 40, 0.2, 2).to_csr();
        let truth = stats::lp_pow_of_product(&a, &b, PNorm::TWO);
        let params = LpParams::new(PNorm::TWO, 0.4);
        let tol = 0.15;
        let trials = 20;
        let mut single_fail = 0;
        let mut boosted_fail = 0;
        let session = Session::new(a, b);
        for t in 0..trials {
            let single = session
                .run_seeded(&LpNorm, &params, Seed(9_000 + t))
                .unwrap();
            if (single.output - truth).abs() > tol * truth {
                single_fail += 1;
            }
            let boosted = median_boost(5, Seed(20_000 + t), |s| {
                session.run_seeded(&LpNorm, &params, s)
            })
            .unwrap();
            if (boosted.output - truth).abs() > tol * truth {
                boosted_fail += 1;
            }
        }
        assert!(
            boosted_fail <= single_fail,
            "boosting made things worse: {boosted_fail} vs {single_fail}"
        );
        assert!(
            boosted_fail <= trials / 4,
            "boosted failure rate {boosted_fail}/{trials}"
        );
    }

    #[test]
    fn accounting_bits_add_rounds_do_not() {
        let a = Workloads::bernoulli_bits(16, 24, 0.3, 3).to_csr();
        let b = Workloads::bernoulli_bits(24, 16, 0.3, 4).to_csr();
        let params = LpParams::new(PNorm::ONE, 0.4);
        let session = Session::new(a, b);
        let one = session.run_seeded(&LpNorm, &params, Seed(1)).unwrap();
        let five = median_boost(5, Seed(1), |s| session.run_seeded(&LpNorm, &params, s)).unwrap();
        assert_eq!(five.rounds(), one.rounds());
        assert!(five.bits() > 4 * one.bits() && five.bits() < 6 * one.bits());
    }

    #[test]
    fn degenerate_copies() {
        let a = Workloads::bernoulli_bits(8, 8, 0.3, 5).to_csr();
        let b = Workloads::bernoulli_bits(8, 8, 0.3, 6).to_csr();
        let params = LpParams::new(PNorm::ONE, 0.5);
        let session = Session::new(a, b);
        let one = median_boost(1, Seed(2), |s| session.run_seeded(&LpNorm, &params, s)).unwrap();
        assert!(one.output >= 0.0);
        assert!(median_boost(0, Seed(2), |s| session.run_seeded(&LpNorm, &params, s)).is_err());
    }
}
