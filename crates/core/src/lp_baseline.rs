//! The one-round `Õ(n/ε²)` baseline (\[16\]; discussed in Sections 1.2–1.3).
//!
//! Bob ships `ℓp` sketches of the rows of `B` at *full* accuracy `ε`
//! (`Õ(1/ε²)` words per row); Alice converts them into sketches of the
//! rows of `C = A·B` by linearity and sums the per-row estimates. One
//! round, but a factor `1/ε` more communication than Algorithm 1 — this
//! is the separation Theorem 3.1 establishes (and the `Ω(n/ε²)` one-round
//! lower bound of \[16\] shows is inherent).

use crate::config::{check_eps, Constants};
use crate::protocol::Protocol;
use crate::result::ProtocolRun;
use crate::session::{ProductDims, SessionCtx};
use crate::sketchcache::{pnorm_bits, SketchCache, SketchKey, SketchKind};
use crate::wire::{WSkMat, WSkMatShared};
use mpest_comm::{execute_split, CommError, Exec, Link, Seed};
use mpest_matrix::{CsrMatrix, PNorm};
use mpest_sketch::NormSketch;
use std::sync::Arc;

/// Parameters of the one-round baseline.
#[derive(Debug, Clone, Copy)]
pub struct BaselineParams {
    /// Which norm to estimate (`p ∈ [0, 2]`).
    pub p: PNorm,
    /// Target multiplicative accuracy `ε`.
    pub eps: f64,
    /// Protocol constants (sketch repetitions).
    pub consts: Constants,
}

impl BaselineParams {
    /// Convenience constructor with default constants.
    #[must_use]
    pub fn new(p: PNorm, eps: f64) -> Self {
        Self {
            p,
            eps,
            consts: Constants::default(),
        }
    }
}

pub(crate) fn make_sketch(params: &BaselineParams, dim: usize, pub_seed: Seed) -> NormSketch {
    NormSketch::for_norm(
        params.p,
        dim.max(1),
        params.eps,
        params.consts.sketch_reps,
        pub_seed.derive("lp-baseline-sketch").0,
    )
}

pub(crate) fn cache_key(params: &BaselineParams, dim: usize, pub_seed: Seed) -> SketchKey {
    SketchKey {
        kind: SketchKind::BaselineRowsB,
        seed: pub_seed.derive("lp-baseline-sketch").0,
        dim: dim.max(1),
        params: [
            pnorm_bits(params.p),
            params.eps.to_bits(),
            params.consts.sketch_reps as u64,
        ],
    }
}

/// Bob's phase: one message of full-accuracy row sketches.
pub(crate) fn bob_phase(
    link: &Link<'_>,
    round: u16,
    b: &CsrMatrix,
    params: &BaselineParams,
    pub_seed: Seed,
    cache: Option<&SketchCache>,
) -> Result<(), CommError> {
    let skb = match cache {
        Some(c) => c.norm(cache_key(params, b.cols(), pub_seed), || {
            make_sketch(params, b.cols(), pub_seed).sketch_rows(b)
        }),
        None => Arc::new(make_sketch(params, b.cols(), pub_seed).sketch_rows(b)),
    };
    link.send(round, "baseline-row-sketches", &WSkMatShared(skb))
}

/// Alice's phase: combines and sums per-row estimates.
pub(crate) fn alice_phase(
    link: &Link<'_>,
    a: &CsrMatrix,
    b_cols: usize,
    params: &BaselineParams,
    pub_seed: Seed,
) -> Result<f64, CommError> {
    let sketch = make_sketch(params, b_cols, pub_seed);
    let skb = link.recv::<WSkMat>("baseline-row-sketches")?.0;
    if skb.rows() != a.cols() {
        return Err(CommError::protocol(format!(
            "sketched-rows count {} does not match inner dimension {}",
            skb.rows(),
            a.cols()
        )));
    }
    let mut total = 0.0f64;
    for i in 0..a.rows() {
        let weights = a.row_vec(i).entries;
        if weights.is_empty() {
            continue;
        }
        let skc = sketch.combine(&skb, &weights);
        total += sketch.estimate_pow(&skc).max(0.0);
    }
    Ok(total)
}

/// The one-round \[16\]-style baseline as a [`Protocol`]:
/// `(1±ε)·‖AB‖_p^p` in one round and `Õ(n/ε²)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpBaseline;

impl Protocol for LpBaseline {
    type Params = BaselineParams;
    type Output = f64;

    fn name(&self) -> &'static str {
        "lp-baseline"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &BaselineParams,
    ) -> Result<ProtocolRun<f64>, CommError> {
        let (a, b) = ctx.csr_halves();
        run_unchecked(
            a,
            b,
            ctx.dims(),
            params,
            ctx.seed(),
            Some(ctx.sketch_cache()),
            ctx.executor(),
        )
    }
}

pub(crate) fn run_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    dims: ProductDims,
    params: &BaselineParams,
    seed: Seed,
    cache: Option<&SketchCache>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<f64>, CommError> {
    check_eps(params.eps)?;
    if !params.p.supported_by_lp_protocol() {
        return Err(CommError::protocol(format!(
            "baseline supports p in [0, 2], got {:?}",
            params.p
        )));
    }
    let pub_seed = seed.derive("public");
    let b_cols = dims.b_cols;
    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a| alice_phase(link, a, b_cols, params, pub_seed),
        |link, b| bob_phase(link, 0, b, params, pub_seed, cache),
    )?;
    Ok(ProtocolRun {
        output: outcome.alice,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{stats, Workloads};

    fn run(
        a: &CsrMatrix,
        b: &CsrMatrix,
        params: &BaselineParams,
        seed: Seed,
    ) -> Result<ProtocolRun<f64>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&LpBaseline, params, seed)
    }

    #[test]
    fn one_round_and_accurate() {
        let a = Workloads::bernoulli_bits(40, 56, 0.25, 1).to_csr();
        let b = Workloads::bernoulli_bits(56, 40, 0.25, 2).to_csr();
        for p in [PNorm::Zero, PNorm::ONE, PNorm::TWO] {
            let truth = stats::lp_pow_of_product(&a, &b, p);
            let params = BaselineParams::new(p, 0.3);
            let mut ok = 0;
            for t in 0..9 {
                let run = run(&a, &b, &params, Seed(300 + t)).unwrap();
                assert_eq!(run.rounds(), 1, "baseline is one-round");
                if (run.output - truth).abs() <= 0.35 * truth {
                    ok += 1;
                }
            }
            assert!(ok >= 6, "p={p:?}: baseline accuracy {ok}/9");
        }
    }

    #[test]
    fn costs_more_than_algorithm_1_at_small_eps() {
        // The whole point: at the same ε, the baseline ships ~1/ε more.
        let a = Workloads::bernoulli_bits(24, 96, 0.2, 5).to_csr();
        let b = Workloads::bernoulli_bits(96, 24, 0.2, 6).to_csr();
        let eps = 0.05;
        let base = run(&a, &b, &BaselineParams::new(PNorm::Zero, eps), Seed(1)).unwrap();
        let two_round = crate::Session::new(a.clone(), b.clone())
            .run_seeded(
                &crate::LpNorm,
                &crate::lp_norm::LpParams::new(PNorm::Zero, eps),
                Seed(1),
            )
            .unwrap();
        assert!(
            base.bits() > 2 * two_round.bits(),
            "baseline {} bits vs Algorithm 1 {} bits",
            base.bits(),
            two_round.bits()
        );
    }

    #[test]
    fn rejects_bad_params() {
        let a = CsrMatrix::zeros(4, 4);
        let b = CsrMatrix::zeros(4, 4);
        assert!(run(&a, &b, &BaselineParams::new(PNorm::Inf, 0.5), Seed(0)).is_err());
        assert!(run(&a, &b, &BaselineParams::new(PNorm::ONE, -0.5), Seed(0)).is_err());
    }
}
