//! Algorithm 2 / Theorem 4.1: `(2+ε)`-approximation of `‖AB‖∞` for
//! binary matrices in **3 rounds** and `Õ(n^{1.5}/ε)` bits.
//!
//! Idea: subsample the 1-entries of `A` at geometric rates
//! `p_ℓ = (1+ε)^{-ℓ}` (nested levels) until the surviving product mass
//! `‖Cˡ‖₁` drops below `γ·n²`; at that point the maximum entry is still
//! `(1±ε)`-preserved after rescaling (Lemma 4.2), but the mass is small
//! enough that the min-side exchange can ship every term at
//! `Õ(n^{1.5}/ε)` total cost. The exchange splits `C^{ℓ*} = C_A + C_B`
//! across the parties, each takes a local max, and
//! `max(‖C_A‖∞, ‖C_B‖∞) ∈ [‖C^{ℓ*}‖∞/2, ‖C^{ℓ*}‖∞]` — the factor-2 loss
//! that makes the final guarantee `2+ε` (and Theorem 4.4 shows a factor
//! below 2 would force `Ω(n²)` bits).
//!
//! Round structure (paper): (1) Alice ships per-level column sums of the
//! subsampled matrices — Remark 2 lets Bob evaluate every `‖Cˡ‖₁` and
//! pick `ℓ*`; (2) Bob ships `ℓ*`, his row weights, and his lists for
//! items where his side is lighter; (3) Alice ships her lists for the
//! rest, plus her local max.
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_core::linf_binary::LinfBinaryParams;
//! use mpest_core::{LinfBinary, Session};
//! use mpest_matrix::Workloads;
//!
//! let (a, b, _) = Workloads::planted_pairs(32, 48, 0.1, &[(3, 7)], 24, 1);
//! let truth = mpest_matrix::stats::linf_of_product_binary(&a, &b).0 as f64;
//! let run = Session::new(a, b)
//!     .run_seeded(&LinfBinary, &LinfBinaryParams::new(0.25), Seed(2))
//!     .unwrap();
//! assert_eq!(run.rounds(), 3);
//! // (2+eps)-approximation band.
//! assert!(run.output.estimate >= truth / 3.0 && run.output.estimate <= 1.6 * truth);
//! ```

use crate::config::{check_eps, Constants};
use crate::exchange::{ExchangeCfg, ItemLists};
use crate::protocol::Protocol;
use crate::result::{LinfEstimate, ProtocolRun};
use crate::session::{ProductDims, SessionCtx};
use crate::wire::WU64Grid;
use mpest_comm::{execute_split, CommError, Exec, Seed};
use mpest_matrix::BitMatrix;

/// Parameters of the binary `ℓ∞` protocol.
#[derive(Debug, Clone, Copy)]
pub struct LinfBinaryParams {
    /// Approximation slack `ε` (final factor `2+O(ε)`).
    pub eps: f64,
    /// Protocol constants (`γ = gamma_const · ln(cells)/ε²`).
    pub consts: Constants,
}

impl LinfBinaryParams {
    /// Convenience constructor with default constants.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        Self {
            eps,
            consts: Constants::default(),
        }
    }
}

/// Alice's per-entry nested subsampling levels: entry `e` survives to
/// level `ℓ` iff `level(e) ≥ ℓ`, where `P[level ≥ ℓ] = (1+ε)^{-ℓ}`.
fn entry_level(seed: Seed, key: u64, eps: f64, max_level: u32) -> u32 {
    let u = seed.unit_at(key).max(f64::MIN_POSITIVE);
    let lvl = ((1.0 / u).ln() / (1.0 + eps).ln()).floor();
    if lvl < 0.0 {
        0
    } else {
        (lvl as u32).min(max_level)
    }
}

/// Per-column entry lists with levels: `cols[j] = [(row, level), ...]`.
fn columns_with_levels(
    a: &BitMatrix,
    seed: Seed,
    eps: f64,
    max_level: u32,
) -> Vec<Vec<(u32, u32)>> {
    let mut cols: Vec<Vec<(u32, u32)>> = vec![Vec::new(); a.cols()];
    for i in 0..a.rows() {
        for j in a.row_indices(i) {
            let key = (i as u64) * (a.cols() as u64) + u64::from(j);
            let lvl = entry_level(seed, key, eps, max_level);
            cols[j as usize].push((i as u32, lvl));
        }
    }
    cols
}

/// Per-level column sums: `sums[ℓ][j] = |{entries in column j with level ≥ ℓ}|`.
/// Trailing all-zero levels are trimmed (they carry no information — the
/// per-column counts are monotone in `ℓ`), keeping one sentinel level.
fn level_col_sums(cols: &[Vec<(u32, u32)>], levels: usize) -> Vec<Vec<u64>> {
    let mut sums = vec![vec![0u64; cols.len()]; levels];
    for (j, entries) in cols.iter().enumerate() {
        for &(_, lvl) in entries {
            // Entry contributes to every level ≤ its own.
            for row in sums.iter_mut().take(lvl as usize + 1) {
                row[j] += 1;
            }
        }
    }
    let keep = sums
        .iter()
        .position(|row| row.iter().all(|&v| v == 0))
        .map_or(sums.len(), |idx| idx + 1)
        .max(1);
    sums.truncate(keep);
    sums
}

/// The Algorithm 2 / Theorem 4.1 protocol as a [`Protocol`]:
/// `(2+ε)·‖AB‖∞` for binary matrices, 3 rounds, `Õ(n^1.5/ε)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinfBinary;

impl Protocol for LinfBinary {
    type Params = LinfBinaryParams;
    type Output = LinfEstimate;

    fn name(&self) -> &'static str {
        "linf-binary"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &LinfBinaryParams,
    ) -> Result<ProtocolRun<LinfEstimate>, CommError> {
        let (a, b) = ctx.bit_halves()?;
        run_unchecked(a, b, ctx.dims(), params, ctx.seed(), ctx.executor())
    }
}

pub(crate) fn run_unchecked(
    a: Option<&BitMatrix>,
    b: Option<&BitMatrix>,
    dims: ProductDims,
    params: &LinfBinaryParams,
    seed: Seed,
    exec: Exec<'_>,
) -> Result<ProtocolRun<LinfEstimate>, CommError> {
    check_eps(params.eps)?;
    let eps = params.eps;
    let cells = (dims.a_rows * dims.b_cols).max(2) as f64;
    let gamma = params.consts.gamma_const * cells.ln() / (eps * eps);
    let threshold = gamma * cells;
    let alice_seed = seed.derive("alice-linf-levels");
    let inner = dims.inner;
    let cfg = ExchangeCfg {
        round: 0, // unused; staggered sends annotate rounds themselves
        binary: true,
        out_rows: dims.a_rows,
        out_cols: dims.b_cols,
        inner_dim: inner,
    };
    let items: Vec<u32> = (0..inner as u32).collect();

    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a: &BitMatrix| {
            // The level cap depends on ‖A‖₀ — Alice-private, never needed
            // by Bob (he reads the level count off the shipped grid).
            let max_level = {
                let ones = a.count_ones().max(1) as f64;
                (ones.ln() / (1.0 + eps).ln()).ceil() as u32 + 1
            };
            let levels = max_level as usize + 1;
            let cols = columns_with_levels(a, alice_seed, eps, max_level);
            let sums = level_col_sums(&cols, levels);
            link.send(0, "linf-level-colsums", &WU64Grid(sums.clone()))?;
            let (lstar, v64, bob_lists): (u64, Vec<u64>, ItemLists) =
                link.recv("linf-bob-lists")?;
            let lstar = lstar as u32;
            let v: Vec<u32> = v64.iter().map(|&x| x as u32).collect();
            if v.len() != inner || (lstar as usize) >= sums.len() {
                return Err(CommError::protocol(
                    "round-2 payload out of range".to_string(),
                ));
            }
            let u: Vec<u32> = sums[lstar as usize].iter().map(|&x| x as u32).collect();
            let col_of = |k: u32| -> Vec<(u32, i64)> {
                cols[k as usize]
                    .iter()
                    .filter(|&&(_, lvl)| lvl >= lstar)
                    .map(|&(row, _)| (row, 1i64))
                    .collect()
            };
            // Alice's share: items Bob shipped (his side lighter).
            let ca = bob_lists.accumulate_against(cfg, col_of, true);
            let max_a = ca.max_abs().0;
            // Her lists for items where her side is lighter.
            let mine = ItemLists::build(cfg, a.rows(), &items, &u, &v, |uk, vk| uk <= vk, col_of);
            link.send(2, "linf-alice-lists", &(mine, max_a as u64))?;
            Ok(())
        },
        |link, b: &BitMatrix| {
            let sums: Vec<Vec<u64>> = link.recv::<WU64Grid>("linf-level-colsums")?.0;
            if sums.is_empty() || sums[0].len() != inner {
                return Err(CommError::protocol("column-sum shape mismatch".to_string()));
            }
            let v: Vec<u32> = (0..b.rows()).map(|j| b.row_ones(j)).collect();
            // Remark 2 per level: ‖Cˡ‖₁ = Σ_j colsum_j(Aˡ) · v_j.
            let mass = |lvl: &[u64]| -> f64 {
                lvl.iter()
                    .zip(v.iter())
                    .map(|(&uj, &vj)| uj as f64 * f64::from(vj))
                    .sum()
            };
            let lstar = sums
                .iter()
                .position(|lvl| mass(lvl) <= threshold)
                .unwrap_or(sums.len() - 1) as u32;
            let u: Vec<u32> = sums[lstar as usize].iter().map(|&x| x as u32).collect();
            let row_of = |k: u32| -> Vec<(u32, i64)> {
                b.row_indices(k as usize).map(|c| (c, 1i64)).collect()
            };
            let mine = ItemLists::build(cfg, b.cols(), &items, &u, &v, |uk, vk| vk < uk, row_of);
            link.send(
                1,
                "linf-bob-lists",
                &(
                    u64::from(lstar),
                    v.iter().map(|&x| u64::from(x)).collect::<Vec<u64>>(),
                    mine,
                ),
            )?;
            let (alice_lists, max_a): (ItemLists, u64) = link.recv("linf-alice-lists")?;
            let cb = alice_lists.accumulate_against(cfg, row_of, false);
            let max_b = cb.max_abs().0 as u64;
            let p_star = (1.0 + eps).powi(-(lstar as i32));
            Ok(LinfEstimate {
                estimate: max_a.max(max_b) as f64 / p_star,
                level: Some(lstar),
            })
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{stats, Workloads};

    fn run(
        a: &BitMatrix,
        b: &BitMatrix,
        params: &LinfBinaryParams,
        seed: Seed,
    ) -> Result<ProtocolRun<LinfEstimate>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&LinfBinary, params, seed)
    }

    #[test]
    fn three_rounds_and_factor_two_without_sampling() {
        // Small sparse instance: threshold exceeds ‖C‖₁, so ℓ* = 0 and the
        // output is deterministic in [‖C‖∞/2, ‖C‖∞].
        let a = Workloads::bernoulli_bits(24, 32, 0.2, 1);
        let b = Workloads::bernoulli_bits(32, 24, 0.2, 2);
        let truth = stats::linf_of_product_binary(&a, &b).0 as f64;
        let run = run(&a, &b, &LinfBinaryParams::new(0.25), Seed(3)).unwrap();
        assert_eq!(run.rounds(), 3, "Algorithm 2 is a 3-round protocol");
        assert_eq!(run.output.level, Some(0));
        assert!(
            run.output.estimate >= truth / 2.0 - 1e-9 && run.output.estimate <= truth + 1e-9,
            "estimate {} vs truth {truth}",
            run.output.estimate
        );
    }

    #[test]
    fn subsampling_regime_keeps_approximation() {
        // Dense instance with a planted heavy pair: force subsampling by
        // a tiny gamma, and check the (2+eps)-style guarantee still holds
        // (generously, since practical constants shrink the Chernoff
        // margins).
        let (a, b, _) = Workloads::planted_pairs(48, 64, 0.35, &[(7, 9)], 60, 11);
        let truth = stats::linf_of_product_binary(&a, &b).0 as f64;
        let mut consts = Constants::practical();
        consts.gamma_const = 0.02; // force lstar > 0
        let params = LinfBinaryParams { eps: 0.3, consts };
        let mut ok = 0;
        let mut sampled = 0;
        for t in 0..9 {
            let run = run(&a, &b, &params, Seed(40 + t)).unwrap();
            if run.output.level.unwrap_or(0) > 0 {
                sampled += 1;
            }
            let est = run.output.estimate;
            if est >= truth / 3.2 && est <= 2.0 * truth {
                ok += 1;
            }
        }
        assert!(sampled >= 5, "subsampling never activated ({sampled}/9)");
        assert!(ok >= 6, "approximation failed too often: {ok}/9");
    }

    #[test]
    fn zero_matrix() {
        let a = BitMatrix::zeros(10, 12);
        let b = BitMatrix::zeros(12, 10);
        let run = run(&a, &b, &LinfBinaryParams::new(0.5), Seed(1)).unwrap();
        assert_eq!(run.output.estimate, 0.0);
    }

    #[test]
    fn communication_grows_subquadratically() {
        // The n^1.5 law needs the subsampling regime to be active (at a
        // fixed density and tiny n the protocol correctly skips sampling
        // and pays the min-side mass, which is ~d·n²). Force it with a
        // small gamma, then quadrupling n must grow cost by well under
        // 16x. The precise exponent fit lives in the bench harness.
        let mut consts = Constants::practical();
        consts.gamma_const = 0.02;
        let params = LinfBinaryParams { eps: 0.3, consts };
        let cost_at = |n: usize, seed: u64| -> (u64, u32) {
            let (a, b, _) = Workloads::planted_pairs(n, n, 0.3, &[(3, 5)], n / 2, seed);
            let run = run(&a, &b, &params, Seed(seed)).unwrap();
            (run.bits(), run.output.level.unwrap_or(0))
        };
        let (small, lvl_small) = cost_at(48, 21);
        let (large, lvl_large) = cost_at(192, 22);
        assert!(lvl_small > 0 && lvl_large > 0, "subsampling must be active");
        let ratio = large as f64 / small as f64;
        assert!(
            ratio < 12.0,
            "cost ratio {ratio:.1} for 4x n — not subquadratic (small {small}, large {large})"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = BitMatrix::zeros(4, 5);
        let b = BitMatrix::zeros(4, 4);
        assert!(run(&a, &b, &LinfBinaryParams::new(0.3), Seed(0)).is_err());
        let b2 = BitMatrix::zeros(5, 4);
        assert!(run(&a, &b2, &LinfBinaryParams::new(0.0), Seed(0)).is_err());
    }

    #[test]
    fn nested_levels_are_monotone() {
        let seed = Seed(123);
        for key in 0..2000u64 {
            let l1 = entry_level(seed, key, 0.3, 50);
            let l2 = entry_level(seed, key, 0.3, 50);
            assert_eq!(l1, l2, "levels deterministic");
        }
        // Distribution sanity: survival halves roughly every 1/eps levels.
        let eps = 0.5;
        let n = 20_000u64;
        let survive_to = |l: u32| -> usize {
            (0..n)
                .filter(|&k| entry_level(seed, k, eps, 100) >= l)
                .count()
        };
        let s0 = survive_to(0);
        let s3 = survive_to(3);
        assert_eq!(s0, n as usize);
        let expect = n as f64 * (1.0f64 + eps).powi(-3);
        assert!(
            (s3 as f64 - expect).abs() < 6.0 * expect.sqrt() + 50.0,
            "level-3 survivors {s3}, expected {expect}"
        );
    }
}
