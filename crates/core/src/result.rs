//! Protocol output types.

use mpest_comm::Transcript;

/// The result of running a protocol: the output value plus the bit-exact
/// transcript of everything that crossed the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolRun<T> {
    /// The protocol's output (produced at the designated output party).
    pub output: T,
    /// Communication record: exact bits per message, rounds.
    pub transcript: Transcript,
}

impl<T> ProtocolRun<T> {
    /// Total bits exchanged.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.transcript.total_bits()
    }

    /// Rounds used.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.transcript.rounds()
    }
}

/// Outcome of a sampling protocol over the product matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixSample {
    /// A sampled nonzero position and its value.
    Sampled {
        /// Row index in `C = A·B`.
        row: u32,
        /// Column index in `C = A·B`.
        col: u32,
        /// The entry value `C_{row, col}`.
        value: i64,
    },
    /// The product is (w.h.p.) the zero matrix.
    ZeroMatrix,
    /// The sampler failed (probability bounded by the sampler's reps).
    Failed,
}

/// An `ℓ1`-sample of `C = A·B` together with its join witness (Remark 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L1Sample {
    /// Row index (`i` such that `(i, witness) ∈ A`).
    pub row: u32,
    /// Column index (`j` such that `(witness, j) ∈ B`).
    pub col: u32,
    /// The witness `k ∈ A_i ∩ B_j` through which the sample was drawn.
    pub witness: u32,
}

/// A reported heavy hitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HhPair {
    /// Row index in `C`.
    pub row: u32,
    /// Column index in `C`.
    pub col: u32,
    /// The protocol's estimate of `C_{row,col}` (un-scaled).
    pub estimate: f64,
}

/// The output of a heavy-hitter protocol: a set `S` with
/// `HH_φ ⊆ S ⊆ HH_{φ−ε}` (with the protocol's success probability).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HeavyHitters {
    /// Reported pairs with value estimates.
    pub pairs: Vec<HhPair>,
}

impl HeavyHitters {
    /// Just the positions, sorted.
    #[must_use]
    pub fn positions(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self.pairs.iter().map(|p| (p.row, p.col)).collect();
        v.sort_unstable();
        v
    }

    /// Whether a position was reported.
    #[must_use]
    pub fn contains(&self, row: u32, col: u32) -> bool {
        self.pairs.iter().any(|p| p.row == row && p.col == col)
    }
}

/// An `ℓ∞` estimate with diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinfEstimate {
    /// The estimate of `‖AB‖∞` (already rescaled by sampling rates).
    pub estimate: f64,
    /// The subsampling level `ℓ*` the protocol settled on (if any).
    pub level: Option<u32>,
}

/// Additive shares of a matrix product: `C_A + C_B = A·B` (Lemma 2.5).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProductShares {
    /// Alice's share, as sorted `(row, col, value)` triplets.
    pub alice: Vec<(u32, u32, i64)>,
    /// Bob's share, as sorted `(row, col, value)` triplets.
    pub bob: Vec<(u32, u32, i64)>,
}

impl ProductShares {
    /// Reconstructs the full product (for tests / verification).
    #[must_use]
    pub fn reconstruct(&self, rows: usize, cols: usize) -> mpest_matrix::CsrMatrix {
        let mut triplets = self.alice.clone();
        triplets.extend_from_slice(&self.bob);
        mpest_matrix::CsrMatrix::from_triplets(rows, cols, triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hitters_helpers() {
        let hh = HeavyHitters {
            pairs: vec![
                HhPair {
                    row: 2,
                    col: 1,
                    estimate: 10.0,
                },
                HhPair {
                    row: 0,
                    col: 3,
                    estimate: 8.0,
                },
            ],
        };
        assert_eq!(hh.positions(), vec![(0, 3), (2, 1)]);
        assert!(hh.contains(2, 1));
        assert!(!hh.contains(1, 2));
    }

    #[test]
    fn shares_reconstruct() {
        let shares = ProductShares {
            alice: vec![(0, 0, 2), (1, 1, 3)],
            bob: vec![(0, 0, -2), (0, 1, 5)],
        };
        let c = shares.reconstruct(2, 2);
        assert_eq!(c.get(0, 0), 0);
        assert_eq!(c.get(0, 1), 5);
        assert_eq!(c.get(1, 1), 3);
    }
}
