//! Live-update model for continuous estimation (mpest-stream).
//!
//! The paper motivates its protocols with *monitoring* workloads — live
//! join sizes, correlations, heavy pairs — where the relations mutate
//! between queries. This module defines the update vocabulary a
//! [`Session`](crate::Session) accepts through
//! [`Session::apply_update`](crate::Session::apply_update): each party
//! may append a new set to its relation, overwrite a single entry, or
//! delete one. A whole [`UpdateBatch`] is validated up front and applied
//! atomically (all ops or none), bumping the session's epoch by exactly
//! one.
//!
//! Conventions: Alice's relation is the *rows* of `A`; Bob's sets are
//! the *columns* of `B` (so `C = A·B` pairs every Alice set with every
//! Bob set). An [`UpdateOp::AppendRow`] therefore appends a row of `A`
//! for Alice and a column of `B` for Bob — either way the inner
//! dimension `A.cols == B.rows` is untouched, so an update can never
//! invalidate the pair. Entry-level ops address the side's matrix in
//! its own `(row, col)` coordinates.

/// Which party's half of the pair an op mutates — the shared
/// [`Role`](mpest_comm::Role) enum (Alice's matrix `A`, Bob's matrix
/// `B`), kept under its streaming-layer name.
pub type UpdateSide = mpest_comm::Role;

/// One mutation of one side of the pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Appends a new set to `side`'s relation: a new row of `A` for
    /// Alice, a new column of `B` for Bob. `entries` are
    /// `(index, value)` pairs over the inner dimension, in any order;
    /// duplicates are summed and zeros dropped, exactly like
    /// `CsrMatrix::from_triplets`.
    AppendRow {
        /// Whose relation grows.
        side: UpdateSide,
        /// The new set's entries over the inner dimension.
        entries: Vec<(u32, i64)>,
    },
    /// Overwrites the entry at `(row, col)` of `side`'s matrix with
    /// `val` (`val == 0` deletes it).
    SetEntry {
        /// Whose matrix is touched.
        side: UpdateSide,
        /// Row index into that side's matrix.
        row: u32,
        /// Column index into that side's matrix.
        col: u32,
        /// The new value.
        val: i64,
    },
    /// Deletes the entry at `(row, col)` of `side`'s matrix (a no-op if
    /// absent).
    DeleteEntry {
        /// Whose matrix is touched.
        side: UpdateSide,
        /// Row index into that side's matrix.
        row: u32,
        /// Column index into that side's matrix.
        col: u32,
    },
}

/// An ordered batch of updates applied atomically: the whole batch is
/// validated against the session (dimensions, binary-side constraints)
/// before any op mutates state, and a batch bumps the epoch by one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// The ops, applied in order.
    pub ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch (valid: bumps the epoch without changing content).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: appends a new set for `side`.
    #[must_use]
    pub fn append_row(mut self, side: UpdateSide, entries: Vec<(u32, i64)>) -> Self {
        self.ops.push(UpdateOp::AppendRow { side, entries });
        self
    }

    /// Builder: overwrites one entry.
    #[must_use]
    pub fn set_entry(mut self, side: UpdateSide, row: u32, col: u32, val: i64) -> Self {
        self.ops.push(UpdateOp::SetEntry {
            side,
            row,
            col,
            val,
        });
        self
    }

    /// Builder: deletes one entry.
    #[must_use]
    pub fn delete_entry(mut self, side: UpdateSide, row: u32, col: u32) -> Self {
        self.ops.push(UpdateOp::DeleteEntry { side, row, col });
        self
    }

    /// Number of ops in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch has no ops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}
