//! Remark 2: exact computation of `‖AB‖₁` in one round and `O(n log n)`
//! bits, for entrywise non-negative matrices.
//!
//! For non-negative `A, B`:
//! `‖AB‖₁ = Σ_{i,j} (AB)_{i,j} = Σ_k ‖A_{*,k}‖₁ · ‖B_{k,*}‖₁`,
//! so Alice only needs to ship her column sums. (With cancellation the
//! identity fails — the API enforces non-negativity; the general-`p`
//! protocols use Algorithm 1 instead.)
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_matrix::Workloads;
//!
//! let a = Workloads::bernoulli_bits(32, 48, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(48, 32, 0.2, 2).to_csr();
//! let session = mpest_core::Session::builder(a.clone(), b.clone()).seed(Seed(7)).build();
//! let run = session.run(&mpest_core::ExactL1, &()).unwrap();
//! assert_eq!(run.rounds(), 1);
//! assert_eq!(
//!     run.output as f64,
//!     mpest_matrix::stats::lp_pow_of_product(&a, &b, mpest_matrix::PNorm::ONE)
//! );
//! ```

use crate::protocol::Protocol;
use crate::result::ProtocolRun;
use crate::session::{Reuse, SessionCtx};
use mpest_comm::{execute_split, CommError, Exec, Link, Seed};
use mpest_matrix::CsrMatrix;

/// Column sums of `A` as `u64`, reusing a session-cached table if one is
/// available (the table is a pure function of `A`, so reuse cannot
/// change the message).
fn col_sums_u64(a: &CsrMatrix, pre: Option<&[i64]>) -> Vec<u64> {
    match pre {
        Some(sums) => sums.iter().map(|&s| s as u64).collect(),
        None => a.col_abs_sums().iter().map(|&s| s as u64).collect(),
    }
}

/// Row sums of `B` as `u64` (same reuse contract as [`col_sums_u64`]).
fn row_sums_u64(b: &CsrMatrix, pre: Option<&[i64]>) -> Vec<u64> {
    match pre {
        Some(sums) => sums.iter().map(|&s| s as u64).collect(),
        None => b.row_abs_sums().iter().map(|&s| s as u64).collect(),
    }
}

/// Alice's phase: ships `‖A_{*,k}‖₁` for every inner index `k`.
fn alice_phase_pre(
    link: &Link<'_>,
    round: u16,
    a: &CsrMatrix,
    pre: Option<&[i64]>,
) -> Result<(), CommError> {
    link.send(round, "l1-col-sums", &col_sums_u64(a, pre))
}

/// Bob's phase: receives the column sums and computes the exact value.
fn bob_phase_pre(link: &Link<'_>, b: &CsrMatrix, pre: Option<&[i64]>) -> Result<i128, CommError> {
    let sums: Vec<u64> = link.recv("l1-col-sums")?;
    if sums.len() != b.rows() {
        return Err(CommError::protocol(format!(
            "column-sum vector has length {}, expected {}",
            sums.len(),
            b.rows()
        )));
    }
    let row_sums = row_sums_u64(b, pre);
    Ok(sums
        .iter()
        .zip(row_sums.iter())
        .map(|(&u, &v)| i128::from(u) * i128::from(v))
        .sum())
}

/// Both-parties variant used by the heavy-hitter protocols: a simultaneous
/// exchange of column/row sums after which *both* parties know `‖AB‖₁`.
pub(crate) fn exchange_alice(
    link: &Link<'_>,
    round: u16,
    a: &CsrMatrix,
) -> Result<i128, CommError> {
    let mine: Vec<u64> = a.col_abs_sums().iter().map(|&s| s as u64).collect();
    link.send(round, "l1-col-sums", &mine)?;
    let theirs: Vec<u64> = link.recv("l1-row-sums")?;
    if theirs.len() != mine.len() {
        return Err(CommError::protocol(
            "sum vector length mismatch".to_string(),
        ));
    }
    Ok(mine
        .iter()
        .zip(theirs.iter())
        .map(|(&u, &v)| i128::from(u) * i128::from(v))
        .sum())
}

/// Bob's half of [`exchange_alice`].
pub(crate) fn exchange_bob(link: &Link<'_>, round: u16, b: &CsrMatrix) -> Result<i128, CommError> {
    let mine: Vec<u64> = b.row_abs_sums().iter().map(|&s| s as u64).collect();
    link.send(round, "l1-row-sums", &mine)?;
    let theirs: Vec<u64> = link.recv("l1-col-sums")?;
    if theirs.len() != mine.len() {
        return Err(CommError::protocol(
            "sum vector length mismatch".to_string(),
        ));
    }
    Ok(mine
        .iter()
        .zip(theirs.iter())
        .map(|(&v, &u)| i128::from(u) * i128::from(v))
        .sum())
}

/// The Remark 2 protocol as a [`Protocol`]: exact `‖AB‖₁` for
/// entrywise non-negative matrices, one round, `O(n log n)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactL1;

impl Protocol for ExactL1 {
    type Params = ();
    type Output = i128;

    fn name(&self) -> &'static str {
        "exact-l1"
    }

    fn execute(&self, ctx: &SessionCtx<'_>, (): &()) -> Result<ProtocolRun<i128>, CommError> {
        let (a, b) = ctx.csr_halves();
        let reuse = Reuse {
            a_col_abs: ctx.a_col_abs_sums(),
            b_row_abs: ctx.b_row_abs_sums(),
            ..Reuse::default()
        };
        run_unchecked(a, b, ctx.seed(), reuse, ctx.executor())
    }
}

pub(crate) fn run_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    _seed: Seed,
    reuse: Reuse<'_>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<i128>, CommError> {
    // Each process validates the halves it holds; a storage-split peer
    // validates its own and surfaces failures as typed remote errors.
    if a.is_some_and(|m| !m.is_nonnegative()) || b.is_some_and(|m| !m.is_nonnegative()) {
        return Err(CommError::protocol(
            "Remark 2 requires entrywise non-negative matrices (no cancellation)".to_string(),
        ));
    }
    let outcome = execute_split(
        exec,
        a.map(|a| (a, reuse.a_col_abs)),
        b.map(|b| (b, reuse.b_row_abs)),
        |link, (a, pre)| alice_phase_pre(link, 0, a, pre),
        |link, (b, pre)| bob_phase_pre(link, b, pre),
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::norms::PNorm;
    use mpest_matrix::{stats, Workloads};

    fn run(a: &CsrMatrix, b: &CsrMatrix, seed: Seed) -> Result<ProtocolRun<i128>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&ExactL1, &(), seed)
    }

    #[test]
    fn exact_on_random_nonnegative() {
        let a = Workloads::integer_csr(30, 40, 0.2, 6, false, 1);
        let b = Workloads::integer_csr(40, 25, 0.2, 6, false, 2);
        let run = run(&a, &b, Seed(7)).unwrap();
        let truth = stats::lp_pow_of_product(&a, &b, PNorm::ONE);
        assert_eq!(run.output as f64, truth);
        assert_eq!(run.rounds(), 1);
    }

    #[test]
    fn exact_on_binary() {
        let a = Workloads::bernoulli_bits(20, 50, 0.3, 3).to_csr();
        let b = Workloads::bernoulli_bits(50, 20, 0.3, 4).to_csr();
        let run = run(&a, &b, Seed(7)).unwrap();
        let truth = stats::lp_pow_of_product(&a, &b, PNorm::ONE);
        assert_eq!(run.output as f64, truth);
    }

    #[test]
    fn communication_is_n_log_n() {
        // Cost must stay ~ inner_dim varints regardless of matrix density.
        let a = Workloads::bernoulli_bits(64, 128, 0.9, 5).to_csr();
        let b = Workloads::bernoulli_bits(128, 64, 0.9, 6).to_csr();
        let run = run(&a, &b, Seed(1)).unwrap();
        assert!(
            run.bits() <= 128 * 32 + 64,
            "l1 cost {} exceeds O(n log n) budget",
            run.bits()
        );
    }

    #[test]
    fn zero_matrix() {
        let a = mpest_matrix::CsrMatrix::zeros(5, 5);
        let b = mpest_matrix::CsrMatrix::zeros(5, 5);
        assert_eq!(run(&a, &b, Seed(0)).unwrap().output, 0);
    }

    #[test]
    fn rejects_negative_entries() {
        let a = Workloads::integer_csr(5, 5, 0.5, 3, true, 9);
        let b = Workloads::integer_csr(5, 5, 0.5, 3, false, 10);
        assert!(run(&a, &b, Seed(0)).is_err());
    }

    #[test]
    fn rejects_dim_mismatch() {
        let a = Workloads::integer_csr(5, 6, 0.5, 3, false, 9);
        let b = Workloads::integer_csr(5, 5, 0.5, 3, false, 10);
        assert!(run(&a, &b, Seed(0)).is_err());
    }

    #[test]
    fn both_parties_exchange_variant() {
        let a = Workloads::integer_csr(12, 16, 0.3, 4, false, 11);
        let b = Workloads::integer_csr(16, 12, 0.3, 4, false, 12);
        let truth = stats::lp_pow_of_product(&a, &b, PNorm::ONE);
        let out = mpest_comm::execute(
            &a,
            &b,
            |link, a| exchange_alice(link, 0, a),
            |link, b| exchange_bob(link, 0, b),
        )
        .unwrap();
        assert_eq!(out.alice as f64, truth);
        assert_eq!(out.bob as f64, truth);
        assert_eq!(out.transcript.rounds(), 1);
    }
}
