//! Theorem 4.8(1): `κ`-approximation of `‖AB‖∞` for **general integer
//! matrices** in one round and `Õ(n²/κ²)` bits.
//!
//! For non-binary matrices the binary tricks die (Theorem 4.8(2) shows
//! `Ω̃(n²/κ²)` is optimal), and the right tool is the block sketch of
//! \[33\]: partition each column of `C` into blocks of `κ²` coordinates and
//! AMS-sketch each block; since `‖y‖∞ ≤ ‖y‖₂ ≤ κ·‖y‖∞` on a block, the
//! max block-`ℓ2` estimate is a `κ`-approximation of the max entry.
//! Alice ships the sketch of every column of `A` (`Õ(n/κ²)` words each);
//! Bob finishes the product by linearity and takes the max over all
//! columns and blocks.

use crate::config::Constants;
use crate::protocol::Protocol;
use crate::result::ProtocolRun;
use crate::session::{cached_or, ProductDims, Reuse, SessionCtx};
use crate::sketchcache::{SketchKey, SketchKind};
use crate::wire::{WSkMat, WSkMatShared};
use mpest_comm::{execute_split, CommError, Exec, Seed};
use mpest_matrix::CsrMatrix;
use mpest_sketch::linear::combine_rows;
use mpest_sketch::{BlockAmsSketch, SkMat};
use std::sync::Arc;

/// Parameters of the general-matrix `ℓ∞` protocol.
#[derive(Debug, Clone, Copy)]
pub struct LinfGeneralParams {
    /// Approximation target `κ`.
    pub kappa: usize,
    /// Protocol constants (AMS repetitions per block).
    pub consts: Constants,
}

impl LinfGeneralParams {
    /// Convenience constructor with default constants.
    #[must_use]
    pub fn new(kappa: usize) -> Self {
        Self {
            kappa,
            consts: Constants::default(),
        }
    }
}

pub(crate) fn sketch_for(
    params: &LinfGeneralParams,
    a_rows: usize,
    pub_seed: Seed,
) -> BlockAmsSketch {
    BlockAmsSketch::new(
        a_rows.max(1),
        params.kappa,
        params.consts.sketch_reps,
        pub_seed.derive("block-ams").0,
    )
}

pub(crate) fn cache_key(params: &LinfGeneralParams, a_rows: usize, pub_seed: Seed) -> SketchKey {
    SketchKey {
        kind: SketchKind::BlockAmsRowsAt,
        seed: pub_seed.derive("block-ams").0,
        dim: a_rows.max(1),
        params: [params.kappa as u64, 0, params.consts.sketch_reps as u64],
    }
}

/// The Theorem 4.8(1) protocol as a [`Protocol`]: `κ`-approximate
/// `‖AB‖∞` for general integer matrices in one round and `Õ(n²/κ²)`
/// bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinfGeneral;

impl Protocol for LinfGeneral {
    type Params = LinfGeneralParams;
    type Output = f64;

    fn name(&self) -> &'static str {
        "linf-general"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &LinfGeneralParams,
    ) -> Result<ProtocolRun<f64>, CommError> {
        let (a, b) = ctx.csr_halves();
        let reuse = Reuse {
            a_t: ctx.a_transpose(),
            b_t: ctx.b_transpose(),
            sketches: Some(ctx.sketch_cache()),
            ..Reuse::default()
        };
        run_unchecked(a, b, ctx.dims(), params, ctx.seed(), reuse, ctx.executor())
    }
}

pub(crate) fn run_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    dims: ProductDims,
    params: &LinfGeneralParams,
    seed: Seed,
    reuse: Reuse<'_>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<f64>, CommError> {
    if params.kappa == 0 {
        return Err(CommError::protocol("kappa must be positive".to_string()));
    }
    let pub_seed = seed.derive("public");
    let sketch = sketch_for(params, dims.a_rows, pub_seed);

    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a: &CsrMatrix| {
            // Sketch every column of A (= rows of Aᵀ), reusing the
            // session's cached transpose when present, and the session's
            // sketch cache so repeated/prewarmed queries skip the pass.
            let at = cached_or(reuse.a_t, || a.transpose());
            let ska = match reuse.sketches {
                Some(c) => c.norm(cache_key(params, dims.a_rows, pub_seed), || {
                    SkMat::Real(sketch.sketch_rows(&at))
                }),
                None => Arc::new(SkMat::Real(sketch.sketch_rows(&at))),
            };
            link.send(0, "blockams-col-sketches", &WSkMatShared(ska))
        },
        |link, b: &CsrMatrix| {
            let ska = match link.recv::<WSkMat>("blockams-col-sketches")?.0 {
                SkMat::Real(m) => m,
                SkMat::Field(_) => {
                    return Err(CommError::protocol(
                        "expected real sketch words".to_string(),
                    ))
                }
            };
            if ska.rows() != b.rows() {
                return Err(CommError::protocol(
                    "sketch row count does not match inner dimension".to_string(),
                ));
            }
            let bt = cached_or(reuse.b_t, || b.transpose());
            let mut best = 0.0f64;
            for j in 0..b.cols() {
                let weights = bt.row_vec(j).entries;
                if weights.is_empty() {
                    continue;
                }
                let skc = combine_rows(&ska, &weights);
                best = best.max(sketch.estimate_linf(&skc));
            }
            Ok(best)
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{stats, Workloads};

    fn run(
        a: &CsrMatrix,
        b: &CsrMatrix,
        params: &LinfGeneralParams,
        seed: Seed,
    ) -> Result<ProtocolRun<f64>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&LinfGeneral, params, seed)
    }

    #[test]
    fn one_round_sandwich_bounds() {
        let a = Workloads::integer_csr(64, 48, 0.2, 8, true, 1);
        let b = Workloads::integer_csr(48, 64, 0.2, 8, true, 2);
        let truth = stats::linf_of_product(&a, &b).0 as f64;
        assert!(truth > 0.0);
        let kappa = 4usize;
        let params = LinfGeneralParams::new(kappa);
        let mut ok = 0;
        for t in 0..9 {
            let run = run(&a, &b, &params, Seed(10 + t)).unwrap();
            assert_eq!(run.rounds(), 1, "Theorem 4.8 protocol is one-round");
            let est = run.output;
            if est >= 0.5 * truth && est <= 2.0 * kappa as f64 * truth {
                ok += 1;
            }
        }
        assert!(ok >= 7, "sandwich failed too often: {ok}/9");
    }

    #[test]
    fn cost_shrinks_quadratically_in_kappa() {
        let a = Workloads::integer_csr(128, 64, 0.2, 5, false, 3);
        let b = Workloads::integer_csr(64, 128, 0.2, 5, false, 4);
        let bits2 = run(&a, &b, &LinfGeneralParams::new(2), Seed(1))
            .unwrap()
            .bits();
        let bits8 = run(&a, &b, &LinfGeneralParams::new(8), Seed(1))
            .unwrap()
            .bits();
        // Blocks shrink by 16x; allow generous slack for headers/rounding.
        assert!(
            bits8 * 6 < bits2,
            "kappa=8 cost {bits8} not ~quadratically below kappa=2 cost {bits2}"
        );
    }

    #[test]
    fn zero_product() {
        let a = CsrMatrix::zeros(8, 8);
        let b = CsrMatrix::zeros(8, 8);
        let run = run(&a, &b, &LinfGeneralParams::new(4), Seed(0)).unwrap();
        assert_eq!(run.output, 0.0);
    }

    #[test]
    fn signed_entries_with_cancellation() {
        // [1, -1] style cancellations: linf of the product is what the
        // sketch must see, not the magnitudes of A, B.
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 50), (0, 1, -50), (1, 0, 3)]);
        let b = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1), (1, 0, 1), (0, 1, 2), (1, 1, 2)]);
        // C = [[0, 0], [3, 6]]: linf = 6 despite entries of 50 in A.
        let truth = stats::linf_of_product(&a, &b).0 as f64;
        assert_eq!(truth, 6.0);
        let run = run(&a, &b, &LinfGeneralParams::new(2), Seed(5)).unwrap();
        assert!(
            run.output <= 4.0 * truth,
            "cancellation ignored: estimate {}",
            run.output
        );
    }

    #[test]
    fn rejects_bad_kappa() {
        let a = CsrMatrix::zeros(4, 4);
        let b = CsrMatrix::zeros(4, 4);
        assert!(run(&a, &b, &LinfGeneralParams::new(0), Seed(0)).is_err());
    }
}
