//! # mpest-core — distributed statistical estimation of matrix products
//!
//! Full implementation of the protocols of **Woodruff & Zhang,
//! "Distributed Statistical Estimation of Matrix Products with
//! Applications", PODS 2018**: Alice holds `A`, Bob holds `B`, and they
//! estimate statistics of `C = A·B` with provably little communication.
//! Every protocol returns a [`ProtocolRun`] carrying a bit-exact
//! transcript, so tests and benchmarks can check both the answer *and*
//! the communication/round budget.
//!
//! | Module | Paper | Guarantee | Comm | Rounds |
//! |---|---|---|---|---|
//! | [`lp_norm`] | Alg. 1, Thm 3.1 | `(1±ε)·‖AB‖_p^p`, `p ∈ [0,2]` | `Õ(n/ε)` | 2 |
//! | [`lp_baseline`] | \[16\] / §1.3 | `(1±ε)·‖AB‖_p^p` | `Õ(n/ε²)` | 1 |
//! | [`exact_l1`] | Remark 2 | exact `‖AB‖₁` (non-neg.) | `O(n log n)` | 1 |
//! | [`l1_sample`] | Remark 3 | `ℓ1`-sample + witness | `O(n log n)` | 1 |
//! | [`l0_sample`] | Thm 3.2 | `(1±ε)`-uniform support sample | `Õ(n/ε²)` | 1 |
//! | [`sparse_matmul`] | Lemma 2.5 | shares `C_A+C_B = AB` | `Õ(n√‖AB‖₀)` | 2 |
//! | [`linf_binary`] | Alg. 2, Thm 4.1 | `(2+ε)·‖AB‖∞`, binary | `Õ(n^{1.5}/ε)` | 3 |
//! | [`linf_kappa`] | Alg. 3, Thm 4.3 | `κ`-approx, binary | `Õ(n^{1.5}/κ)` | O(1) |
//! | [`linf_general`] | Thm 4.8(1) | `κ`-approx, integer | `Õ(n²/κ²)` | 1 |
//! | [`hh_general`] | Alg. 4, Thm 5.1, Cor. 5.2 | `(φ,ε)`-HH, integer | `Õ(√φ/ε·n)` | O(1) |
//! | [`hh_binary`] | §5.2, Thm 5.3 | `(φ,ε)`-HH, binary | `Õ(n + φ/ε²)` | O(1) |
//! | [`trivial`] | folklore | everything, exactly | `n²` | 1 |
//! | [`rect`] | §6 | rectangular variants | see §6 | — |
//!
//! ## Quick example
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_core::lp_norm::{self, LpParams};
//! use mpest_matrix::{PNorm, Workloads};
//!
//! // Two relations as binary matrices: rows of A are Alice's sets,
//! // columns of B are Bob's sets.
//! let a = Workloads::bernoulli_bits(64, 96, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(96, 64, 0.2, 2).to_csr();
//!
//! // 2-round (1+eps) estimate of the set-intersection join size ||AB||_0.
//! let run = lp_norm::run(&a, &b, &LpParams::new(PNorm::Zero, 0.25), Seed(7)).unwrap();
//! assert_eq!(run.rounds(), 2);
//! assert!(run.output > 0.0);
//! println!("join size ≈ {} using {} bits", run.output, run.bits());
//! ```

pub mod boost;
pub mod config;
pub mod exact_l1;
mod exchange;
pub mod hh_binary;
pub mod hh_general;
pub mod l0_sample;
pub mod l1_sample;
pub mod linf_binary;
pub mod linf_general;
pub mod linf_kappa;
pub mod lp_baseline;
pub mod lp_norm;
pub mod rect;
pub mod result;
pub mod sparse_matmul;
pub mod trivial;
pub mod wire;

pub use config::Constants;
pub use result::{
    HeavyHitters, HhPair, L1Sample, LinfEstimate, MatrixSample, ProductShares, ProtocolRun,
};

// Re-export the substrate types a user needs at the API boundary.
pub use mpest_comm::{CommError, Seed, Transcript};
