//! # mpest-core — distributed statistical estimation of matrix products
//!
//! Full implementation of the protocols of **Woodruff & Zhang,
//! "Distributed Statistical Estimation of Matrix Products with
//! Applications", PODS 2018**: Alice holds `A`, Bob holds `B`, and they
//! estimate statistics of `C = A·B` with provably little communication.
//!
//! The public API is organized around three layers:
//!
//! 1. **[`Session`]** — owns one pair `(A, B)`, validates dimensions
//!    once, derives per-query seeds deterministically, and caches the
//!    derived state protocols share (CSR/bit views, transposes, row-norm
//!    and support tables), so repeated queries on the same relations
//!    stop re-paying setup cost.
//! 2. **[`Protocol`]** — the unified trait every protocol implements as
//!    a unit struct; `session.run(&LpNorm, &params)` is the typed entry
//!    point, and every run returns a [`ProtocolRun`] carrying a
//!    bit-exact [`Transcript`].
//! 3. **[`EstimateRequest`] / [`EstimateReport`]** — the uniform
//!    dynamic-dispatch layer for callers that pick protocols at runtime
//!    (CLIs, servers, request queues): `session.estimate(&request)`
//!    returns a type-erased [`AnyOutput`] plus the transcript.
//! 4. **[`Engine`]** — parallel batched execution: hand a whole
//!    `Vec<EstimateRequest>` to `engine.run_batch(&requests, &plan)` and
//!    it fans out over a worker pool sharing the session's caches,
//!    returning ordered reports plus aggregate [`BatchAccounting`] —
//!    bit-identical to the sequential run for any worker count.
//!
//! | Protocol | Module | Paper | Guarantee | Comm | Rounds |
//! |---|---|---|---|---|---|
//! | [`LpNorm`] | [`lp_norm`] | Alg. 1, Thm 3.1 | `(1±ε)·‖AB‖_p^p`, `p ∈ [0,2]` | `Õ(n/ε)` | 2 |
//! | [`LpBaseline`] | [`lp_baseline`] | \[16\] / §1.3 | `(1±ε)·‖AB‖_p^p` | `Õ(n/ε²)` | 1 |
//! | [`ExactL1`] | [`exact_l1`] | Remark 2 | exact `‖AB‖₁` (non-neg.) | `O(n log n)` | 1 |
//! | [`L1Sampling`] | [`l1_sample`] | Remark 3 | `ℓ1`-sample + witness | `O(n log n)` | 1 |
//! | [`L0Sample`] | [`l0_sample`] | Thm 3.2 | `(1±ε)`-uniform support sample | `Õ(n/ε²)` | 1 |
//! | [`SparseMatmul`] | [`sparse_matmul`] | Lemma 2.5 | shares `C_A+C_B = AB` | `Õ(n√‖AB‖₀)` | 2 |
//! | [`LinfBinary`] | [`linf_binary`] | Alg. 2, Thm 4.1 | `(2+ε)·‖AB‖∞`, binary | `Õ(n^{1.5}/ε)` | 3 |
//! | [`LinfKappa`] | [`linf_kappa`] | Alg. 3, Thm 4.3 | `κ`-approx, binary | `Õ(n^{1.5}/κ)` | O(1) |
//! | [`LinfGeneral`] | [`linf_general`] | Thm 4.8(1) | `κ`-approx, integer | `Õ(n²/κ²)` | 1 |
//! | [`HhGeneral`] | [`hh_general`] | Alg. 4, Thm 5.1, Cor. 5.2 | `(φ,ε)`-HH, integer | `Õ(√φ/ε·n)` | O(1) |
//! | [`HhBinary`] | [`hh_binary`] | §5.2, Thm 5.3 | `(φ,ε)`-HH, binary | `Õ(n + φ/ε²)` | O(1) |
//! | [`AtLeastTJoin`] | [`hh_binary`] | §1.3 | all pairs with overlap `≥ T` | as `hh-binary` | O(1) |
//! | [`TrivialBinary`] | [`trivial`] | folklore | everything, exactly | `n²` | 1 |
//! | [`TrivialCsr`] | [`trivial`] | folklore | everything, exactly | `Õ(n²)` | 1 |
//!
//! (Plus [`rect`] for the Section 6 rectangular variants and [`boost`]
//! for median amplification.)
//!
//! ## Quick example
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_core::{EstimateRequest, LpNorm, Session};
//! use mpest_core::lp_norm::LpParams;
//! use mpest_matrix::{PNorm, Workloads};
//!
//! // Two relations as binary matrices: rows of A are Alice's sets,
//! // columns of B are Bob's sets.
//! let a = Workloads::bernoulli_bits(64, 96, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(96, 64, 0.2, 2).to_csr();
//!
//! // One session, many queries: dimensions validated once, derived
//! // state shared, per-query seeds derived deterministically.
//! let session = Session::builder(a, b).seed(Seed(7)).build();
//!
//! // Typed entry point (static dispatch).
//! let run = session.run(&LpNorm, &LpParams::new(PNorm::Zero, 0.25)).unwrap();
//! assert_eq!(run.rounds(), 2);
//! assert!(run.output > 0.0);
//!
//! // Uniform entry point (dynamic dispatch): the same protocols as
//! // queueable plain data.
//! let report = session.estimate(&EstimateRequest::ExactL1).unwrap();
//! println!("‖AB‖₁ = {:?} using {} bits", report.output, report.bits());
//! ```

pub mod boost;
pub mod config;
pub mod engine;
pub mod exact_l1;
mod exchange;
pub mod guarantee;
pub mod hh_binary;
pub mod hh_general;
pub mod l0_sample;
pub mod l1_sample;
pub mod linf_binary;
pub mod linf_general;
pub mod linf_kappa;
pub mod lp_baseline;
pub mod lp_norm;
pub mod protocol;
pub mod rect;
pub mod request;
pub mod result;
pub mod session;
mod sketchcache;
pub mod sparse_matmul;
pub mod stream;
pub mod trivial;
pub mod wire;

pub use config::Constants;
pub use engine::{BatchPlan, BatchReport, Engine, SeedSchedule};
pub use guarantee::{GuaranteeKind, GuaranteeSpec};
pub use protocol::Protocol;
pub use request::{AnyOutput, EstimateReport, EstimateRequest, OutputParty};
pub use result::{
    HeavyHitters, HhPair, L1Sample, LinfEstimate, MatrixSample, ProductShares, ProtocolRun,
};
pub use session::{
    PartyView, PeerInfo, ProductDims, Session, SessionBuilder, SessionCtx, SessionHalf,
    SessionInput,
};
pub use stream::{UpdateBatch, UpdateOp, UpdateSide};

// The protocol unit structs, one per entry point.
pub use exact_l1::ExactL1;
pub use hh_binary::{AtLeastTJoin, AtLeastTParams, HhBinary};
pub use hh_general::HhGeneral;
pub use l0_sample::L0Sample;
pub use l1_sample::L1Sampling;
pub use linf_binary::LinfBinary;
pub use linf_general::LinfGeneral;
pub use linf_kappa::LinfKappa;
pub use lp_baseline::LpBaseline;
pub use lp_norm::LpNorm;
pub use sparse_matmul::SparseMatmul;
pub use trivial::{TrivialBinary, TrivialCsr};

// Re-export the substrate types a user needs at the API boundary.
pub use mpest_comm::{
    BatchAccounting, CommError, Exec, ExecBackend, Party, Role, Seed, Transcript,
};
