//! Reusable multi-query sessions over one matrix pair.
//!
//! The paper defines a *family* of protocols over the same pair `(A, B)`.
//! A [`Session`] owns that pair, validates the inner dimensions once, and
//! lazily caches the derived state the protocols keep recomputing —
//! CSR/bit-matrix views of each half, CSR transposes, row/column norm
//! and support tables — so a second query on the same relations stops
//! re-paying setup cost. Per-query seeds are derived deterministically
//! from the session seed, so a session is as reproducible as a sequence
//! of one-shot runs.
//!
//! ```
//! use mpest_core::{LpNorm, Session};
//! use mpest_core::lp_norm::LpParams;
//! use mpest_comm::Seed;
//! use mpest_matrix::{PNorm, Workloads};
//!
//! let a = Workloads::bernoulli_bits(32, 48, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(48, 32, 0.2, 2).to_csr();
//! let session = Session::new(a, b).with_seed(Seed(7));
//! let run = session.run(&LpNorm, &LpParams::new(PNorm::Zero, 0.25)).unwrap();
//! assert!(run.output > 0.0);
//! // A second query reuses the session's cached derived state and gets
//! // an independent derived seed.
//! let again = session.run(&LpNorm, &LpParams::new(PNorm::ONE, 0.25)).unwrap();
//! assert!(again.output > 0.0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::config::check_dims;
use crate::protocol::Protocol;
use crate::result::ProtocolRun;
use mpest_comm::{CommError, Exec, ExecBackend, Seed};
use mpest_matrix::{BitMatrix, CsrMatrix};

/// One party's matrix in whichever representation the caller had.
#[derive(Debug, Clone)]
enum Half {
    /// General integer matrix (CSR).
    Csr(CsrMatrix),
    /// Binary matrix (bit-packed).
    Bits(BitMatrix),
}

impl Half {
    fn rows(&self) -> usize {
        match self {
            Half::Csr(m) => m.rows(),
            Half::Bits(m) => m.rows(),
        }
    }

    fn cols(&self) -> usize {
        match self {
            Half::Csr(m) => m.cols(),
            Half::Bits(m) => m.cols(),
        }
    }
}

/// Types accepted as one side of a [`Session`] pair.
pub trait SessionInput {
    /// Wraps the matrix in its session representation.
    fn into_half(self) -> SessionHalf;
}

/// Opaque wrapper for a session input matrix (see [`SessionInput`]).
#[derive(Debug, Clone)]
pub struct SessionHalf(Half);

impl SessionInput for CsrMatrix {
    fn into_half(self) -> SessionHalf {
        SessionHalf(Half::Csr(self))
    }
}

impl SessionInput for BitMatrix {
    fn into_half(self) -> SessionHalf {
        SessionHalf(Half::Bits(self))
    }
}

/// Lazily cached derived state for one half of the pair.
#[derive(Debug, Default)]
struct HalfCache {
    /// CSR view (filled only when the source is a bit matrix).
    csr: OnceLock<CsrMatrix>,
    /// Bit view (`None` when the source has non-binary entries).
    bits: OnceLock<Option<BitMatrix>>,
    /// CSR transpose.
    transpose: OnceLock<CsrMatrix>,
    /// Per-column sums of absolute values (`Σ_i |M_{i,k}|`).
    col_abs: OnceLock<Vec<i64>>,
    /// Per-row sums of absolute values.
    row_abs: OnceLock<Vec<i64>>,
    /// Per-column support sizes.
    col_nnz: OnceLock<Vec<u32>>,
    /// Per-row support sizes.
    row_nnz: OnceLock<Vec<u32>>,
}

/// A reusable two-party estimation session over one pair `(A, B)`.
///
/// Alice's matrix is `A` (her relation's rows are her sets), Bob's is
/// `B`. The session validates `A.cols == B.rows` once at construction;
/// every query re-surfaces that error instead of panicking, so the
/// builder chain `Session::new(a, b).with_seed(..)` stays infallible.
///
/// Queries run through [`Session::run`] (static dispatch over a
/// [`Protocol`]) or [`Session::estimate`] (dynamic dispatch over an
/// [`EstimateRequest`](crate::EstimateRequest)).
#[derive(Debug)]
pub struct Session {
    a: Half,
    b: Half,
    seed: Seed,
    exec: ExecBackend,
    dims: Result<(), CommError>,
    queries: AtomicU64,
    a_cache: HalfCache,
    b_cache: HalfCache,
    exact: OnceLock<CsrMatrix>,
}

impl Session {
    /// Builds a session over `(a, b)`; each side may independently be a
    /// [`CsrMatrix`] or a [`BitMatrix`]. Dimensions are validated here,
    /// once; a mismatch is reported by the first query.
    pub fn new(a: impl SessionInput, b: impl SessionInput) -> Self {
        let a = a.into_half().0;
        let b = b.into_half().0;
        let dims = check_dims(a.cols(), b.rows());
        Self {
            a,
            b,
            seed: Seed(0),
            exec: ExecBackend::default(),
            dims,
            queries: AtomicU64::new(0),
            a_cache: HalfCache::default(),
            b_cache: HalfCache::default(),
            exact: OnceLock::new(),
        }
    }

    /// Sets the session seed all per-query seeds derive from.
    #[must_use]
    pub fn with_seed(mut self, seed: Seed) -> Self {
        self.seed = seed;
        self
    }

    /// The session seed.
    #[must_use]
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// Selects the executor backend queries run on (default
    /// [`ExecBackend::Fused`]). Backends are bit-identical — outputs and
    /// transcripts never depend on this choice, only wall-clock does.
    #[must_use]
    pub fn with_executor(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// The executor backend this session's queries run on.
    #[must_use]
    pub fn executor(&self) -> ExecBackend {
        self.exec
    }

    /// Output shape of `C = A·B`.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize) {
        (self.a.rows(), self.b.cols())
    }

    /// Number of queries issued so far (each consumed one derived seed).
    #[must_use]
    pub fn queries_issued(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// The seed the `index`-th query of this session runs under.
    /// Deterministic in `(session seed, index)` and independent across
    /// indices, so concurrent or replayed queries never alias.
    #[must_use]
    pub fn query_seed(&self, index: u64) -> Seed {
        self.seed.derive("session-query").derive_u64(index)
    }

    pub(crate) fn next_query_seed(&self) -> Seed {
        self.query_seed(self.queries.fetch_add(1, Ordering::Relaxed))
    }

    /// Atomically reserves a contiguous block of `n` query indices and
    /// returns the first. A batch over indices `[first, first + n)` uses
    /// exactly the seeds the same queries would have drawn sequentially.
    pub(crate) fn reserve_query_indices(&self, n: u64) -> u64 {
        self.queries.fetch_add(n, Ordering::Relaxed)
    }

    /// Builds the per-query execution context (crate-internal: protocols
    /// receive one from `run_seeded`; the batch engine uses it to warm
    /// shared derived views before fanning out).
    pub(crate) fn ctx(&self, seed: Seed) -> SessionCtx<'_> {
        SessionCtx {
            session: self,
            seed,
            exec: Exec::Backend(self.exec),
        }
    }

    /// Runs `protocol` under the next derived per-query seed.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any) or the
    /// protocol's own validation/execution errors.
    pub fn run<P: Protocol>(
        &self,
        protocol: &P,
        params: &P::Params,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        self.run_seeded(protocol, params, self.next_query_seed())
    }

    /// Runs `protocol` under an explicit seed (replays, equivalence
    /// tests, external seed schedules). Does not consume a derived seed.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run_seeded<P: Protocol>(
        &self,
        protocol: &P,
        params: &P::Params,
        seed: Seed,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        self.run_seeded_on(protocol, params, seed, self.exec)
    }

    /// Runs `protocol` under an explicit seed *and* executor backend,
    /// overriding the session default for this query only (batch plans,
    /// equivalence tests, benches).
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run_seeded_on<P: Protocol>(
        &self,
        protocol: &P,
        params: &P::Params,
        seed: Seed,
        exec: ExecBackend,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        self.run_seeded_exec(protocol, params, seed, Exec::Backend(exec))
    }

    /// Runs `protocol` under an explicit seed and a fully general
    /// executor handle — in-process backends *or* one party of a remote
    /// pair ([`Exec::Remote`]). The request layer's
    /// [`Session::estimate_remote`](crate::EstimateRequest) path is the
    /// usual entry point for remote runs; this is the typed equivalent.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run_seeded_exec<'r, P: Protocol>(
        &'r self,
        protocol: &P,
        params: &P::Params,
        seed: Seed,
        exec: Exec<'r>,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        self.dims.clone()?;
        protocol.execute(
            &SessionCtx {
                session: self,
                seed,
                exec,
            },
            params,
        )
    }

    // --- cached views ----------------------------------------------------

    fn half_csr<'s>(half: &'s Half, cache: &'s HalfCache) -> &'s CsrMatrix {
        match half {
            Half::Csr(m) => m,
            Half::Bits(m) => cache.csr.get_or_init(|| m.to_csr()),
        }
    }

    fn half_bits<'s>(
        half: &'s Half,
        cache: &'s HalfCache,
        side: &str,
    ) -> Result<&'s BitMatrix, CommError> {
        match half {
            Half::Bits(m) => Ok(m),
            Half::Csr(m) => cache
                .bits
                .get_or_init(|| m.is_binary().then(|| BitMatrix::from_csr(m)))
                .as_ref()
                .ok_or_else(|| {
                    CommError::protocol(format!(
                        "binary protocol requested but matrix {side} has non-binary entries"
                    ))
                }),
        }
    }

    fn a_csr(&self) -> &CsrMatrix {
        Self::half_csr(&self.a, &self.a_cache)
    }

    fn b_csr(&self) -> &CsrMatrix {
        Self::half_csr(&self.b, &self.b_cache)
    }

    // --- exact references -------------------------------------------------
    //
    // Centralized ground truth over the session's own pair, for
    // verification harnesses and experiments that score protocol
    // outputs. The product is computed once (it is the expensive part)
    // and cached alongside the derived views; protocols themselves
    // never read it — the whole point of the paper is to avoid it.

    /// The exact product `C = A·B`, computed centrally and cached.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn exact_product(&self) -> Result<&CsrMatrix, CommError> {
        self.dims.clone()?;
        Ok(self.exact.get_or_init(|| self.a_csr().matmul(self.b_csr())))
    }

    /// Exact `‖AB‖_p^p` (for [`PNorm::Zero`](mpest_matrix::PNorm::Zero),
    /// the support size).
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn exact_lp_pow(&self, p: mpest_matrix::PNorm) -> Result<f64, CommError> {
        Ok(mpest_matrix::norms::csr_lp_pow(self.exact_product()?, p))
    }

    /// Exact `‖AB‖_∞` with one arg-max position.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn exact_linf(&self) -> Result<(i64, (u32, u32)), CommError> {
        Ok(mpest_matrix::norms::csr_linf(self.exact_product()?))
    }

    /// The exact `ℓp`-(φ) heavy-hitter positions of `AB`, sorted.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn exact_heavy_hitters(
        &self,
        p: mpest_matrix::PNorm,
        phi: f64,
    ) -> Result<Vec<(u32, u32)>, CommError> {
        let mut hh = mpest_matrix::norms::csr_heavy_hitters(self.exact_product()?, p, phi);
        hh.sort_unstable();
        Ok(hh)
    }
}

/// Per-query execution context handed to [`Protocol::execute`]: the
/// session's cached views of `(A, B)` plus this query's seed.
#[derive(Debug, Clone, Copy)]
pub struct SessionCtx<'a> {
    session: &'a Session,
    seed: Seed,
    exec: Exec<'a>,
}

impl<'a> SessionCtx<'a> {
    /// This query's seed.
    #[must_use]
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// The executor handle this query runs on: an in-process backend, or
    /// one party of a remote pair (see [`mpest_comm::remote`]).
    #[must_use]
    pub fn executor(&self) -> Exec<'a> {
        self.exec
    }

    /// The pair as CSR matrices (cached conversion if a side was built
    /// from bits).
    #[must_use]
    pub fn csr_pair(&self) -> (&'a CsrMatrix, &'a CsrMatrix) {
        (self.session.a_csr(), self.session.b_csr())
    }

    /// The pair as bit matrices.
    ///
    /// # Errors
    ///
    /// Fails if either side has non-binary entries.
    pub fn bit_pair(&self) -> Result<(&'a BitMatrix, &'a BitMatrix), CommError> {
        let a = Session::half_bits(&self.session.a, &self.session.a_cache, "A")?;
        let b = Session::half_bits(&self.session.b, &self.session.b_cache, "B")?;
        Ok((a, b))
    }

    /// Cached CSR transpose of `A`.
    #[must_use]
    pub fn a_transpose(&self) -> &'a CsrMatrix {
        let s = self.session;
        s.a_cache.transpose.get_or_init(|| s.a_csr().transpose())
    }

    /// Cached CSR transpose of `B`.
    #[must_use]
    pub fn b_transpose(&self) -> &'a CsrMatrix {
        let s = self.session;
        s.b_cache.transpose.get_or_init(|| s.b_csr().transpose())
    }

    /// Cached per-column absolute sums of `A`.
    #[must_use]
    pub fn a_col_abs_sums(&self) -> &'a [i64] {
        let s = self.session;
        s.a_cache.col_abs.get_or_init(|| s.a_csr().col_abs_sums())
    }

    /// Cached per-row absolute sums of `B`.
    #[must_use]
    pub fn b_row_abs_sums(&self) -> &'a [i64] {
        let s = self.session;
        s.b_cache.row_abs.get_or_init(|| s.b_csr().row_abs_sums())
    }

    /// Cached per-column support sizes of `A`.
    #[must_use]
    pub fn a_col_nnz(&self) -> &'a [u32] {
        let s = self.session;
        s.a_cache.col_nnz.get_or_init(|| s.a_csr().col_nnz())
    }

    /// Cached per-row support sizes of `B`.
    #[must_use]
    pub fn b_row_nnz(&self) -> &'a [u32] {
        let s = self.session;
        s.b_cache.row_nnz.get_or_init(|| s.b_csr().row_nnz())
    }
}

/// Borrows a session-cached view when present, otherwise computes and
/// owns a local one — the single implementation of the reuse contract
/// every protocol threads through its phases.
pub(crate) fn cached_or<'a, T: Clone>(
    pre: Option<&'a T>,
    make: impl FnOnce() -> T,
) -> std::borrow::Cow<'a, T> {
    match pre {
        Some(t) => std::borrow::Cow::Borrowed(t),
        None => std::borrow::Cow::Owned(make()),
    }
}

/// Precomputed derived views a protocol may reuse instead of
/// recomputing. All fields are optional; `Reuse::default()` (the legacy
/// one-shot path) recomputes everything locally, and each
/// `Protocol::execute` fills in only the views that protocol actually
/// reads (so a session never materializes tables no query needs).
/// Every view is a pure function of the input pair, so reuse never
/// changes outputs or transcripts.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Reuse<'a> {
    /// CSR view of `A` (for protocols whose primary input is binary).
    pub a_csr: Option<&'a CsrMatrix>,
    /// CSR view of `B`.
    pub b_csr: Option<&'a CsrMatrix>,
    /// CSR transpose of `A`.
    pub a_t: Option<&'a CsrMatrix>,
    /// CSR transpose of `B`.
    pub b_t: Option<&'a CsrMatrix>,
    /// Per-column absolute sums of `A`.
    pub a_col_abs: Option<&'a [i64]>,
    /// Per-row absolute sums of `B`.
    pub b_row_abs: Option<&'a [i64]>,
    /// Per-column support sizes of `A`.
    pub a_col_nnz: Option<&'a [u32]>,
    /// Per-row support sizes of `B`.
    pub b_row_nnz: Option<&'a [u32]>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::Workloads;

    #[test]
    fn dimension_mismatch_surfaces_on_query_not_construction() {
        let a = CsrMatrix::zeros(4, 5);
        let b = CsrMatrix::zeros(6, 4);
        let s = Session::new(a, b);
        let err = s.run(&crate::ExactL1, &()).unwrap_err();
        assert!(matches!(err, CommError::Protocol(_)));
    }

    #[test]
    fn mixed_representations_share_views() {
        let bits = Workloads::bernoulli_bits(8, 12, 0.4, 1);
        let csr = Workloads::bernoulli_bits(12, 8, 0.4, 2).to_csr();
        let s = Session::new(bits.clone(), csr.clone());
        let ctx = SessionCtx {
            session: &s,
            seed: Seed(0),
            exec: Exec::Backend(ExecBackend::default()),
        };
        let (a_csr, b_csr) = ctx.csr_pair();
        assert_eq!(a_csr, &bits.to_csr());
        assert_eq!(b_csr, &csr);
        let (a_bits, b_bits) = ctx.bit_pair().unwrap();
        assert_eq!(a_bits, &bits);
        assert_eq!(b_bits, &BitMatrix::from_csr(&csr));
        // Cached views are pointer-stable across calls.
        assert!(std::ptr::eq(ctx.a_transpose(), ctx.a_transpose()));
        assert!(std::ptr::eq(ctx.csr_pair().0, ctx.csr_pair().0));
    }

    #[test]
    fn non_binary_half_rejects_bit_view() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 3)]);
        let b = CsrMatrix::from_triplets(2, 2, vec![(1, 1, 1)]);
        let s = Session::new(a, b);
        let ctx = SessionCtx {
            session: &s,
            seed: Seed(0),
            exec: Exec::Backend(ExecBackend::default()),
        };
        let err = ctx.bit_pair().unwrap_err();
        assert!(err.to_string().contains("non-binary"));
    }

    #[test]
    fn exact_references_match_centralized_ground_truth() {
        let a = Workloads::bernoulli_bits(12, 16, 0.3, 5);
        let b = Workloads::bernoulli_bits(16, 12, 0.3, 6);
        let c = a.to_csr().matmul(&b.to_csr());
        let s = Session::new(a, b);
        assert_eq!(s.exact_product().unwrap(), &c);
        // Cached: pointer-stable across calls.
        assert!(std::ptr::eq(
            s.exact_product().unwrap(),
            s.exact_product().unwrap()
        ));
        for p in [
            mpest_matrix::PNorm::Zero,
            mpest_matrix::PNorm::ONE,
            mpest_matrix::PNorm::TWO,
        ] {
            assert_eq!(
                s.exact_lp_pow(p).unwrap(),
                mpest_matrix::norms::csr_lp_pow(&c, p)
            );
        }
        assert_eq!(s.exact_linf().unwrap(), mpest_matrix::norms::csr_linf(&c));
        let hh = s
            .exact_heavy_hitters(mpest_matrix::PNorm::ONE, 0.01)
            .unwrap();
        assert!(hh.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");

        // A dimension mismatch surfaces instead of panicking.
        let bad = Session::new(CsrMatrix::zeros(3, 4), CsrMatrix::zeros(5, 3));
        assert!(bad.exact_product().is_err());
    }

    #[test]
    fn derived_seeds_are_distinct_and_deterministic() {
        let a = Workloads::bernoulli_bits(4, 4, 0.5, 1).to_csr();
        let b = Workloads::bernoulli_bits(4, 4, 0.5, 2).to_csr();
        let s = Session::new(a, b).with_seed(Seed(9));
        assert_eq!(s.query_seed(0), s.query_seed(0));
        assert_ne!(s.query_seed(0), s.query_seed(1));
        assert_eq!(s.queries_issued(), 0);
        let _ = s.run(&crate::ExactL1, &()).unwrap();
        let _ = s.run(&crate::ExactL1, &()).unwrap();
        assert_eq!(s.queries_issued(), 2);
    }
}
