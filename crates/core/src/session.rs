//! Reusable multi-query sessions over one matrix pair.
//!
//! The paper defines a *family* of protocols over the same pair `(A, B)`.
//! A [`Session`] owns that pair, validates the inner dimensions once, and
//! lazily caches the derived state the protocols keep recomputing —
//! CSR/bit-matrix views of each half, CSR transposes, row/column norm
//! and support tables — so a second query on the same relations stops
//! re-paying setup cost. Per-query seeds are derived deterministically
//! from the session seed, so a session is as reproducible as a sequence
//! of one-shot runs.
//!
//! ```
//! use mpest_core::{LpNorm, Session};
//! use mpest_core::lp_norm::LpParams;
//! use mpest_comm::Seed;
//! use mpest_matrix::{PNorm, Workloads};
//!
//! let a = Workloads::bernoulli_bits(32, 48, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(48, 32, 0.2, 2).to_csr();
//! let session = Session::builder(a, b).seed(Seed(7)).build();
//! let run = session.run(&LpNorm, &LpParams::new(PNorm::Zero, 0.25)).unwrap();
//! assert!(run.output > 0.0);
//! // A second query reuses the session's cached derived state and gets
//! // an independent derived seed.
//! let again = session.run(&LpNorm, &LpParams::new(PNorm::ONE, 0.25)).unwrap();
//! assert!(again.output > 0.0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::config::check_dims;
use crate::protocol::Protocol;
use crate::result::ProtocolRun;
use crate::sketchcache::SketchCache;
use crate::stream::{UpdateBatch, UpdateOp, UpdateSide};
use mpest_comm::remote::{FrameIo, RemoteCtx};
use mpest_comm::{CommError, Exec, ExecBackend, Role, Seed};
use mpest_matrix::{BitMatrix, CsrMatrix, SparseVec};

/// One party's matrix in whichever representation the caller had.
#[derive(Debug, Clone)]
enum Half {
    /// General integer matrix (CSR).
    Csr(CsrMatrix),
    /// Binary matrix (bit-packed).
    Bits(BitMatrix),
}

impl Half {
    fn rows(&self) -> usize {
        match self {
            Half::Csr(m) => m.rows(),
            Half::Bits(m) => m.rows(),
        }
    }

    fn cols(&self) -> usize {
        match self {
            Half::Csr(m) => m.cols(),
            Half::Bits(m) => m.cols(),
        }
    }
}

/// Types accepted as one side of a [`Session`] pair.
pub trait SessionInput {
    /// Wraps the matrix in its session representation.
    fn into_half(self) -> SessionHalf;
}

/// Opaque wrapper for a session input matrix (see [`SessionInput`]).
#[derive(Debug, Clone)]
pub struct SessionHalf(Half);

impl SessionInput for CsrMatrix {
    fn into_half(self) -> SessionHalf {
        SessionHalf(Half::Csr(self))
    }
}

impl SessionInput for BitMatrix {
    fn into_half(self) -> SessionHalf {
        SessionHalf(Half::Bits(self))
    }
}

impl SessionInput for SessionHalf {
    fn into_half(self) -> SessionHalf {
        self
    }
}

/// Lazily cached derived state for one half of the pair.
#[derive(Debug, Default)]
struct HalfCache {
    /// CSR view (filled only when the source is a bit matrix).
    csr: OnceLock<CsrMatrix>,
    /// Bit view (`None` when the source has non-binary entries).
    bits: OnceLock<Option<BitMatrix>>,
    /// CSR transpose.
    transpose: OnceLock<CsrMatrix>,
    /// Per-column sums of absolute values (`Σ_i |M_{i,k}|`).
    col_abs: OnceLock<Vec<i64>>,
    /// Per-row sums of absolute values.
    row_abs: OnceLock<Vec<i64>>,
    /// Per-column support sizes.
    col_nnz: OnceLock<Vec<u32>>,
    /// Per-row support sizes.
    row_nnz: OnceLock<Vec<u32>>,
}

/// A reusable two-party estimation session over one pair `(A, B)`.
///
/// Alice's matrix is `A` (her relation's rows are her sets), Bob's is
/// `B`. The session validates `A.cols == B.rows` once at construction;
/// every query re-surfaces that error instead of panicking, so the
/// builder chain `Session::builder(a, b).seed(..).build()` stays infallible.
///
/// Queries run through [`Session::run`] (static dispatch over a
/// [`Protocol`]) or [`Session::estimate`] (dynamic dispatch over an
/// [`EstimateRequest`](crate::EstimateRequest)).
#[derive(Debug)]
pub struct Session {
    a: Half,
    b: Half,
    seed: Seed,
    exec: ExecBackend,
    dims: Result<(), CommError>,
    queries: AtomicU64,
    epoch: u64,
    a_cache: HalfCache,
    b_cache: HalfCache,
    sketches: SketchCache,
    exact: OnceLock<CsrMatrix>,
}

impl Session {
    /// Builds a session over `(a, b)`; each side may independently be a
    /// [`CsrMatrix`] or a [`BitMatrix`]. Dimensions are validated here,
    /// once; a mismatch is reported by the first query.
    pub fn new(a: impl SessionInput, b: impl SessionInput) -> Self {
        let a = a.into_half().0;
        let b = b.into_half().0;
        let dims = check_dims(a.cols(), b.rows());
        Self {
            a,
            b,
            seed: Seed(0),
            exec: ExecBackend::default(),
            dims,
            queries: AtomicU64::new(0),
            epoch: 0,
            a_cache: HalfCache::default(),
            b_cache: HalfCache::default(),
            sketches: SketchCache::default(),
            exact: OnceLock::new(),
        }
    }

    /// Starts a [`SessionBuilder`] over `(a, b)` — the one place to set
    /// the seed, executor, and view warming before the session is built.
    pub fn builder(a: impl SessionInput, b: impl SessionInput) -> SessionBuilder {
        SessionBuilder {
            a: a.into_half(),
            b: b.into_half(),
            seed: Seed(0),
            exec: ExecBackend::default(),
            warm: false,
        }
    }

    /// Sets the session seed all per-query seeds derive from.
    #[deprecated(
        since = "0.7.0",
        note = "use `Session::builder(a, b).seed(..).build()`"
    )]
    #[must_use]
    pub fn with_seed(mut self, seed: Seed) -> Self {
        self.seed = seed;
        self
    }

    /// The session seed.
    #[must_use]
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// Selects the executor backend queries run on (default
    /// [`ExecBackend::Fused`]). Backends are bit-identical — outputs and
    /// transcripts never depend on this choice, only wall-clock does.
    #[deprecated(
        since = "0.7.0",
        note = "use `Session::builder(a, b).executor(..).build()`"
    )]
    #[must_use]
    pub fn with_executor(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// The executor backend this session's queries run on.
    #[must_use]
    pub fn executor(&self) -> ExecBackend {
        self.exec
    }

    /// Output shape of `C = A·B`.
    #[must_use]
    pub fn output_shape(&self) -> (usize, usize) {
        (self.a.rows(), self.b.cols())
    }

    /// Number of queries issued so far (each consumed one derived seed).
    #[must_use]
    pub fn queries_issued(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// The seed the `index`-th query of this session runs under.
    /// Deterministic in `(session seed, index)` and independent across
    /// indices, so concurrent or replayed queries never alias.
    #[must_use]
    pub fn query_seed(&self, index: u64) -> Seed {
        self.seed.derive("session-query").derive_u64(index)
    }

    pub(crate) fn next_query_seed(&self) -> Seed {
        self.query_seed(self.queries.fetch_add(1, Ordering::Relaxed))
    }

    /// Atomically reserves a contiguous block of `n` query indices and
    /// returns the first. A batch over indices `[first, first + n)` uses
    /// exactly the seeds the same queries would have drawn sequentially.
    pub(crate) fn reserve_query_indices(&self, n: u64) -> u64 {
        self.queries.fetch_add(n, Ordering::Relaxed)
    }

    /// Builds the per-query execution context (crate-internal: protocols
    /// receive one from `run_seeded`; the batch engine uses it to warm
    /// shared derived views before fanning out).
    pub(crate) fn ctx(&self, seed: Seed) -> SessionCtx<'_> {
        SessionCtx {
            parties: Parties::Both(self),
            seed,
            exec: Exec::Backend(self.exec),
        }
    }

    /// Runs `protocol` under the next derived per-query seed.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any) or the
    /// protocol's own validation/execution errors.
    pub fn run<P: Protocol>(
        &self,
        protocol: &P,
        params: &P::Params,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        self.run_seeded(protocol, params, self.next_query_seed())
    }

    /// Runs `protocol` under an explicit seed (replays, equivalence
    /// tests, external seed schedules). Does not consume a derived seed.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run_seeded<P: Protocol>(
        &self,
        protocol: &P,
        params: &P::Params,
        seed: Seed,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        self.run_seeded_on(protocol, params, seed, self.exec)
    }

    /// Runs `protocol` under an explicit seed *and* executor backend,
    /// overriding the session default for this query only (batch plans,
    /// equivalence tests, benches).
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run_seeded_on<P: Protocol>(
        &self,
        protocol: &P,
        params: &P::Params,
        seed: Seed,
        exec: ExecBackend,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        self.run_seeded_exec(protocol, params, seed, Exec::Backend(exec))
    }

    /// Runs `protocol` under an explicit seed and a fully general
    /// executor handle — in-process backends *or* one party of a remote
    /// pair ([`Exec::Remote`]). The request layer's
    /// [`Session::estimate_remote`](crate::EstimateRequest) path is the
    /// usual entry point for remote runs; this is the typed equivalent.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run_seeded_exec<'r, P: Protocol>(
        &'r self,
        protocol: &P,
        params: &P::Params,
        seed: Seed,
        exec: Exec<'r>,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        run_on(Parties::Both(self), protocol, params, seed, exec)
    }

    // --- cached views ----------------------------------------------------

    fn a_csr(&self) -> &CsrMatrix {
        half_csr(&self.a, &self.a_cache)
    }

    fn b_csr(&self) -> &CsrMatrix {
        half_csr(&self.b, &self.b_cache)
    }

    // --- exact references -------------------------------------------------
    //
    // Centralized ground truth over the session's own pair, for
    // verification harnesses and experiments that score protocol
    // outputs. The product is computed once (it is the expensive part)
    // and cached alongside the derived views; protocols themselves
    // never read it — the whole point of the paper is to avoid it.

    /// The exact product `C = A·B`, computed centrally and cached.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn exact_product(&self) -> Result<&CsrMatrix, CommError> {
        self.dims.clone()?;
        Ok(self.exact.get_or_init(|| self.a_csr().matmul(self.b_csr())))
    }

    /// Exact `‖AB‖_p^p` (for [`PNorm::Zero`](mpest_matrix::PNorm::Zero),
    /// the support size).
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn exact_lp_pow(&self, p: mpest_matrix::PNorm) -> Result<f64, CommError> {
        Ok(mpest_matrix::norms::csr_lp_pow(self.exact_product()?, p))
    }

    /// Exact `‖AB‖_∞` with one arg-max position.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn exact_linf(&self) -> Result<(i64, (u32, u32)), CommError> {
        Ok(mpest_matrix::norms::csr_linf(self.exact_product()?))
    }

    /// The exact `ℓp`-(φ) heavy-hitter positions of `AB`, sorted.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn exact_heavy_hitters(
        &self,
        p: mpest_matrix::PNorm,
        phi: f64,
    ) -> Result<Vec<(u32, u32)>, CommError> {
        let mut hh = mpest_matrix::norms::csr_heavy_hitters(self.exact_product()?, p, phi);
        hh.sort_unstable();
        Ok(hh)
    }

    // --- live updates (mpest-stream) --------------------------------------

    /// The session's epoch: 0 at construction, bumped by one per
    /// successfully applied [`UpdateBatch`]. Queries against a served
    /// session name `fingerprint@epoch`, so stale snapshots are
    /// detectable.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Both halves as CSR matrices (cached conversion when a side was
    /// built from bits) — the canonical content the wire layer
    /// fingerprints.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn csr_halves(&self) -> Result<(&CsrMatrix, &CsrMatrix), CommError> {
        self.dims.clone()?;
        Ok((self.a_csr(), self.b_csr()))
    }

    /// Applies `batch` atomically and returns the new epoch.
    ///
    /// The whole batch is validated first — dimension bounds tracked
    /// across in-batch appends, and `{0, 1}` value constraints on
    /// bit-matrix sides — so a failed batch leaves the session entirely
    /// untouched (same epoch, same content, same caches).
    ///
    /// Derived views that are already materialized are maintained
    /// *incrementally* (CSR splices, transposed ops, arithmetic deltas
    /// on the norm/support tables); views still lazy stay lazy. Every
    /// cached view is a pure function of the pair in canonical form, so
    /// the maintained state is bit-identical to what a fresh `Session`
    /// over the mutated matrices would compute — the rebuild
    /// equivalence contract `tests/stream_equivalence.rs` gates on. The
    /// cached exact product is invalidated (recomputed on next use),
    /// never patched.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch, out-of-range indices
    /// (naming the op position), or non-binary values pushed at a
    /// bit-matrix side.
    pub fn apply_update(&mut self, batch: &UpdateBatch) -> Result<u64, CommError> {
        self.dims.clone()?;
        let normalized = self.validate_batch(batch)?;
        for (side, op) in &normalized {
            match side {
                UpdateSide::Alice => apply_half_op(&mut self.a, &mut self.a_cache, op),
                UpdateSide::Bob => apply_half_op(&mut self.b, &mut self.b_cache, op),
            }
        }
        self.exact.take();
        // Cached sketches are content-addressed only while the pair is
        // frozen: any mutation invalidates all of them.
        self.sketches.clear();
        self.epoch += 1;
        Ok(self.epoch)
    }

    /// Points this session's sketch-cache metric handles (hit/miss
    /// counters, prewarm kernel-vs-scalar counters, fused-group-size
    /// histogram) at `registry`. Takes `&mut self`: wire observability
    /// up *before* sharing the session (the serve daemon does this on
    /// upload). Recording never changes estimates, transcripts, or
    /// cache contents.
    pub fn set_obs(&mut self, registry: &mpest_obs::Registry) {
        self.sketches.set_obs(registry);
    }

    /// Materializes every lazily cached derived view (CSR/bit forms,
    /// transposes, norm and support tables) for both halves.
    ///
    /// Freshly built sessions compute views on first use; a *streaming*
    /// session should pay that cost up front so that
    /// [`Session::apply_update`] maintains the views incrementally from
    /// the first batch and queries never hit a cold view mid-stream.
    /// The serve daemon warms uploaded sessions for the same reason.
    /// Idempotent; already-materialized views are untouched.
    ///
    /// # Errors
    ///
    /// Surfaces the session's dimension mismatch (if any).
    pub fn warm_views(&self) -> Result<(), CommError> {
        self.dims.clone()?;
        for (half, cache) in [(&self.a, &self.a_cache), (&self.b, &self.b_cache)] {
            warm_half(half, cache);
        }
        Ok(())
    }

    /// Validates every op against simulated dimensions (so entry ops may
    /// address rows/columns appended earlier in the same batch) and
    /// normalizes each into its side-local [`HalfOp`], canonicalizing
    /// append entries up front.
    fn validate_batch(&self, batch: &UpdateBatch) -> Result<Vec<(UpdateSide, HalfOp)>, CommError> {
        validate_ops(
            &batch.ops,
            Some(HalfShape::of(&self.a)),
            Some(HalfShape::of(&self.b)),
        )
    }

    /// Splits off the storage `role` would hold in a storage-split
    /// deployment: a clone of its own half plus the *public* metadata of
    /// the peer half ([`PeerInfo`] — dimensions and binariness, never
    /// entries). Two views split from the same session and driven over a
    /// transport reproduce the session's outputs and transcripts
    /// bit-identically.
    #[must_use]
    pub fn party_view(&self, role: Role) -> PartyView {
        let (own, peer, peer_cache) = match role {
            Role::Alice => (&self.a, &self.b, &self.b_cache),
            Role::Bob => (&self.b, &self.a, &self.a_cache),
        };
        let peer = PeerInfo::new(peer.rows(), peer.cols(), half_is_binary(peer, peer_cache));
        PartyView::new(role, SessionHalf(own.clone()), peer)
    }
}

/// A half's shape plus whether its *representation* is bit-packed (which
/// constrains writable values), tracked through a batch's simulated
/// appends during validation.
#[derive(Clone, Copy)]
struct HalfShape {
    rows: usize,
    cols: usize,
    binary: bool,
}

impl HalfShape {
    fn of(half: &Half) -> Self {
        Self {
            rows: half.rows(),
            cols: half.cols(),
            binary: matches!(half, Half::Bits(_)),
        }
    }
}

/// The shared validation/normalization behind [`Session::apply_update`]
/// and [`PartyView::apply_update`]: a `None` shape means this process
/// does not hold that half, so any op addressed to it is rejected typed
/// (storage-split parties mutate only their own side).
fn validate_ops(
    ops: &[UpdateOp],
    mut a: Option<HalfShape>,
    mut b: Option<HalfShape>,
) -> Result<Vec<(UpdateSide, HalfOp)>, CommError> {
    fn held<'s>(
        a: &'s mut Option<HalfShape>,
        b: &'s mut Option<HalfShape>,
        side: UpdateSide,
        k: usize,
    ) -> Result<&'s mut HalfShape, CommError> {
        match side {
            UpdateSide::Alice => a.as_mut().ok_or_else(|| foreign_side_op(side, k)),
            UpdateSide::Bob => b.as_mut().ok_or_else(|| foreign_side_op(side, k)),
        }
    }
    let mut out = Vec::with_capacity(ops.len());
    for (k, op) in ops.iter().enumerate() {
        match op {
            UpdateOp::AppendRow { side, entries } => {
                let shape = held(&mut a, &mut b, *side, k)?;
                // Alice appends a row of `A` (entries over her columns);
                // Bob appends a column of `B` (entries over his rows).
                let dim = match side {
                    UpdateSide::Alice => shape.cols,
                    UpdateSide::Bob => shape.rows,
                };
                for &(idx, _) in entries {
                    if (idx as usize) >= dim {
                        return Err(CommError::protocol(format!(
                            "update op {k}: append to {} has index {idx} outside the \
                             inner dimension {dim}",
                            side.half_label()
                        )));
                    }
                }
                let canon = SparseVec::from_entries(dim, entries.clone()).entries;
                if shape.binary {
                    if let Some(&(idx, v)) = canon.iter().find(|&&(_, v)| v != 1) {
                        return Err(CommError::protocol(format!(
                            "update op {k}: append to bit-matrix {} has non-binary \
                             value {v} at index {idx} (duplicates are summed)",
                            side.half_label()
                        )));
                    }
                }
                match side {
                    UpdateSide::Alice => {
                        shape.rows += 1;
                        out.push((*side, HalfOp::AppendRow(canon)));
                    }
                    UpdateSide::Bob => {
                        shape.cols += 1;
                        out.push((*side, HalfOp::AppendCol(canon)));
                    }
                }
            }
            UpdateOp::SetEntry { side, row, col, .. }
            | UpdateOp::DeleteEntry { side, row, col } => {
                let val = match op {
                    UpdateOp::SetEntry { val, .. } => *val,
                    _ => 0,
                };
                let shape = held(&mut a, &mut b, *side, k)?;
                if (*row as usize) >= shape.rows || (*col as usize) >= shape.cols {
                    return Err(CommError::protocol(format!(
                        "update op {k}: entry ({row},{col}) outside {} of shape \
                         {rows}x{cols}",
                        side.half_label(),
                        rows = shape.rows,
                        cols = shape.cols,
                    )));
                }
                if shape.binary && !(val == 0 || val == 1) {
                    return Err(CommError::protocol(format!(
                        "update op {k}: bit-matrix {} cannot hold value {val}",
                        side.half_label()
                    )));
                }
                out.push((
                    *side,
                    HalfOp::Set {
                        row: *row as usize,
                        col: *col,
                        val,
                    },
                ));
            }
        }
    }
    Ok(out)
}

/// The typed rejection a storage-split party raises for an op addressed
/// to the half it does not hold.
fn foreign_side_op(side: UpdateSide, k: usize) -> CommError {
    CommError::protocol(format!(
        "update op {k} targets matrix {} but this party holds only its own half; \
         route the op to the {} party",
        side.half_label(),
        side.as_str()
    ))
}

fn half_csr<'s>(half: &'s Half, cache: &'s HalfCache) -> &'s CsrMatrix {
    match half {
        Half::Csr(m) => m,
        Half::Bits(m) => cache.csr.get_or_init(|| m.to_csr()),
    }
}

fn half_bits<'s>(
    half: &'s Half,
    cache: &'s HalfCache,
    side: &str,
) -> Result<&'s BitMatrix, CommError> {
    match half {
        Half::Bits(m) => Ok(m),
        Half::Csr(m) => cache
            .bits
            .get_or_init(|| m.is_binary().then(|| BitMatrix::from_csr(m)))
            .as_ref()
            .ok_or_else(|| non_binary_half(side)),
    }
}

fn non_binary_half(side: &str) -> CommError {
    CommError::protocol(format!(
        "binary protocol requested but matrix {side} has non-binary entries"
    ))
}

/// Whether a half's *content* is binary (bit-packed representation, or a
/// CSR whose entries are all `{0, 1}`), memoizing the verdict in the
/// cache's bit view.
fn half_is_binary(half: &Half, cache: &HalfCache) -> bool {
    match half {
        Half::Bits(_) => true,
        Half::Csr(m) => cache
            .bits
            .get_or_init(|| m.is_binary().then(|| BitMatrix::from_csr(m)))
            .is_some(),
    }
}

/// Materializes every lazily cached derived view of one half — the
/// shared implementation of [`Session::warm_views`] and
/// [`PartyView::warm_views`], so split and local sessions warm
/// bit-identical caches.
fn warm_half(half: &Half, cache: &HalfCache) {
    let csr = half_csr(half, cache);
    if let Half::Csr(m) = half {
        cache
            .bits
            .get_or_init(|| m.is_binary().then(|| BitMatrix::from_csr(m)));
    }
    cache.transpose.get_or_init(|| csr.transpose());
    cache.col_abs.get_or_init(|| csr.col_abs_sums());
    cache.row_abs.get_or_init(|| csr.row_abs_sums());
    cache.col_nnz.get_or_init(|| csr.col_nnz());
    cache.row_nnz.get_or_init(|| csr.row_nnz());
}

/// Builder for a [`Session`]: seed, executor, and view warming in one
/// infallible chain (replaces the deprecated `with_seed`/`with_executor`
/// post-hoc mutators).
///
/// ```
/// use mpest_core::Session;
/// use mpest_comm::{ExecBackend, Seed};
/// use mpest_matrix::Workloads;
///
/// let a = Workloads::bernoulli_bits(8, 12, 0.4, 1).to_csr();
/// let b = Workloads::bernoulli_bits(12, 8, 0.4, 2).to_csr();
/// let session = Session::builder(a, b)
///     .seed(Seed(7))
///     .executor(ExecBackend::Fused)
///     .warm_views()
///     .build();
/// assert_eq!(session.seed(), Seed(7));
/// ```
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    a: SessionHalf,
    b: SessionHalf,
    seed: Seed,
    exec: ExecBackend,
    warm: bool,
}

impl SessionBuilder {
    /// Sets the session seed all per-query seeds derive from.
    #[must_use]
    pub fn seed(mut self, seed: Seed) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the executor backend queries run on (default
    /// [`ExecBackend::Fused`]); backends are bit-identical.
    #[must_use]
    pub fn executor(mut self, exec: ExecBackend) -> Self {
        self.exec = exec;
        self
    }

    /// Materializes every derived view at build time (see
    /// [`Session::warm_views`]) so the first query and the first
    /// streamed update never hit a cold view.
    #[must_use]
    pub fn warm_views(mut self) -> Self {
        self.warm = true;
        self
    }

    /// Builds the session. Infallible: a dimension mismatch is recorded
    /// and surfaced by the first query, exactly like [`Session::new`]
    /// (warming is skipped for a mismatched pair).
    #[must_use]
    pub fn build(self) -> Session {
        let mut session = Session::new(self.a, self.b);
        session.seed = self.seed;
        session.exec = self.exec;
        if self.warm {
            let _ = session.warm_views();
        }
        session
    }
}

/// Public dimensions of the product `C = A·B` — everything a party may
/// know about the *shape* of its peer's half.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductDims {
    /// Rows of `A` (= rows of `C`).
    pub a_rows: usize,
    /// The inner dimension `A.cols == B.rows`.
    pub inner: usize,
    /// Columns of `B` (= columns of `C`).
    pub b_cols: usize,
}

/// The public metadata one party holds about its peer's half: dimensions
/// and whether the peer's matrix is binary. Deliberately *not* the
/// matrix — constructing a [`PartyView`] with a `PeerInfo` is the
/// compile-level guarantee that a split party cannot reach the peer's
/// entries:
///
/// ```compile_fail
/// use mpest_core::{PeerInfo, PartyView, Role};
/// use mpest_matrix::Workloads;
///
/// let a = Workloads::bernoulli_bits(8, 12, 0.4, 1).to_csr();
/// let view = PartyView::new(Role::Alice, a, PeerInfo::new(12, 8, true));
/// // There is no accessor for the peer's entries: `PeerInfo` holds
/// // dimensions and a binariness flag, nothing else.
/// let _ = view.peer().get(0, 0); // ERROR: no method `get` on `&PeerInfo`
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    rows: usize,
    cols: usize,
    binary: bool,
}

impl PeerInfo {
    /// Describes a peer half of shape `rows × cols`; `binary` states
    /// whether every entry of the peer's matrix is in `{0, 1}` (it gates
    /// the binary-only protocols and is cross-checked by the net layer's
    /// handshake).
    #[must_use]
    pub fn new(rows: usize, cols: usize, binary: bool) -> Self {
        Self { rows, cols, binary }
    }

    /// Rows of the peer's matrix.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the peer's matrix.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the peer's matrix is binary.
    #[must_use]
    pub fn binary(&self) -> bool {
        self.binary
    }
}

/// One party's storage-split view of a session: its own half (with the
/// same lazily cached derived views a [`Session`] keeps), plus the
/// peer's *public* metadata ([`PeerInfo`]). This is what a remote party
/// process holds instead of the full pair — protocols executed through
/// it run this role's closures locally and reach the peer only through
/// billed protocol messages.
#[derive(Debug)]
pub struct PartyView {
    role: Role,
    own: Half,
    cache: HalfCache,
    sketches: SketchCache,
    peer: PeerInfo,
    dims: Result<(), CommError>,
    epoch: u64,
}

impl PartyView {
    /// Builds the view `role` holds: its own matrix plus the peer's
    /// public metadata. The inner dimension (`A.cols == B.rows`) is
    /// validated here, once; a mismatch is reported by the first run.
    pub fn new(role: Role, own: impl SessionInput, peer: PeerInfo) -> Self {
        let own = own.into_half().0;
        let dims = match role {
            Role::Alice => check_dims(own.cols(), peer.rows()),
            Role::Bob => check_dims(peer.cols(), own.rows()),
        };
        Self {
            role,
            own,
            cache: HalfCache::default(),
            sketches: SketchCache::default(),
            peer,
            dims,
            epoch: 0,
        }
    }

    /// Which role this view plays.
    #[must_use]
    pub fn role(&self) -> Role {
        self.role
    }

    /// The peer's public metadata.
    #[must_use]
    pub fn peer(&self) -> &PeerInfo {
        &self.peer
    }

    /// Shape of this party's own matrix.
    #[must_use]
    pub fn own_shape(&self) -> (usize, usize) {
        (self.own.rows(), self.own.cols())
    }

    /// Whether this party's own matrix is binary (content-wise).
    #[must_use]
    pub fn own_binary(&self) -> bool {
        half_is_binary(&self.own, &self.cache)
    }

    /// This party's own matrix as CSR (cached conversion when it was
    /// built from bits) — the canonical content the wire layer
    /// fingerprints.
    #[must_use]
    pub fn own_csr(&self) -> &CsrMatrix {
        half_csr(&self.own, &self.cache)
    }

    /// Public dimensions of the product, assembled from the own half and
    /// the peer metadata.
    #[must_use]
    pub fn product_dims(&self) -> ProductDims {
        match self.role {
            Role::Alice => ProductDims {
                a_rows: self.own.rows(),
                inner: self.own.cols(),
                b_cols: self.peer.cols(),
            },
            Role::Bob => ProductDims {
                a_rows: self.peer.rows(),
                inner: self.own.rows(),
                b_cols: self.own.cols(),
            },
        }
    }

    /// The view's epoch: 0 at construction, bumped by one per applied
    /// update batch. Storage-split epochs are *per side* — each party
    /// versions only its own half.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Replaces the peer's public metadata (a peer whose half grew via
    /// appends announces new dimensions through the handshake).
    /// Re-validates the inner dimension.
    pub fn set_peer(&mut self, peer: PeerInfo) {
        self.dims = match self.role {
            Role::Alice => check_dims(self.own.cols(), peer.rows()),
            Role::Bob => check_dims(peer.cols(), self.own.rows()),
        };
        self.peer = peer;
    }

    /// Points this view's sketch-cache metric handles at `registry`
    /// (same contract as [`Session::set_obs`], for one side).
    pub fn set_obs(&mut self, registry: &mpest_obs::Registry) {
        self.sketches.set_obs(registry);
    }

    /// Materializes every lazily cached derived view of the own half
    /// (same contract as [`Session::warm_views`], for one side).
    ///
    /// # Errors
    ///
    /// Surfaces the view's inner-dimension mismatch (if any).
    pub fn warm_views(&self) -> Result<(), CommError> {
        self.dims.clone()?;
        warm_half(&self.own, &self.cache);
        Ok(())
    }

    /// Applies `batch` atomically to the *own* half and returns the new
    /// per-side epoch. Ops addressed to the peer's matrix are rejected
    /// typed — a storage-split party cannot mutate what it does not
    /// hold. Validation and incremental view maintenance are the same
    /// code paths as [`Session::apply_update`], so a split half stays
    /// bit-identical to the matching half of a full session fed the same
    /// ops.
    ///
    /// # Errors
    ///
    /// Surfaces the view's dimension mismatch, foreign-side ops,
    /// out-of-range indices, or non-binary values pushed at a bit-matrix
    /// half.
    pub fn apply_update(&mut self, batch: &UpdateBatch) -> Result<u64, CommError> {
        self.dims.clone()?;
        let own_shape = HalfShape::of(&self.own);
        let (a, b) = match self.role {
            Role::Alice => (Some(own_shape), None),
            Role::Bob => (None, Some(own_shape)),
        };
        let normalized = validate_ops(&batch.ops, a, b)?;
        for (_, op) in &normalized {
            apply_half_op(&mut self.own, &mut self.cache, op);
        }
        self.sketches.clear();
        self.epoch += 1;
        Ok(self.epoch)
    }

    /// Runs `protocol` as this view's role against a remote peer behind
    /// `io` — the storage-split counterpart of
    /// [`Session::run_seeded`]. Outputs *and* transcripts are
    /// bit-identical to an in-process run over the assembled pair.
    ///
    /// # Errors
    ///
    /// Surfaces dimension mismatches, per-side validation errors (the
    /// peer's own validation failures arrive as typed remote errors),
    /// and transport failures.
    pub fn run_remote<P: Protocol>(
        &self,
        protocol: &P,
        params: &P::Params,
        seed: Seed,
        io: &mut dyn FrameIo,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        let rc = RemoteCtx::new(self.role, io);
        run_on(
            Parties::One(self),
            protocol,
            params,
            seed,
            Exec::Remote(&rc),
        )
    }

    /// Runs `protocol` under an explicit executor handle. With
    /// [`Exec::Remote`] this is [`PartyView::run_remote`]; an in-process
    /// backend fails typed, since this process holds only one half.
    ///
    /// # Errors
    ///
    /// Same as [`PartyView::run_remote`].
    pub fn run_seeded_exec<'r, P: Protocol>(
        &'r self,
        protocol: &P,
        params: &P::Params,
        seed: Seed,
        exec: Exec<'r>,
    ) -> Result<ProtocolRun<P::Output>, CommError> {
        run_on(Parties::One(self), protocol, params, seed, exec)
    }
}

/// Whose halves a [`SessionCtx`] can see: both (the local
/// [`Session`] case) or exactly one (a storage-split [`PartyView`]).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Parties<'a> {
    /// Both halves live in this process.
    Both(&'a Session),
    /// Only this party's half lives here; the peer is metadata.
    One(&'a PartyView),
}

/// The one dispatch point behind [`Session::run_seeded_exec`] and
/// [`PartyView::run_seeded_exec`]: validates dimensions, builds the
/// per-query [`SessionCtx`], and hands it to the protocol.
pub(crate) fn run_on<'r, P: Protocol>(
    parties: Parties<'r>,
    protocol: &P,
    params: &P::Params,
    seed: Seed,
    exec: Exec<'r>,
) -> Result<ProtocolRun<P::Output>, CommError> {
    match parties {
        Parties::Both(s) => s.dims.clone()?,
        Parties::One(v) => v.dims.clone()?,
    }
    protocol.execute(
        &SessionCtx {
            parties,
            seed,
            exec,
        },
        params,
    )
}

/// A normalized, side-local mutation: append entries are canonical
/// (sorted, duplicates summed, zeros dropped) and deletes are zero
/// writes, so application code has one shape per structural change.
#[derive(Debug)]
enum HalfOp {
    /// Overwrite `(row, col)` with `val` (0 deletes).
    Set { row: usize, col: u32, val: i64 },
    /// Append a row with these canonical entries.
    AppendRow(Vec<(u32, i64)>),
    /// Append a column with these canonical entries.
    AppendCol(Vec<(u32, i64)>),
}

/// Applies one normalized op to a half and incrementally maintains every
/// *materialized* derived view in its cache; lazy views stay lazy.
/// `OnceLock` maintenance is take-mutate-set (exclusive access is
/// guaranteed by `&mut`).
fn apply_half_op(half: &mut Half, cache: &mut HalfCache, op: &HalfOp) {
    match op {
        HalfOp::Set { row, col, val } => {
            let old = match half {
                Half::Csr(m) => m.get(*row, *col),
                Half::Bits(m) => i64::from(m.get(*row, *col as usize)),
            };
            match half {
                Half::Csr(m) => m.set_entry(*row, *col, *val),
                // Validation guarantees `val ∈ {0, 1}` for a bits half.
                Half::Bits(m) => m.set(*row, *col as usize, *val == 1),
            }
            if let Some(mut csr) = cache.csr.take() {
                csr.set_entry(*row, *col, *val);
                let _ = cache.csr.set(csr);
            }
            match cache.bits.take() {
                Some(Some(mut bm)) if *val == 0 || *val == 1 => {
                    bm.set(*row, *col as usize, *val == 1);
                    let _ = cache.bits.set(Some(bm));
                }
                Some(_) if !(*val == 0 || *val == 1) => {
                    // A non-binary write makes the half definitely
                    // non-binary, whatever it was before.
                    let _ = cache.bits.set(None);
                }
                // A cached `None` after a delete/overwrite may be stale
                // (the write may have restored binariness): fall back to
                // lazy recomputation.
                _ => {}
            }
            if let Some(mut t) = cache.transpose.take() {
                t.set_entry(*col as usize, *row as u32, *val);
                let _ = cache.transpose.set(t);
            }
            let delta_abs = val.abs() - old.abs();
            if let Some(mut ca) = cache.col_abs.take() {
                ca[*col as usize] += delta_abs;
                let _ = cache.col_abs.set(ca);
            }
            if let Some(mut ra) = cache.row_abs.take() {
                ra[*row] += delta_abs;
                let _ = cache.row_abs.set(ra);
            }
            let (was, is) = (old != 0, *val != 0);
            if let Some(mut cn) = cache.col_nnz.take() {
                if was && !is {
                    cn[*col as usize] -= 1;
                } else if !was && is {
                    cn[*col as usize] += 1;
                }
                let _ = cache.col_nnz.set(cn);
            }
            if let Some(mut rn) = cache.row_nnz.take() {
                if was && !is {
                    rn[*row] -= 1;
                } else if !was && is {
                    rn[*row] += 1;
                }
                let _ = cache.row_nnz.set(rn);
            }
        }
        HalfOp::AppendRow(entries) => {
            match half {
                Half::Csr(m) => m.append_row(entries),
                Half::Bits(m) => {
                    let ones: Vec<u32> = entries.iter().map(|e| e.0).collect();
                    m.append_row(&ones);
                }
            }
            if let Some(mut csr) = cache.csr.take() {
                csr.append_row(entries);
                let _ = cache.csr.set(csr);
            }
            if let Some(bits) = cache.bits.take() {
                // Appends can never *restore* binariness, so the cached
                // verdict stays decidable: maintain a binary append,
                // demote to `None` otherwise.
                match bits {
                    Some(mut bm) if entries.iter().all(|&(_, v)| v == 1) => {
                        let ones: Vec<u32> = entries.iter().map(|e| e.0).collect();
                        bm.append_row(&ones);
                        let _ = cache.bits.set(Some(bm));
                    }
                    _ => {
                        let _ = cache.bits.set(None);
                    }
                }
            }
            if let Some(mut t) = cache.transpose.take() {
                t.append_col(entries);
                let _ = cache.transpose.set(t);
            }
            if let Some(mut ca) = cache.col_abs.take() {
                for &(c, v) in entries {
                    ca[c as usize] += v.abs();
                }
                let _ = cache.col_abs.set(ca);
            }
            if let Some(mut ra) = cache.row_abs.take() {
                ra.push(entries.iter().map(|&(_, v)| v.abs()).sum());
                let _ = cache.row_abs.set(ra);
            }
            if let Some(mut cn) = cache.col_nnz.take() {
                for &(c, _) in entries {
                    cn[c as usize] += 1;
                }
                let _ = cache.col_nnz.set(cn);
            }
            if let Some(mut rn) = cache.row_nnz.take() {
                rn.push(entries.len() as u32);
                let _ = cache.row_nnz.set(rn);
            }
        }
        HalfOp::AppendCol(entries) => {
            match half {
                Half::Csr(m) => m.append_col(entries),
                Half::Bits(m) => {
                    let ones: Vec<u32> = entries.iter().map(|e| e.0).collect();
                    m.append_col(&ones);
                }
            }
            if let Some(mut csr) = cache.csr.take() {
                csr.append_col(entries);
                let _ = cache.csr.set(csr);
            }
            if let Some(bits) = cache.bits.take() {
                match bits {
                    Some(mut bm) if entries.iter().all(|&(_, v)| v == 1) => {
                        let ones: Vec<u32> = entries.iter().map(|e| e.0).collect();
                        bm.append_col(&ones);
                        let _ = cache.bits.set(Some(bm));
                    }
                    _ => {
                        let _ = cache.bits.set(None);
                    }
                }
            }
            if let Some(mut t) = cache.transpose.take() {
                t.append_row(entries);
                let _ = cache.transpose.set(t);
            }
            if let Some(mut ca) = cache.col_abs.take() {
                ca.push(entries.iter().map(|&(_, v)| v.abs()).sum());
                let _ = cache.col_abs.set(ca);
            }
            if let Some(mut ra) = cache.row_abs.take() {
                for &(r, v) in entries {
                    ra[r as usize] += v.abs();
                }
                let _ = cache.row_abs.set(ra);
            }
            if let Some(mut cn) = cache.col_nnz.take() {
                cn.push(entries.len() as u32);
                let _ = cache.col_nnz.set(cn);
            }
            if let Some(mut rn) = cache.row_nnz.take() {
                for &(r, _) in entries {
                    rn[r as usize] += 1;
                }
                let _ = cache.row_nnz.set(rn);
            }
        }
    }
}

/// Per-query execution context handed to [`Protocol::execute`]: cached
/// views of whichever halves live in this process, public dimensions of
/// both, this query's seed, and the executor handle.
///
/// Every half accessor returns an `Option`: `Some` with the (cached)
/// view when that half is local, `None` when it belongs to a remote
/// peer. A full-pair [`Session`] context answers `Some` for both sides;
/// a storage-split [`PartyView`] context answers `Some` only for its
/// own role — the type itself is what keeps a protocol from touching
/// entries the party does not hold.
#[derive(Debug, Clone, Copy)]
pub struct SessionCtx<'a> {
    parties: Parties<'a>,
    seed: Seed,
    exec: Exec<'a>,
}

impl<'a> SessionCtx<'a> {
    /// This query's seed.
    #[must_use]
    pub fn seed(&self) -> Seed {
        self.seed
    }

    /// The executor handle this query runs on: an in-process backend, or
    /// one party of a remote pair (see [`mpest_comm::remote`]).
    #[must_use]
    pub fn executor(&self) -> Exec<'a> {
        self.exec
    }

    /// The role whose half is local, or `None` when both halves are
    /// (the full-pair [`Session`] case).
    #[must_use]
    pub fn role(&self) -> Option<Role> {
        match self.parties {
            Parties::Both(_) => None,
            Parties::One(v) => Some(v.role),
        }
    }

    /// Public dimensions of the product `C = A·B` — always available,
    /// whichever halves are local.
    #[must_use]
    pub fn dims(&self) -> ProductDims {
        match self.parties {
            Parties::Both(s) => ProductDims {
                a_rows: s.a.rows(),
                inner: s.a.cols(),
                b_cols: s.b.cols(),
            },
            Parties::One(v) => v.product_dims(),
        }
    }

    /// The given role's half and cache, when local.
    fn half(&self, role: Role) -> Option<(&'a Half, &'a HalfCache)> {
        match self.parties {
            Parties::Both(s) => Some(match role {
                Role::Alice => (&s.a, &s.a_cache),
                Role::Bob => (&s.b, &s.b_cache),
            }),
            Parties::One(v) if v.role == role => Some((&v.own, &v.cache)),
            Parties::One(_) => None,
        }
    }

    /// The peer metadata standing in for the given role's half, when
    /// that half is remote.
    fn peer_of(&self, role: Role) -> Option<&'a PeerInfo> {
        match self.parties {
            Parties::Both(_) => None,
            Parties::One(v) if v.role != role => Some(&v.peer),
            Parties::One(_) => None,
        }
    }

    /// `A` as a CSR matrix (cached conversion if it was built from
    /// bits); `None` when Alice's half is remote.
    #[must_use]
    pub fn a_csr(&self) -> Option<&'a CsrMatrix> {
        self.half(Role::Alice).map(|(h, c)| half_csr(h, c))
    }

    /// `B` as a CSR matrix; `None` when Bob's half is remote.
    #[must_use]
    pub fn b_csr(&self) -> Option<&'a CsrMatrix> {
        self.half(Role::Bob).map(|(h, c)| half_csr(h, c))
    }

    /// The local halves as CSR matrices, by side.
    #[must_use]
    pub fn csr_halves(&self) -> (Option<&'a CsrMatrix>, Option<&'a CsrMatrix>) {
        (self.a_csr(), self.b_csr())
    }

    /// The local halves as bit matrices, validating that *both* sides of
    /// the pair are binary (a remote half is checked against the peer's
    /// announced binariness, which the net handshake cross-checks).
    ///
    /// # Errors
    ///
    /// Fails if either side has non-binary entries.
    pub fn bit_halves(&self) -> Result<(Option<&'a BitMatrix>, Option<&'a BitMatrix>), CommError> {
        let side = |role: Role| match self.half(role) {
            Some((h, c)) => half_bits(h, c, role.half_label()).map(Some),
            None => match self.peer_of(role) {
                Some(peer) if peer.binary() => Ok(None),
                _ => Err(non_binary_half(role.half_label())),
            },
        };
        let a = side(Role::Alice)?;
        let b = side(Role::Bob)?;
        Ok((a, b))
    }

    /// Whether *both* halves of the pair are binary (content-wise); a
    /// remote half answers with the peer's announced binariness.
    #[must_use]
    pub fn pair_binary(&self) -> bool {
        Role::BOTH.iter().all(|&role| match self.half(role) {
            Some((h, c)) => half_is_binary(h, c),
            None => self.peer_of(role).is_some_and(PeerInfo::binary),
        })
    }

    /// The sketch memo store of whichever parties back this context —
    /// the [`Session`]'s for a full pair, the [`PartyView`]'s for a
    /// storage-split role. Protocol phases consult it for public-coin
    /// sketch matrices keyed by fully derived seeds (see
    /// [`crate::sketchcache`]); the engine's batch prewarm fills it via
    /// fused multi-seed kernel passes.
    pub(crate) fn sketch_cache(&self) -> &'a SketchCache {
        match self.parties {
            Parties::Both(s) => &s.sketches,
            Parties::One(v) => &v.sketches,
        }
    }

    /// Cached CSR transpose of `A`, when local.
    #[must_use]
    pub fn a_transpose(&self) -> Option<&'a CsrMatrix> {
        self.half(Role::Alice)
            .map(|(h, c)| c.transpose.get_or_init(|| half_csr(h, c).transpose()))
    }

    /// Cached CSR transpose of `B`, when local.
    #[must_use]
    pub fn b_transpose(&self) -> Option<&'a CsrMatrix> {
        self.half(Role::Bob)
            .map(|(h, c)| c.transpose.get_or_init(|| half_csr(h, c).transpose()))
    }

    /// Cached per-column absolute sums of `A`, when local.
    #[must_use]
    pub fn a_col_abs_sums(&self) -> Option<&'a [i64]> {
        self.half(Role::Alice).map(|(h, c)| {
            c.col_abs
                .get_or_init(|| half_csr(h, c).col_abs_sums())
                .as_slice()
        })
    }

    /// Cached per-row absolute sums of `B`, when local.
    #[must_use]
    pub fn b_row_abs_sums(&self) -> Option<&'a [i64]> {
        self.half(Role::Bob).map(|(h, c)| {
            c.row_abs
                .get_or_init(|| half_csr(h, c).row_abs_sums())
                .as_slice()
        })
    }

    /// Cached per-column support sizes of `A`, when local.
    #[must_use]
    pub fn a_col_nnz(&self) -> Option<&'a [u32]> {
        self.half(Role::Alice).map(|(h, c)| {
            c.col_nnz
                .get_or_init(|| half_csr(h, c).col_nnz())
                .as_slice()
        })
    }

    /// Cached per-row support sizes of `B`, when local.
    #[must_use]
    pub fn b_row_nnz(&self) -> Option<&'a [u32]> {
        self.half(Role::Bob).map(|(h, c)| {
            c.row_nnz
                .get_or_init(|| half_csr(h, c).row_nnz())
                .as_slice()
        })
    }
}

/// Borrows a session-cached view when present, otherwise computes and
/// owns a local one — the single implementation of the reuse contract
/// every protocol threads through its phases.
pub(crate) fn cached_or<'a, T: Clone>(
    pre: Option<&'a T>,
    make: impl FnOnce() -> T,
) -> std::borrow::Cow<'a, T> {
    match pre {
        Some(t) => std::borrow::Cow::Borrowed(t),
        None => std::borrow::Cow::Owned(make()),
    }
}

/// Precomputed derived views a protocol may reuse instead of
/// recomputing. All fields are optional; `Reuse::default()` (the legacy
/// one-shot path) recomputes everything locally, and each
/// `Protocol::execute` fills in only the views that protocol actually
/// reads (so a session never materializes tables no query needs).
/// Every view is a pure function of the input pair, so reuse never
/// changes outputs or transcripts.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Reuse<'a> {
    /// CSR view of `A` (for protocols whose primary input is binary).
    pub a_csr: Option<&'a CsrMatrix>,
    /// CSR view of `B`.
    pub b_csr: Option<&'a CsrMatrix>,
    /// CSR transpose of `A`.
    pub a_t: Option<&'a CsrMatrix>,
    /// CSR transpose of `B`.
    pub b_t: Option<&'a CsrMatrix>,
    /// Per-column absolute sums of `A`.
    pub a_col_abs: Option<&'a [i64]>,
    /// Per-row absolute sums of `B`.
    pub b_row_abs: Option<&'a [i64]>,
    /// Per-column support sizes of `A`.
    pub a_col_nnz: Option<&'a [u32]>,
    /// Per-row support sizes of `B`.
    pub b_row_nnz: Option<&'a [u32]>,
    /// Session-scoped memo store for public-coin sketch matrices.
    pub sketches: Option<&'a SketchCache>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::Workloads;

    #[test]
    fn dimension_mismatch_surfaces_on_query_not_construction() {
        let a = CsrMatrix::zeros(4, 5);
        let b = CsrMatrix::zeros(6, 4);
        let s = Session::new(a, b);
        let err = s.run(&crate::ExactL1, &()).unwrap_err();
        assert!(matches!(err, CommError::Protocol(_)));
    }

    #[test]
    fn mixed_representations_share_views() {
        let bits = Workloads::bernoulli_bits(8, 12, 0.4, 1);
        let csr = Workloads::bernoulli_bits(12, 8, 0.4, 2).to_csr();
        let s = Session::new(bits.clone(), csr.clone());
        let ctx = SessionCtx {
            parties: Parties::Both(&s),
            seed: Seed(0),
            exec: Exec::Backend(ExecBackend::default()),
        };
        let (a_csr, b_csr) = ctx.csr_halves();
        assert_eq!(a_csr.unwrap(), &bits.to_csr());
        assert_eq!(b_csr.unwrap(), &csr);
        let (a_bits, b_bits) = ctx.bit_halves().unwrap();
        assert_eq!(a_bits.unwrap(), &bits);
        assert_eq!(b_bits.unwrap(), &BitMatrix::from_csr(&csr));
        assert!(ctx.pair_binary());
        assert_eq!(ctx.role(), None);
        let dims = ctx.dims();
        assert_eq!((dims.a_rows, dims.inner, dims.b_cols), (8, 12, 8));
        // Cached views are pointer-stable across calls.
        assert!(std::ptr::eq(
            ctx.a_transpose().unwrap(),
            ctx.a_transpose().unwrap()
        ));
        assert!(std::ptr::eq(
            ctx.csr_halves().0.unwrap(),
            ctx.csr_halves().0.unwrap()
        ));
    }

    #[test]
    fn non_binary_half_rejects_bit_view() {
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 3)]);
        let b = CsrMatrix::from_triplets(2, 2, vec![(1, 1, 1)]);
        let s = Session::new(a, b);
        let ctx = SessionCtx {
            parties: Parties::Both(&s),
            seed: Seed(0),
            exec: Exec::Backend(ExecBackend::default()),
        };
        let err = ctx.bit_halves().unwrap_err();
        assert!(err.to_string().contains("non-binary"));
        assert!(!ctx.pair_binary());
    }

    #[test]
    fn exact_references_match_centralized_ground_truth() {
        let a = Workloads::bernoulli_bits(12, 16, 0.3, 5);
        let b = Workloads::bernoulli_bits(16, 12, 0.3, 6);
        let c = a.to_csr().matmul(&b.to_csr());
        let s = Session::new(a, b);
        assert_eq!(s.exact_product().unwrap(), &c);
        // Cached: pointer-stable across calls.
        assert!(std::ptr::eq(
            s.exact_product().unwrap(),
            s.exact_product().unwrap()
        ));
        for p in [
            mpest_matrix::PNorm::Zero,
            mpest_matrix::PNorm::ONE,
            mpest_matrix::PNorm::TWO,
        ] {
            assert_eq!(
                s.exact_lp_pow(p).unwrap(),
                mpest_matrix::norms::csr_lp_pow(&c, p)
            );
        }
        assert_eq!(s.exact_linf().unwrap(), mpest_matrix::norms::csr_linf(&c));
        let hh = s
            .exact_heavy_hitters(mpest_matrix::PNorm::ONE, 0.01)
            .unwrap();
        assert!(hh.windows(2).all(|w| w[0] < w[1]), "sorted and deduped");

        // A dimension mismatch surfaces instead of panicking.
        let bad = Session::new(CsrMatrix::zeros(3, 4), CsrMatrix::zeros(5, 3));
        assert!(bad.exact_product().is_err());
    }

    /// Asserts every derived view of `s` equals the one a fresh session
    /// over the same (CSR) content computes — including the lazy ones,
    /// by forcing both sides.
    fn assert_views_match_fresh(s: &Session) {
        let (a, b) = s.csr_halves().unwrap();
        let fresh = Session::builder(a.clone(), b.clone())
            .seed(s.seed())
            .build();
        let ctx = s.ctx(Seed(0));
        let fctx = fresh.ctx(Seed(0));
        assert_eq!(ctx.csr_halves().0, fctx.csr_halves().0, "A csr");
        assert_eq!(ctx.csr_halves().1, fctx.csr_halves().1, "B csr");
        assert_eq!(ctx.a_transpose(), fctx.a_transpose(), "A transpose");
        assert_eq!(ctx.b_transpose(), fctx.b_transpose(), "B transpose");
        assert_eq!(ctx.a_col_abs_sums(), fctx.a_col_abs_sums(), "A col abs");
        assert_eq!(ctx.b_row_abs_sums(), fctx.b_row_abs_sums(), "B row abs");
        assert_eq!(ctx.a_col_nnz(), fctx.a_col_nnz(), "A col nnz");
        assert_eq!(ctx.b_row_nnz(), fctx.b_row_nnz(), "B row nnz");
        assert_eq!(
            ctx.bit_halves().ok().map(|(x, y)| (x.cloned(), y.cloned())),
            fctx.bit_halves()
                .ok()
                .map(|(x, y)| (x.cloned(), y.cloned())),
            "bit views"
        );
        assert_eq!(
            s.exact_product().unwrap(),
            fresh.exact_product().unwrap(),
            "exact product"
        );
    }

    fn warm_all_views(s: &Session) {
        let ctx = s.ctx(Seed(0));
        let _ = ctx.csr_halves();
        let _ = ctx.bit_halves();
        let _ = (ctx.a_transpose(), ctx.b_transpose());
        let _ = (ctx.a_col_abs_sums(), ctx.b_row_abs_sums());
        let _ = (ctx.a_col_nnz(), ctx.b_row_nnz());
        let _ = s.exact_product();
    }

    #[test]
    fn updates_maintain_warmed_views_bit_identically() {
        use crate::stream::{UpdateBatch, UpdateSide};
        let a = Workloads::bernoulli_bits(10, 14, 0.3, 3).to_csr();
        let b = Workloads::bernoulli_bits(14, 10, 0.3, 4).to_csr();
        let mut s = Session::builder(a, b).seed(Seed(5)).build();
        warm_all_views(&s);
        assert_eq!(s.epoch(), 0);
        let batch = UpdateBatch::new()
            .append_row(UpdateSide::Alice, vec![(3, 1), (9, 1), (3, 0)])
            .append_row(UpdateSide::Bob, vec![(0, 1), (13, 1)])
            .set_entry(UpdateSide::Alice, 10, 5, 7) // the freshly appended row
            .set_entry(UpdateSide::Bob, 2, 10, 2)
            .delete_entry(UpdateSide::Alice, 10, 3)
            .set_entry(UpdateSide::Alice, 0, 0, 0);
        assert_eq!(s.apply_update(&batch).unwrap(), 1);
        assert_views_match_fresh(&s);
        // Second batch over the already-maintained views.
        let batch2 = UpdateBatch::new()
            .set_entry(UpdateSide::Alice, 10, 5, 1) // restore binariness
            .delete_entry(UpdateSide::Bob, 2, 10);
        assert_eq!(s.apply_update(&batch2).unwrap(), 2);
        assert_views_match_fresh(&s);
    }

    #[test]
    fn updates_maintain_bit_matrix_sessions() {
        use crate::stream::{UpdateBatch, UpdateSide};
        let a = Workloads::bernoulli_bits(8, 12, 0.4, 7);
        let b = Workloads::bernoulli_bits(12, 8, 0.4, 8);
        let mut s = Session::new(a, b);
        warm_all_views(&s);
        let batch = UpdateBatch::new()
            .append_row(UpdateSide::Alice, vec![(0, 1), (11, 1)])
            .append_row(UpdateSide::Bob, vec![(5, 1)])
            .set_entry(UpdateSide::Alice, 8, 3, 1)
            .delete_entry(UpdateSide::Bob, 5, 8);
        s.apply_update(&batch).unwrap();
        // The bit halves must stay bit views; compare via CSR canon.
        assert_views_match_fresh(&s);
        let ctx = s.ctx(Seed(0));
        assert!(ctx.bit_halves().is_ok());
    }

    #[test]
    fn invalid_batches_leave_the_session_untouched() {
        use crate::stream::{UpdateBatch, UpdateSide};
        let a = Workloads::bernoulli_bits(6, 6, 0.5, 1);
        let b = Workloads::bernoulli_bits(6, 6, 0.5, 2).to_csr();
        let mut s = Session::new(a, b);
        warm_all_views(&s);
        let before = s.csr_halves().map(|(x, y)| (x.clone(), y.clone())).unwrap();

        // Out-of-range entry — second op fails, first must not apply.
        let bad = UpdateBatch::new()
            .set_entry(UpdateSide::Bob, 0, 0, 9)
            .set_entry(UpdateSide::Alice, 99, 0, 1);
        let err = s.apply_update(&bad).unwrap_err();
        assert!(err.to_string().contains("op 1"), "{err}");

        // Non-binary value into the bit half.
        let bad = UpdateBatch::new().set_entry(UpdateSide::Alice, 0, 0, 3);
        let err = s.apply_update(&bad).unwrap_err();
        assert!(err.to_string().contains("bit-matrix A"), "{err}");

        // Duplicate append entries summing past 1 on the bit half.
        let bad = UpdateBatch::new().append_row(UpdateSide::Alice, vec![(2, 1), (2, 1)]);
        let err = s.apply_update(&bad).unwrap_err();
        assert!(err.to_string().contains("non-binary"), "{err}");

        // Append index outside the inner dimension.
        let bad = UpdateBatch::new().append_row(UpdateSide::Bob, vec![(6, 1)]);
        let err = s.apply_update(&bad).unwrap_err();
        assert!(err.to_string().contains("inner dimension"), "{err}");

        assert_eq!(s.epoch(), 0, "failed batches must not bump the epoch");
        let after = s.csr_halves().map(|(x, y)| (x.clone(), y.clone())).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn engine_updates_require_exclusive_ownership() {
        use crate::stream::{UpdateBatch, UpdateSide};
        let a = Workloads::bernoulli_bits(6, 6, 0.5, 1).to_csr();
        let b = Workloads::bernoulli_bits(6, 6, 0.5, 2).to_csr();
        let mut eng = crate::Engine::new(Session::new(a, b));
        let batch = UpdateBatch::new().set_entry(UpdateSide::Alice, 0, 0, 4);
        assert_eq!(eng.apply_update(&batch).unwrap(), 1);
        assert_eq!(eng.session().epoch(), 1);
        let clone = eng.clone();
        let err = eng.apply_update(&batch).unwrap_err();
        assert!(err.to_string().contains("shared session"), "{err}");
        drop(clone);
        assert_eq!(eng.apply_update(&batch).unwrap(), 2);
    }

    #[test]
    fn derived_seeds_are_distinct_and_deterministic() {
        let a = Workloads::bernoulli_bits(4, 4, 0.5, 1).to_csr();
        let b = Workloads::bernoulli_bits(4, 4, 0.5, 2).to_csr();
        let s = Session::builder(a, b).seed(Seed(9)).build();
        assert_eq!(s.query_seed(0), s.query_seed(0));
        assert_ne!(s.query_seed(0), s.query_seed(1));
        assert_eq!(s.queries_issued(), 0);
        let _ = s.run(&crate::ExactL1, &()).unwrap();
        let _ = s.run(&crate::ExactL1, &()).unwrap();
        assert_eq!(s.queries_issued(), 2);
    }
}
