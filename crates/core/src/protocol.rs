//! The unified protocol interface.
//!
//! Every estimation protocol in this crate is a unit struct implementing
//! [`Protocol`]: a name, a params type, an output type, and an `execute`
//! against a [`SessionCtx`]. This gives callers one shape for all 14
//! entry points — benches sweep over protocols generically, a
//! [`Session`](crate::Session) caches shared derived state across
//! queries, and the [`EstimateRequest`](crate::EstimateRequest) layer
//! adds uniform dynamic dispatch on top.
//!
//! ```
//! use mpest_core::{ExactL1, Protocol, Session};
//! use mpest_comm::Seed;
//! use mpest_matrix::Workloads;
//!
//! let a = Workloads::bernoulli_bits(16, 24, 0.3, 1).to_csr();
//! let b = Workloads::bernoulli_bits(24, 16, 0.3, 2).to_csr();
//! let session = Session::builder(a, b).seed(Seed(1)).build();
//! assert_eq!(ExactL1.name(), "exact-l1");
//! let run = session.run(&ExactL1, &()).unwrap();
//! assert!(run.output > 0);
//! ```

use crate::result::ProtocolRun;
use crate::session::SessionCtx;
use mpest_comm::CommError;

/// A two-party estimation protocol over a session's pair `(A, B)`.
///
/// Implementations are stateless unit structs (e.g.
/// [`LpNorm`](crate::LpNorm), [`HhBinary`](crate::HhBinary)); all
/// per-query inputs travel through `Params` and the [`SessionCtx`].
///
/// # Per-party execution and storage-split contexts
///
/// A context does not necessarily hold both halves. A full
/// [`Session`](crate::Session) runs both roles in one process, while a
/// storage-split [`PartyView`](crate::PartyView) executes the same
/// `execute` with only its own half present — the peer is public
/// metadata ([`PeerInfo`](crate::PeerInfo)) and every cross-party byte
/// travels through the billed link. Outputs *and* transcripts are
/// bit-identical between the two modes.
///
/// ## Migration note for `Protocol` implementors (0.7)
///
/// Before 0.7, `execute` could assume both matrices were readable. The
/// context accessors are now per-side and `Option`-returning:
///
/// * Read public scalars (shapes, cell counts) from
///   [`SessionCtx::dims`](crate::SessionCtx::dims) — **never** from the
///   peer's matrix. `dims()` is always available; the peer's entries are
///   not.
/// * Fetch halves via `csr_halves()` / `bit_halves()` and hand them to
///   [`execute_split`](mpest_comm::execute_split), which runs whichever
///   closures this process holds inputs for. Validate only halves that
///   are `Some` (the peer validates its own and failures surface as
///   typed remote errors).
/// * Values derivable only from one party's entries (e.g. a level cap
///   from `‖A‖₀`) must be computed *inside* that party's closure and, if
///   the peer needs them, shipped as protocol messages.
pub trait Protocol {
    /// Query parameters (`()` for parameterless protocols).
    type Params;
    /// The protocol's output type.
    type Output;

    /// Stable kebab-case protocol name (matches the CLI spelling).
    fn name(&self) -> &'static str;

    /// Runs the protocol on the context's pair under the context's seed.
    ///
    /// # Errors
    ///
    /// Fails on invalid parameters, on a representation mismatch (e.g. a
    /// binary-only protocol over a non-binary pair), or on any
    /// communication-layer error.
    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &Self::Params,
    ) -> Result<ProtocolRun<Self::Output>, CommError>;
}
