//! The unified protocol interface.
//!
//! Every estimation protocol in this crate is a unit struct implementing
//! [`Protocol`]: a name, a params type, an output type, and an `execute`
//! against a [`SessionCtx`]. This gives callers one shape for all 14
//! entry points — benches sweep over protocols generically, a
//! [`Session`](crate::Session) caches shared derived state across
//! queries, and the [`EstimateRequest`](crate::EstimateRequest) layer
//! adds uniform dynamic dispatch on top.
//!
//! ```
//! use mpest_core::{ExactL1, Protocol, Session};
//! use mpest_comm::Seed;
//! use mpest_matrix::Workloads;
//!
//! let a = Workloads::bernoulli_bits(16, 24, 0.3, 1).to_csr();
//! let b = Workloads::bernoulli_bits(24, 16, 0.3, 2).to_csr();
//! let session = Session::new(a, b).with_seed(Seed(1));
//! assert_eq!(ExactL1.name(), "exact-l1");
//! let run = session.run(&ExactL1, &()).unwrap();
//! assert!(run.output > 0);
//! ```

use crate::result::ProtocolRun;
use crate::session::SessionCtx;
use mpest_comm::CommError;

/// A two-party estimation protocol over a session's pair `(A, B)`.
///
/// Implementations are stateless unit structs (e.g.
/// [`LpNorm`](crate::LpNorm), [`HhBinary`](crate::HhBinary)); all
/// per-query inputs travel through `Params` and the [`SessionCtx`].
pub trait Protocol {
    /// Query parameters (`()` for parameterless protocols).
    type Params;
    /// The protocol's output type.
    type Output;

    /// Stable kebab-case protocol name (matches the CLI spelling).
    fn name(&self) -> &'static str;

    /// Runs the protocol on the context's pair under the context's seed.
    ///
    /// # Errors
    ///
    /// Fails on invalid parameters, on a representation mismatch (e.g. a
    /// binary-only protocol over a non-binary pair), or on any
    /// communication-layer error.
    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &Self::Params,
    ) -> Result<ProtocolRun<Self::Output>, CommError>;
}
