//! Section 6: rectangular matrices.
//!
//! Every protocol in this crate is implemented for general shapes
//! `A ∈ {0,1}^{m₁×n}`, `B ∈ {0,1}^{n×m₂}` (the paper notes the square
//! algorithms carry over with `n → m` in the right places). This module
//! provides the rectangular workload builder used by the Section 6
//! experiments and convenience assertions about the shape-dependence of
//! the bounds:
//!
//! * `ℓp` (`p ∈ [0, 2]`, integer entries): still `Õ(n/ε)` — the sketch
//!   message scales with the *inner* dimension, not `m₁·m₂`;
//! * `ℓ∞` (binary): `Õ(m^{1.5})` for `m = max(m₁, m₂)`;
//! * heavy hitters: `Õ(√φ/ε · n)` general, `Õ(n + φ/ε²)` binary.

use mpest_matrix::{BitMatrix, Workloads};

/// A rectangular problem shape: `A` is `m1 × n`, `B` is `n × m2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RectShape {
    /// Rows of `A` (left outer dimension).
    pub m1: usize,
    /// Inner dimension (the shared attribute domain).
    pub n: usize,
    /// Columns of `B` (right outer dimension).
    pub m2: usize,
}

impl RectShape {
    /// A square shape.
    #[must_use]
    pub fn square(n: usize) -> Self {
        Self { m1: n, n, m2: n }
    }

    /// Number of output cells `m1 · m2`.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.m1 * self.m2
    }

    /// Generates a binary workload of this shape with the given density.
    #[must_use]
    pub fn binary_workload(&self, density: f64, seed: u64) -> (BitMatrix, BitMatrix) {
        (
            Workloads::bernoulli_bits(self.m1, self.n, density, seed ^ 0xaa),
            Workloads::bernoulli_bits(self.n, self.m2, density, seed ^ 0xbb),
        )
    }

    /// Generates a planted-pair binary workload of this shape.
    #[must_use]
    pub fn planted_workload(
        &self,
        density: f64,
        overlap: usize,
        seed: u64,
    ) -> (BitMatrix, BitMatrix, (u32, u32)) {
        let i = (self.m1 / 2) as u32;
        let j = (self.m2 / 3) as u32;
        // `planted_pairs` builds A as n×u and B as u×n with n sets each;
        // for rectangles we plant manually on a Bernoulli base.
        let mut a = Workloads::bernoulli_bits(self.m1, self.n, density, seed ^ 0x11);
        let bt = Workloads::bernoulli_bits(self.m2, self.n, density, seed ^ 0x22);
        let mut bt = bt;
        let mut placed = 0usize;
        let mut k = 0usize;
        while placed < overlap.min(self.n) && k < self.n {
            a.set(i as usize, k, true);
            bt.set(j as usize, k, true);
            placed += 1;
            k += 1;
        }
        (a, bt.transpose(), (i, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_norm::LpParams;
    use crate::{hh_binary, linf_binary, Session};
    use mpest_comm::Seed;
    use mpest_matrix::{norms, stats, PNorm};

    #[test]
    fn shapes_and_workloads() {
        let shape = RectShape {
            m1: 16,
            n: 64,
            m2: 24,
        };
        assert_eq!(shape.cells(), 384);
        let (a, b) = shape.binary_workload(0.2, 1);
        assert_eq!((a.rows(), a.cols()), (16, 64));
        assert_eq!((b.rows(), b.cols()), (64, 24));
        assert_eq!(RectShape::square(8).cells(), 64);
    }

    #[test]
    fn lp_protocol_on_rectangles() {
        let shape = RectShape {
            m1: 20,
            n: 80,
            m2: 36,
        };
        let (a, b) = shape.binary_workload(0.25, 3);
        let (ac, bc) = (a.to_csr(), b.to_csr());
        let truth = stats::lp_pow_of_product(&ac, &bc, PNorm::Zero);
        let params = LpParams::new(PNorm::Zero, 0.3);
        let mut ok = 0;
        for t in 0..9 {
            let run = Session::new(ac.clone(), bc.clone())
                .run_seeded(&crate::LpNorm, &params, Seed(10 + t))
                .unwrap();
            if (run.output - truth).abs() <= 0.35 * truth {
                ok += 1;
            }
        }
        assert!(ok >= 6, "rect lp accuracy {ok}/9");
    }

    #[test]
    fn linf_protocol_on_rectangles() {
        let shape = RectShape {
            m1: 24,
            n: 96,
            m2: 18,
        };
        let (a, b, (i, j)) = shape.planted_workload(0.1, 48, 5);
        let truth = stats::linf_of_product_binary(&a, &b).0 as f64;
        let c = a.matmul(&b);
        assert!(c.get(i as usize, j as usize) >= 48);
        let run = Session::new(a.clone(), b.clone())
            .run_seeded(
                &crate::LinfBinary,
                &linf_binary::LinfBinaryParams::new(0.3),
                Seed(7),
            )
            .unwrap();
        assert!(
            run.output.estimate >= truth / 3.0 && run.output.estimate <= 2.0 * truth,
            "rect linf estimate {} vs truth {truth}",
            run.output.estimate
        );
    }

    #[test]
    fn hh_binary_on_rectangles() {
        let shape = RectShape {
            m1: 24,
            n: 72,
            m2: 20,
        };
        let (a, b, (i, j)) = shape.planted_workload(0.05, 40, 9);
        let c = a.to_csr().matmul(&b.to_csr());
        let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
        let phi = ((c.get(i as usize, j) as f64 - 5.0) / l1).min(0.9);
        let params = hh_binary::HhBinaryParams::new(1.0, phi, (phi / 2.0).min(0.4));
        let mut hit = 0;
        for t in 0..9 {
            let run = Session::new(a.clone(), b.clone())
                .run_seeded(&crate::HhBinary, &params, Seed(600 + t))
                .unwrap();
            if run.output.contains(i, j) {
                hit += 1;
            }
        }
        assert!(hit >= 6, "rect hh planted recovery {hit}/9");
    }
}
