//! Uniform dynamic dispatch: [`EstimateRequest`] → [`EstimateReport`].
//!
//! Every protocol in the crate is reachable through one request enum, so
//! callers that don't know the protocol at compile time — CLIs, servers,
//! request queues, benchmark sweeps — get a single entry point with a
//! single report shape. A request is plain data: it can be built from
//! parsed flags, queued, routed to a shard holding the right
//! [`Session`], and executed there.
//!
//! ```
//! use mpest_core::{EstimateRequest, Session};
//! use mpest_comm::Seed;
//! use mpest_matrix::{PNorm, Workloads};
//!
//! let a = Workloads::bernoulli_bits(32, 48, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(48, 32, 0.2, 2).to_csr();
//! let session = Session::builder(a, b).seed(Seed(3)).build();
//! let report = session
//!     .estimate(&EstimateRequest::LpNorm { p: PNorm::Zero, eps: 0.25 })
//!     .unwrap();
//! println!("{} ≈ {:.0} in {} bits", report.protocol, report.output.as_scalar().unwrap(), report.bits());
//! ```

use crate::hh_binary::{AtLeastTJoin, AtLeastTParams, HhBinary, HhBinaryParams};
use crate::hh_general::{HhGeneral, HhGeneralParams};
use crate::l0_sample::{L0Sample, L0SampleParams};
use crate::l1_sample::L1Sampling;
use crate::linf_binary::{LinfBinary, LinfBinaryParams};
use crate::linf_general::{LinfGeneral, LinfGeneralParams};
use crate::linf_kappa::{LinfKappa, LinfKappaParams};
use crate::lp_baseline::{BaselineParams, LpBaseline};
use crate::lp_norm::{LpNorm, LpParams};
use crate::result::{
    HeavyHitters, L1Sample, LinfEstimate, MatrixSample, ProductShares, ProtocolRun,
};
use crate::session::{run_on, Parties, PartyView, Session};
use crate::trivial::{ExactStats, TrivialBinary, TrivialCsr};
use crate::{exact_l1::ExactL1, sparse_matmul::SparseMatmul};
use mpest_comm::remote::{FrameIo, RemoteCtx};
use mpest_comm::{CommError, Exec, ExecBackend, Party, Seed, Transcript};
use mpest_matrix::PNorm;

/// A protocol invocation as plain data (dynamic-dispatch counterpart of
/// the typed [`Protocol`](crate::Protocol) interface). Requests use the
/// default [`Constants`](crate::Constants); use the typed interface for
/// custom constants.
#[derive(Debug, Clone, PartialEq)]
pub enum EstimateRequest {
    /// Algorithm 1: `(1±ε)·‖AB‖_p^p`, `p ∈ [0, 2]`.
    LpNorm {
        /// Which norm.
        p: PNorm,
        /// Multiplicative accuracy.
        eps: f64,
    },
    /// One-round \[16\]-style baseline for the same statistic.
    LpBaseline {
        /// Which norm.
        p: PNorm,
        /// Multiplicative accuracy.
        eps: f64,
    },
    /// Remark 2: exact `‖AB‖₁` (non-negative matrices).
    ExactL1,
    /// Remark 3: an `ℓ1`-sample with its join witness.
    L1Sample,
    /// Theorem 3.2: a `(1±ε)`-uniform support sample.
    L0Sample {
        /// Marginal accuracy of the column-size estimates.
        eps: f64,
    },
    /// Lemma 2.5: additive shares of `A·B`.
    SparseMatmul,
    /// Algorithm 2: `(2+ε)`-approximate `‖AB‖∞`, binary.
    LinfBinary {
        /// Approximation slack.
        eps: f64,
    },
    /// Algorithm 3: `κ`-approximate `‖AB‖∞`, binary.
    LinfKappa {
        /// Approximation factor.
        kappa: f64,
    },
    /// Theorem 4.8(1): `κ`-approximate `‖AB‖∞`, integer.
    LinfGeneral {
        /// Approximation factor.
        kappa: usize,
    },
    /// Algorithm 4: `(φ, ε)`-heavy hitters, non-negative integer.
    HhGeneral {
        /// Norm exponent `p ∈ (0, 2]`.
        p: f64,
        /// Heavy-hitter threshold.
        phi: f64,
        /// Tolerance (`0 < ε ≤ φ`).
        eps: f64,
    },
    /// Theorem 5.3: `(φ, ε)`-heavy hitters, binary.
    HhBinary {
        /// Norm exponent `p ∈ (0, 2]`.
        p: f64,
        /// Heavy-hitter threshold.
        phi: f64,
        /// Tolerance (`0 < ε ≤ φ`).
        eps: f64,
    },
    /// All pairs with `|A_i ∩ B_j| ≥ T` (binary).
    AtLeastTJoin {
        /// Overlap threshold.
        t: u32,
        /// Tolerance band fraction.
        slack: f64,
    },
    /// Trivial baseline: ship `A` as a bitmap, compute exactly.
    TrivialBinary,
    /// Trivial baseline: ship `A` as sparse rows, compute exactly.
    TrivialCsr,
}

impl EstimateRequest {
    /// One representative invocation of every protocol — all 14 entry
    /// points with moderate parameters. The single source the
    /// equivalence suites (`tests/batch_equivalence.rs`,
    /// `tests/executor_equivalence.rs`) and the executor trajectory
    /// bench sweep, so a new protocol is added to full coverage in one
    /// place.
    #[must_use]
    pub fn catalog() -> Vec<EstimateRequest> {
        vec![
            EstimateRequest::LpNorm {
                p: PNorm::Zero,
                eps: 0.3,
            },
            EstimateRequest::LpBaseline {
                p: PNorm::ONE,
                eps: 0.4,
            },
            EstimateRequest::ExactL1,
            EstimateRequest::L1Sample,
            EstimateRequest::L0Sample { eps: 0.3 },
            EstimateRequest::SparseMatmul,
            EstimateRequest::LinfBinary { eps: 0.3 },
            EstimateRequest::LinfKappa { kappa: 4.0 },
            EstimateRequest::LinfGeneral { kappa: 4 },
            EstimateRequest::HhGeneral {
                p: 1.0,
                phi: 0.05,
                eps: 0.02,
            },
            EstimateRequest::HhBinary {
                p: 1.0,
                phi: 0.05,
                eps: 0.02,
            },
            EstimateRequest::AtLeastTJoin { t: 2, slack: 0.5 },
            EstimateRequest::TrivialBinary,
            EstimateRequest::TrivialCsr,
        ]
    }

    /// Which party's function *produces* the protocol's output.
    ///
    /// Pure metadata about where the answer physically materializes
    /// in-protocol: `lp-baseline` decodes at Alice, `sparse-matmul`
    /// yields one additive share per party, everything else lands at
    /// Bob. Callers never have to care — every executor (including the
    /// remote one, via its post-protocol output exchange) returns the
    /// complete result — but deployments placing the output near its
    /// consumer, and cost analyses of that final hop, read it here.
    #[must_use]
    pub fn output_party(&self) -> OutputParty {
        match self {
            Self::LpBaseline { .. } => OutputParty::Alice,
            Self::SparseMatmul => OutputParty::Both,
            _ => OutputParty::Bob,
        }
    }

    /// The protocol's stable kebab-case name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::LpNorm { .. } => "lp",
            Self::LpBaseline { .. } => "lp-baseline",
            Self::ExactL1 => "exact-l1",
            Self::L1Sample => "l1-sample",
            Self::L0Sample { .. } => "l0-sample",
            Self::SparseMatmul => "sparse-matmul",
            Self::LinfBinary { .. } => "linf-binary",
            Self::LinfKappa { .. } => "linf-kappa",
            Self::LinfGeneral { .. } => "linf-general",
            Self::HhGeneral { .. } => "hh-general",
            Self::HhBinary { .. } => "hh-binary",
            Self::AtLeastTJoin { .. } => "at-least-t-join",
            Self::TrivialBinary => "trivial-binary",
            Self::TrivialCsr => "trivial-csr",
        }
    }
}

/// Where a protocol's output lands (see
/// [`EstimateRequest::output_party`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputParty {
    /// The output is produced at Alice.
    Alice,
    /// The output is produced at Bob.
    Bob,
    /// Each party produces its own half (additive shares).
    Both,
}

impl OutputParty {
    /// Whether the process playing `side` holds (part of) the output.
    #[must_use]
    pub fn includes(self, side: Party) -> bool {
        match self {
            OutputParty::Alice => side == Party::Alice,
            OutputParty::Bob => side == Party::Bob,
            OutputParty::Both => true,
        }
    }
}

/// Type-erased protocol output (one variant per output shape).
#[derive(Debug, Clone, PartialEq)]
pub enum AnyOutput {
    /// An `f64` estimate (`lp`, `lp-baseline`, `linf-general`).
    Scalar(f64),
    /// An exact integer count (`exact-l1`).
    Count(i128),
    /// A support sample (`l0-sample`).
    Sample(MatrixSample),
    /// An `ℓ1`-sample with witness (`l1-sample`); `None` iff `‖AB‖₁ = 0`.
    L1Sample(Option<L1Sample>),
    /// An `ℓ∞` estimate with diagnostics (`linf-binary`, `linf-kappa`).
    Linf(LinfEstimate),
    /// A heavy-hitter set (`hh-*`, `at-least-t-join`).
    HeavyHitters(HeavyHitters),
    /// Additive product shares (`sparse-matmul`).
    Shares(ProductShares),
    /// Exact statistics from a trivial transfer (`trivial-*`).
    Exact(ExactStats),
}

impl AnyOutput {
    /// The output as a scalar estimate, when it has a natural one.
    #[must_use]
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            Self::Scalar(v) => Some(*v),
            Self::Count(v) => Some(*v as f64),
            Self::Linf(e) => Some(e.estimate),
            _ => None,
        }
    }

    /// The heavy-hitter set, if this output carries one.
    #[must_use]
    pub fn as_heavy_hitters(&self) -> Option<&HeavyHitters> {
        match self {
            Self::HeavyHitters(hh) => Some(hh),
            _ => None,
        }
    }
}

/// The uniform result of a dynamically dispatched query: which protocol
/// ran, its type-erased output, and the full bit-exact transcript.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateReport {
    /// Name of the protocol that ran (see [`EstimateRequest::name`]).
    pub protocol: &'static str,
    /// The protocol's output.
    pub output: AnyOutput,
    /// Everything that crossed the wire.
    pub transcript: Transcript,
}

impl EstimateReport {
    /// Total bits exchanged.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.transcript.total_bits()
    }

    /// Rounds used.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.transcript.rounds()
    }
}

fn report<T>(
    protocol: &'static str,
    run: ProtocolRun<T>,
    wrap: impl FnOnce(T) -> AnyOutput,
) -> EstimateReport {
    EstimateReport {
        protocol,
        output: wrap(run.output),
        transcript: run.transcript,
    }
}

impl Session {
    /// Executes a dynamically dispatched request under the next derived
    /// per-query seed.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::run`].
    pub fn estimate(&self, request: &EstimateRequest) -> Result<EstimateReport, CommError> {
        self.estimate_seeded(request, self.next_query_seed())
    }

    /// Executes a dynamically dispatched request under an explicit seed.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::run`].
    pub fn estimate_seeded(
        &self,
        request: &EstimateRequest,
        seed: Seed,
    ) -> Result<EstimateReport, CommError> {
        self.estimate_seeded_on(request, seed, self.executor())
    }

    /// Executes a dynamically dispatched request under an explicit seed
    /// *and* executor backend, overriding the session default for this
    /// query only. Outputs and transcripts are independent of the
    /// backend; only wall-clock differs.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::run`].
    pub fn estimate_seeded_on(
        &self,
        request: &EstimateRequest,
        seed: Seed,
        exec: ExecBackend,
    ) -> Result<EstimateReport, CommError> {
        self.estimate_with_exec(request, seed, Exec::Backend(exec))
    }

    /// Executes a dynamically dispatched request as **one party of a
    /// remote pair**: this process runs `side` only, and every message
    /// crosses the framed transport `io` to the peer process, which must
    /// call the same method for the complementary side with the same
    /// request and seed. The report is bit-identical to the in-process
    /// executors' on **both** processes — transcripts are reconstructed
    /// from frame headers, and the remote executor's post-protocol
    /// output exchange ships each party's output to its peer (outputs
    /// are `Wire` data; the exchange is billed to the transport's byte
    /// counters, never to the logical transcript).
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::run`], plus transport-level
    /// [`CommError::Frame`] errors.
    pub fn estimate_remote(
        &self,
        request: &EstimateRequest,
        seed: Seed,
        side: Party,
        io: &mut dyn FrameIo,
    ) -> Result<EstimateReport, CommError> {
        let rc = RemoteCtx::new(side, io);
        self.estimate_with_exec(request, seed, Exec::Remote(&rc))
    }

    /// The one dispatch point behind [`Session::estimate_seeded_on`] and
    /// [`Session::estimate_remote`].
    fn estimate_with_exec<'r>(
        &'r self,
        request: &EstimateRequest,
        seed: Seed,
        exec: Exec<'r>,
    ) -> Result<EstimateReport, CommError> {
        estimate_on(Parties::Both(self), request, seed, exec)
    }
}

impl PartyView {
    /// Executes a dynamically dispatched request as this view's role
    /// against a remote peer behind `io` — the storage-split counterpart
    /// of [`Session::estimate_remote`]. This process holds only its own
    /// half; the peer process must call the same method for the
    /// complementary role with the same request and seed. Reports are
    /// bit-identical to an in-process [`Session`] run over the assembled
    /// pair, on **both** processes.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::estimate_remote`].
    pub fn estimate_remote(
        &self,
        request: &EstimateRequest,
        seed: Seed,
        io: &mut dyn FrameIo,
    ) -> Result<EstimateReport, CommError> {
        let rc = RemoteCtx::new(self.role(), io);
        estimate_on(Parties::One(self), request, seed, Exec::Remote(&rc))
    }
}

/// The one request → protocol dispatch table, shared by the full-pair
/// ([`Session`]) and storage-split ([`PartyView`]) entry points.
fn estimate_on<'r>(
    parties: Parties<'r>,
    request: &EstimateRequest,
    seed: Seed,
    exec: Exec<'r>,
) -> Result<EstimateReport, CommError> {
    let name = request.name();
    Ok(match *request {
        EstimateRequest::LpNorm { p, eps } => report(
            name,
            run_on(parties, &LpNorm, &LpParams::new(p, eps), seed, exec)?,
            AnyOutput::Scalar,
        ),
        EstimateRequest::LpBaseline { p, eps } => report(
            name,
            run_on(
                parties,
                &LpBaseline,
                &BaselineParams::new(p, eps),
                seed,
                exec,
            )?,
            AnyOutput::Scalar,
        ),
        EstimateRequest::ExactL1 => report(
            name,
            run_on(parties, &ExactL1, &(), seed, exec)?,
            AnyOutput::Count,
        ),
        EstimateRequest::L1Sample => report(
            name,
            run_on(parties, &L1Sampling, &(), seed, exec)?,
            AnyOutput::L1Sample,
        ),
        EstimateRequest::L0Sample { eps } => report(
            name,
            run_on(parties, &L0Sample, &L0SampleParams::new(eps), seed, exec)?,
            AnyOutput::Sample,
        ),
        EstimateRequest::SparseMatmul => report(
            name,
            run_on(parties, &SparseMatmul, &(), seed, exec)?,
            AnyOutput::Shares,
        ),
        EstimateRequest::LinfBinary { eps } => report(
            name,
            run_on(
                parties,
                &LinfBinary,
                &LinfBinaryParams::new(eps),
                seed,
                exec,
            )?,
            AnyOutput::Linf,
        ),
        EstimateRequest::LinfKappa { kappa } => report(
            name,
            run_on(
                parties,
                &LinfKappa,
                &LinfKappaParams::new(kappa),
                seed,
                exec,
            )?,
            AnyOutput::Linf,
        ),
        EstimateRequest::LinfGeneral { kappa } => report(
            name,
            run_on(
                parties,
                &LinfGeneral,
                &LinfGeneralParams::new(kappa),
                seed,
                exec,
            )?,
            AnyOutput::Scalar,
        ),
        EstimateRequest::HhGeneral { p, phi, eps } => report(
            name,
            run_on(
                parties,
                &HhGeneral,
                &HhGeneralParams::new(p, phi, eps),
                seed,
                exec,
            )?,
            AnyOutput::HeavyHitters,
        ),
        EstimateRequest::HhBinary { p, phi, eps } => report(
            name,
            run_on(
                parties,
                &HhBinary,
                &HhBinaryParams::new(p, phi, eps),
                seed,
                exec,
            )?,
            AnyOutput::HeavyHitters,
        ),
        EstimateRequest::AtLeastTJoin { t, slack } => report(
            name,
            run_on(
                parties,
                &AtLeastTJoin,
                &AtLeastTParams { t, slack },
                seed,
                exec,
            )?,
            AnyOutput::HeavyHitters,
        ),
        EstimateRequest::TrivialBinary => report(
            name,
            run_on(parties, &TrivialBinary, &(), seed, exec)?,
            AnyOutput::Exact,
        ),
        EstimateRequest::TrivialCsr => report(
            name,
            run_on(parties, &TrivialCsr, &(), seed, exec)?,
            AnyOutput::Exact,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::Workloads;

    fn session() -> Session {
        let a = Workloads::bernoulli_bits(20, 28, 0.3, 1);
        let b = Workloads::bernoulli_bits(28, 20, 0.3, 2);
        Session::builder(a, b).seed(Seed(11)).build()
    }

    #[test]
    fn every_request_variant_executes() {
        let s = session();
        let requests = [
            EstimateRequest::LpNorm {
                p: PNorm::Zero,
                eps: 0.3,
            },
            EstimateRequest::LpBaseline {
                p: PNorm::ONE,
                eps: 0.4,
            },
            EstimateRequest::ExactL1,
            EstimateRequest::L1Sample,
            EstimateRequest::L0Sample { eps: 0.3 },
            EstimateRequest::SparseMatmul,
            EstimateRequest::LinfBinary { eps: 0.3 },
            EstimateRequest::LinfKappa { kappa: 4.0 },
            EstimateRequest::LinfGeneral { kappa: 4 },
            EstimateRequest::HhGeneral {
                p: 1.0,
                phi: 0.05,
                eps: 0.02,
            },
            EstimateRequest::HhBinary {
                p: 1.0,
                phi: 0.05,
                eps: 0.02,
            },
            EstimateRequest::AtLeastTJoin { t: 2, slack: 0.5 },
            EstimateRequest::TrivialBinary,
            EstimateRequest::TrivialCsr,
        ];
        for req in &requests {
            let rep = s
                .estimate(req)
                .unwrap_or_else(|e| panic!("{} failed: {e}", req.name()));
            assert_eq!(rep.protocol, req.name());
            assert!(rep.rounds() >= 1, "{} reported no rounds", req.name());
            assert!(rep.bits() > 0, "{} reported no bits", req.name());
        }
        assert_eq!(s.queries_issued(), requests.len() as u64);
    }

    #[test]
    fn estimate_seeded_is_reproducible() {
        let s = session();
        let req = EstimateRequest::LpNorm {
            p: PNorm::ONE,
            eps: 0.25,
        };
        let r1 = s.estimate_seeded(&req, Seed(5)).unwrap();
        let r2 = s.estimate_seeded(&req, Seed(5)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(
            s.queries_issued(),
            0,
            "explicit seeds consume no derived seed"
        );
    }

    #[test]
    fn scalar_accessor_covers_scalar_shapes() {
        let s = session();
        let rep = s
            .estimate_seeded(&EstimateRequest::ExactL1, Seed(1))
            .unwrap();
        assert!(rep.output.as_scalar().unwrap() > 0.0);
        let rep = s
            .estimate_seeded(&EstimateRequest::SparseMatmul, Seed(1))
            .unwrap();
        assert!(rep.output.as_scalar().is_none());
        assert!(rep.output.as_heavy_hitters().is_none());
    }
}
