//! Parallel batched query execution over a shared [`Session`].
//!
//! A [`Session`] answers one query at a time; real deployments face a
//! *stream* of heterogeneous queries against the same matrix pair. The
//! [`Engine`] accepts a whole `Vec<EstimateRequest>` and executes it
//! across a worker pool, sharing the session's cached derived views
//! (CSR/bit conversions, transposes, norm and support tables) across
//! threads through an [`Arc`] instead of recomputing them per worker.
//!
//! Determinism is the load-bearing contract: query `i` of a batch runs
//! under `session.query_seed(first + i)`, exactly the seed it would have
//! drawn as the `(first + i)`-th sequential query, and every derived
//! view is a pure function of the pair. A batch run is therefore
//! **bit-identical** — outputs and transcripts — to the equivalent
//! sequence of [`Session::run_seeded`] calls, for any worker count.
//!
//! ```
//! use mpest_core::{BatchPlan, Engine, EstimateRequest, Session};
//! use mpest_comm::Seed;
//! use mpest_matrix::{PNorm, Workloads};
//!
//! let a = Workloads::bernoulli_bits(24, 32, 0.3, 1);
//! let b = Workloads::bernoulli_bits(32, 24, 0.3, 2);
//! let engine = Engine::new(Session::builder(a, b).seed(Seed(7)).build());
//! let requests = vec![
//!     EstimateRequest::LpNorm { p: PNorm::Zero, eps: 0.3 },
//!     EstimateRequest::ExactL1,
//!     EstimateRequest::LinfBinary { eps: 0.3 },
//! ];
//! let batch = engine
//!     .run_batch(&requests, &BatchPlan::default().with_workers(2))
//!     .unwrap();
//! assert_eq!(batch.reports.len(), 3);
//! assert_eq!(batch.accounting.queries, 3);
//! assert!(batch.accounting.total_bits > 0);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::request::{EstimateReport, EstimateRequest};
use crate::session::Session;
use mpest_comm::{BatchAccounting, CommError, ExecBackend, Seed};

/// Where a batch's per-query seeds come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SeedSchedule {
    /// Reserve the next contiguous block of the session's query counter
    /// (the default): the batch is interchangeable with issuing the same
    /// requests through [`Session::estimate`] one by one.
    #[default]
    SessionCounter,
    /// Run at a fixed first query index without consuming the counter —
    /// replays and equivalence tests.
    AtIndex(u64),
}

/// Execution plan for one batch: worker count, seed derivation, and
/// whether to deduplicate shared derived-view construction up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPlan {
    /// Worker threads to fan out over; `0` means one per available core.
    /// Clamped to the batch size. The results never depend on it.
    pub workers: usize,
    /// Materialize every derived view the batch's protocols will read
    /// *before* spawning workers (default `true`). The views live in
    /// `OnceLock`s, so correctness never depends on this — prewarming
    /// only prevents the whole pool from convoying on the first query's
    /// one-time conversions.
    pub prewarm: bool,
    /// Per-query seed derivation (see [`SeedSchedule`]).
    pub seeds: SeedSchedule,
    /// Executor backend queries run on: `None` (the default) inherits
    /// the session's choice — [`ExecBackend::Fused`] unless the session
    /// was built otherwise — so engine workers pay zero spawn cost *per
    /// query* while still parallelizing *across* queries. Results never
    /// depend on it.
    pub executor: Option<ExecBackend>,
}

impl Default for BatchPlan {
    fn default() -> Self {
        Self {
            workers: 0,
            prewarm: true,
            seeds: SeedSchedule::SessionCounter,
            executor: None,
        }
    }
}

impl BatchPlan {
    /// Sets the worker count (`0` = one per available core).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables derived-view prewarming.
    #[must_use]
    pub fn with_prewarm(mut self, prewarm: bool) -> Self {
        self.prewarm = prewarm;
        self
    }

    /// Pins the batch to query indices `[first, first + len)` without
    /// consuming the session counter.
    #[must_use]
    pub fn at_index(mut self, first: u64) -> Self {
        self.seeds = SeedSchedule::AtIndex(first);
        self
    }

    /// Overrides the executor backend for this batch (the default
    /// inherits the session's).
    #[must_use]
    pub fn with_executor(mut self, exec: ExecBackend) -> Self {
        self.executor = Some(exec);
        self
    }

    /// The backend this plan's queries run on over `session`.
    #[must_use]
    pub fn effective_executor(&self, session: &Session) -> ExecBackend {
        self.executor.unwrap_or_else(|| session.executor())
    }

    /// The worker count a batch of `batch_len` requests actually runs
    /// with: `workers` (or one per available core when `0`), clamped to
    /// the batch size and at least 1.
    #[must_use]
    pub fn effective_workers(&self, batch_len: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        requested.clamp(1, batch_len.max(1))
    }
}

/// The ordered result of a batch: one [`EstimateReport`] per request
/// (same order), plus aggregate communication accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-request reports, in request order.
    pub reports: Vec<EstimateReport>,
    /// The query index the batch started at: request `i` ran under
    /// `session.query_seed(first_query_index + i)`.
    pub first_query_index: u64,
    /// Bits/rounds/messages folded across the whole batch.
    pub accounting: BatchAccounting,
}

/// A parallel batched query engine over one shared [`Session`].
///
/// Use a bare `Session` for interactive, one-at-a-time querying; wrap it
/// in an `Engine` when requests arrive in batches and throughput
/// matters. The engine adds no randomness and no state of its own — it
/// is a scheduler around the session's deterministic seed schedule.
#[derive(Debug, Clone)]
pub struct Engine {
    session: Arc<Session>,
}

impl Engine {
    /// Wraps a session for batched execution.
    #[must_use]
    pub fn new(session: Session) -> Self {
        Self {
            session: Arc::new(session),
        }
    }

    /// Builds an engine over an already-shared session.
    #[must_use]
    pub fn from_arc(session: Arc<Session>) -> Self {
        Self { session }
    }

    /// The underlying session.
    #[must_use]
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Applies an [`UpdateBatch`](crate::UpdateBatch) to the engine's
    /// session in place, returning the new epoch. Requires exclusive
    /// ownership of the session: callers (the serve cache, the CLI)
    /// must quiesce in-flight queries before updating.
    ///
    /// # Errors
    ///
    /// Fails with a typed error if the session `Arc` is shared (another
    /// engine clone or external handle is outstanding), or surfaces the
    /// batch's own validation errors.
    pub fn apply_update(&mut self, batch: &crate::UpdateBatch) -> Result<u64, CommError> {
        let session = Arc::get_mut(&mut self.session).ok_or_else(|| {
            CommError::protocol(
                "cannot update a shared session: outstanding handles must be dropped first",
            )
        })?;
        session.apply_update(batch)
    }

    /// Executes `requests` across the plan's worker pool and returns the
    /// reports in request order with aggregate accounting.
    ///
    /// Bit-identical to running the same requests sequentially through
    /// [`Session::estimate_seeded`] under seeds
    /// `query_seed(first + i)`, regardless of worker count.
    ///
    /// # Errors
    ///
    /// If any request fails, returns the error of the *lowest-index*
    /// failing request — the same error the sequential run would have
    /// hit first — so error reporting is deterministic too.
    pub fn run_batch(
        &self,
        requests: &[EstimateRequest],
        plan: &BatchPlan,
    ) -> Result<BatchReport, CommError> {
        let n = requests.len();
        let first = match plan.seeds {
            SeedSchedule::SessionCounter => self.session.reserve_query_indices(n as u64),
            SeedSchedule::AtIndex(i) => i,
        };
        if plan.prewarm {
            let pairs: Vec<(Seed, &EstimateRequest)> = requests
                .iter()
                .enumerate()
                .map(|(i, req)| (self.session.query_seed(first + i as u64), req))
                .collect();
            prewarm(&self.session, &pairs);
        }
        let workers = plan.effective_workers(n);
        let exec = plan.effective_executor(&self.session);
        let results = if workers <= 1 {
            requests
                .iter()
                .enumerate()
                .map(|(i, req)| {
                    self.session.estimate_seeded_on(
                        req,
                        self.session.query_seed(first + i as u64),
                        exec,
                    )
                })
                .collect()
        } else {
            run_pool(
                &self.session,
                requests.len(),
                |i| (self.session.query_seed(first + i as u64), &requests[i]),
                workers,
                exec,
            )
        };

        let mut reports = Vec::with_capacity(n);
        let mut accounting = BatchAccounting::new();
        for result in results {
            let report = result?;
            accounting.absorb(&report.transcript);
            reports.push(report);
        }
        Ok(BatchReport {
            reports,
            first_query_index: first,
            accounting,
        })
    }

    /// Executes `(seed, request)` pairs across a worker pool, each query
    /// under its *explicit* seed — the serving path, where clients pin
    /// seeds so a cached session answers reproducibly no matter which
    /// queries other clients interleave. Consumes no session counter.
    ///
    /// Bit-identical to calling [`Session::estimate_seeded`] for each
    /// pair in order, for any worker count; on failure returns the
    /// lowest-index error, like [`Engine::run_batch`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run_batch`].
    pub fn run_seeded_queries(
        &self,
        queries: &[(Seed, EstimateRequest)],
        workers: usize,
    ) -> Result<(Vec<EstimateReport>, BatchAccounting), CommError> {
        let pairs: Vec<(Seed, &EstimateRequest)> =
            queries.iter().map(|(seed, req)| (*seed, req)).collect();
        prewarm(&self.session, &pairs);
        let workers = BatchPlan::default()
            .with_workers(workers)
            .effective_workers(queries.len());
        let exec = self.session.executor();
        let results = if workers <= 1 {
            queries
                .iter()
                .map(|(seed, req)| self.session.estimate_seeded_on(req, *seed, exec))
                .collect()
        } else {
            run_pool(
                &self.session,
                queries.len(),
                |i| (queries[i].0, &queries[i].1),
                workers,
                exec,
            )
        };
        let mut reports = Vec::with_capacity(queries.len());
        let mut accounting = BatchAccounting::new();
        for result in results {
            let report = result?;
            accounting.absorb(&report.transcript);
            reports.push(report);
        }
        Ok((reports, accounting))
    }
}

/// Fans `count` queries out over `workers` threads. Workers claim
/// indices from a shared counter (dynamic load balancing — queries vary
/// wildly in cost), run `query_at(i)` — the index's `(seed, request)`
/// per the caller's schedule — and stream `(index, result)` pairs back
/// over a channel; the collector reorders them into request order.
fn run_pool<'q>(
    session: &Session,
    count: usize,
    query_at: impl Fn(usize) -> (Seed, &'q EstimateRequest) + Sync,
    workers: usize,
    exec: ExecBackend,
) -> Vec<Result<EstimateReport, CommError>> {
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded();
    let query_at = &query_at;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let (seed, request) = query_at(i);
                let result = session.estimate_seeded_on(request, seed, exec);
                if tx.send((i, result)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<Result<EstimateReport, CommError>>> =
            (0..count).map(|_| None).collect();
        while let Ok((i, result)) = rx.recv() {
            slots[i] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every claimed index reports back"))
            .collect()
    })
}

/// Materializes every session-cached view the batch's protocols read, so
/// concurrent workers never convoy on a one-time conversion, then builds
/// the batch's row sketches in fused multi-seed matrix passes (see
/// [`prewarm_sketches`]). Purely an ordering optimization: the views and
/// sketches are pure functions of the pair and the per-query seeds, and
/// a failed bit-view (non-binary pair) is ignored here so the affected
/// requests fail with exactly the error the sequential run reports.
fn prewarm(session: &Session, queries: &[(Seed, &EstimateRequest)]) {
    use EstimateRequest as R;
    let (mut bits, mut csr, mut a_t, mut b_t, mut abs, mut nnz) =
        (false, false, false, false, false, false);
    for (_, request) in queries {
        match request {
            R::LpNorm { .. } | R::LpBaseline { .. } | R::HhGeneral { .. } | R::TrivialCsr => {
                csr = true;
            }
            R::ExactL1 => {
                csr = true;
                abs = true;
            }
            R::L1Sample => {
                csr = true;
                a_t = true;
                abs = true;
            }
            R::L0Sample { .. } | R::LinfGeneral { .. } => {
                csr = true;
                a_t = true;
                b_t = true;
            }
            R::SparseMatmul => {
                csr = true;
                a_t = true;
                nnz = true;
            }
            R::LinfBinary { .. } | R::LinfKappa { .. } | R::TrivialBinary => bits = true,
            R::HhBinary { .. } | R::AtLeastTJoin { .. } => {
                bits = true;
                csr = true;
                abs = true;
            }
        }
    }
    let ctx = session.ctx(Seed(0));
    if bits {
        let _ = ctx.bit_halves();
    }
    if csr {
        let _ = ctx.csr_halves();
    }
    if a_t {
        let _ = ctx.a_transpose();
    }
    if b_t {
        let _ = ctx.b_transpose();
    }
    if abs {
        let _ = ctx.a_col_abs_sums();
        let _ = ctx.b_row_abs_sums();
    }
    if nnz {
        let _ = ctx.a_col_nnz();
        let _ = ctx.b_row_nnz();
    }
    prewarm_sketches(&ctx, queries);
}

/// Builds every distinct row sketch the batch's `lp`, `lp-baseline`,
/// `l0-sample`, and `linf-general` queries will ship, grouping same-kind
/// jobs into **fused multi-seed matrix passes**
/// ([`NormSketch::sketch_rows_multi`] over the rows of `B`,
/// [`mpest_sketch::sketch_rows_multi`] over the rows of `Aᵀ`) and
/// inserting the results into the session's sketch cache, where the
/// in-phase lookups hit. An `N`-seed batch therefore pays each matrix
/// walk once instead of `N` times.
///
/// Skips singleton jobs (the phase builds them at no extra cost),
/// already-cached keys, and requests whose parameters the protocol will
/// reject — those must surface their error in-phase, not panic here.
/// Inert in reference mode so the scalar path stays the one measured.
fn prewarm_sketches(ctx: &crate::SessionCtx<'_>, queries: &[(Seed, &EstimateRequest)]) {
    use crate::config::check_eps;
    use crate::sketchcache::SketchKey;
    use crate::{l0_sample, linf_general, lp_baseline, lp_norm};
    use mpest_sketch::{BlockAmsSketch, L0Sampler, L0Sketch, NormSketch, SkMat};
    use EstimateRequest as R;

    if mpest_sketch::kernel::reference_mode() {
        return;
    }
    let cache = ctx.sketch_cache();
    let dims = ctx.dims();
    let mut seen = std::collections::HashSet::<SketchKey>::new();
    let mut b_rows: Vec<(SketchKey, NormSketch)> = Vec::new();
    let mut l0_norms: Vec<(SketchKey, L0Sketch)> = Vec::new();
    let mut l0_samplers: Vec<(SketchKey, L0Sampler)> = Vec::new();
    let mut block_ams: Vec<(SketchKey, BlockAmsSketch)> = Vec::new();
    for &(seed, request) in queries {
        let pub_seed = seed.derive("public");
        match request {
            R::LpNorm { p, eps } => {
                let params = lp_norm::LpParams::new(*p, *eps);
                if params.validate().is_err() {
                    continue;
                }
                let dim = dims.b_cols.max(1);
                let key = params.cache_key(dim, pub_seed);
                if seen.insert(key) && !cache.contains(key) {
                    b_rows.push((key, params.sketch(dim, pub_seed)));
                }
            }
            R::LpBaseline { p, eps } => {
                let params = lp_baseline::BaselineParams::new(*p, *eps);
                if check_eps(*eps).is_err() || !p.supported_by_lp_protocol() {
                    continue;
                }
                let key = lp_baseline::cache_key(&params, dims.b_cols, pub_seed);
                if seen.insert(key) && !cache.contains(key) {
                    b_rows.push((
                        key,
                        lp_baseline::make_sketch(&params, dims.b_cols, pub_seed),
                    ));
                }
            }
            R::L0Sample { eps } => {
                let params = l0_sample::L0SampleParams::new(*eps);
                if check_eps(*eps).is_err() {
                    continue;
                }
                let nk = l0_sample::norm_key(&params, dims.a_rows, pub_seed);
                if seen.insert(nk) && !cache.contains(nk) {
                    l0_norms.push((
                        nk,
                        l0_sample::norm_sketch_for(&params, dims.a_rows, pub_seed),
                    ));
                }
                let sk = l0_sample::sampler_key(&params, dims.a_rows, pub_seed);
                if seen.insert(sk) && !cache.contains(sk) {
                    l0_samplers.push((sk, l0_sample::sampler_for(&params, dims.a_rows, pub_seed)));
                }
            }
            R::LinfGeneral { kappa } => {
                let params = linf_general::LinfGeneralParams::new(*kappa);
                if params.kappa == 0 {
                    continue;
                }
                let key = linf_general::cache_key(&params, dims.a_rows, pub_seed);
                if seen.insert(key) && !cache.contains(key) {
                    block_ams.push((
                        key,
                        linf_general::sketch_for(&params, dims.a_rows, pub_seed),
                    ));
                }
            }
            _ => {}
        }
    }
    // Observability: group sizes >= 2 take the fused kernel pass,
    // singletons are left to the in-phase scalar-cost build. Recorded
    // before the builds so the split is visible even if a build path
    // bails on a missing view.
    for list_len in [
        b_rows.len(),
        l0_norms.len(),
        l0_samplers.len(),
        block_ams.len(),
    ] {
        match list_len {
            0 => {}
            1 => cache.record_prewarm(false, 1),
            n => cache.record_prewarm(true, n),
        }
    }
    if b_rows.len() >= 2 {
        if let (_, Some(b)) = ctx.csr_halves() {
            let sketches: Vec<NormSketch> = b_rows.iter().map(|(_, s)| s.clone()).collect();
            for ((key, _), mat) in b_rows
                .iter()
                .zip(NormSketch::sketch_rows_multi(&sketches, b))
            {
                cache.insert_norm(*key, mat);
            }
        }
    }
    if let Some(at) = ctx.a_transpose() {
        if l0_norms.len() >= 2 {
            let kernels: Vec<&L0Sketch> = l0_norms.iter().map(|(_, s)| s).collect();
            for ((key, _), mat) in l0_norms
                .iter()
                .zip(mpest_sketch::sketch_rows_multi(&kernels, at))
            {
                cache.insert_field(*key, mat);
            }
        }
        if l0_samplers.len() >= 2 {
            let kernels: Vec<&L0Sampler> = l0_samplers.iter().map(|(_, s)| s).collect();
            for ((key, _), mat) in l0_samplers
                .iter()
                .zip(mpest_sketch::sketch_rows_multi(&kernels, at))
            {
                cache.insert_field(*key, mat);
            }
        }
        if block_ams.len() >= 2 {
            let kernels: Vec<&BlockAmsSketch> = block_ams.iter().map(|(_, s)| s).collect();
            for ((key, _), mat) in block_ams
                .iter()
                .zip(mpest_sketch::sketch_rows_multi(&kernels, at))
            {
                cache.insert_norm(*key, SkMat::Real(mat));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{PNorm, Workloads};

    fn engine() -> Engine {
        let a = Workloads::bernoulli_bits(20, 28, 0.3, 1);
        let b = Workloads::bernoulli_bits(28, 20, 0.3, 2);
        Engine::new(Session::builder(a, b).seed(Seed(11)).build())
    }

    fn mixed_requests() -> Vec<EstimateRequest> {
        vec![
            EstimateRequest::LpNorm {
                p: PNorm::Zero,
                eps: 0.3,
            },
            EstimateRequest::ExactL1,
            EstimateRequest::LinfBinary { eps: 0.3 },
            EstimateRequest::HhBinary {
                p: 1.0,
                phi: 0.05,
                eps: 0.02,
            },
            EstimateRequest::SparseMatmul,
            EstimateRequest::L0Sample { eps: 0.3 },
        ]
    }

    #[test]
    fn batch_consumes_the_session_counter_like_sequential_queries() {
        let engine = engine();
        let requests = mixed_requests();
        let batch = engine
            .run_batch(&requests, &BatchPlan::default().with_workers(3))
            .unwrap();
        assert_eq!(batch.first_query_index, 0);
        assert_eq!(engine.session().queries_issued(), requests.len() as u64);
        // A follow-up single query continues the schedule.
        let next = engine
            .session()
            .estimate(&EstimateRequest::ExactL1)
            .unwrap();
        assert_eq!(engine.session().queries_issued(), requests.len() as u64 + 1);
        let replay = engine
            .session()
            .estimate_seeded(
                &EstimateRequest::ExactL1,
                engine.session().query_seed(requests.len() as u64),
            )
            .unwrap();
        assert_eq!(next, replay);
    }

    #[test]
    fn at_index_replays_without_consuming() {
        let engine = engine();
        let requests = mixed_requests();
        let plan = BatchPlan::default().with_workers(2).at_index(5);
        let b1 = engine.run_batch(&requests, &plan).unwrap();
        let b2 = engine.run_batch(&requests, &plan).unwrap();
        assert_eq!(b1, b2, "pinned batches replay bit-identically");
        assert_eq!(b1.first_query_index, 5);
        assert_eq!(engine.session().queries_issued(), 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let engine = engine();
        let batch = engine.run_batch(&[], &BatchPlan::default()).unwrap();
        assert!(batch.reports.is_empty());
        assert_eq!(batch.accounting, BatchAccounting::new());
        assert_eq!(engine.session().queries_issued(), 0);
    }

    #[test]
    fn accounting_matches_per_report_totals() {
        let engine = engine();
        let requests = mixed_requests();
        let batch = engine
            .run_batch(&requests, &BatchPlan::default().with_workers(4))
            .unwrap();
        let bits: u64 = batch.reports.iter().map(EstimateReport::bits).sum();
        let max_rounds = batch.reports.iter().map(EstimateReport::rounds).max();
        assert_eq!(batch.accounting.total_bits, bits);
        assert_eq!(batch.accounting.queries, requests.len() as u64);
        assert_eq!(Some(batch.accounting.max_rounds), max_rounds);
        assert_eq!(
            batch.accounting.alice_bits + batch.accounting.bob_bits,
            bits
        );
    }

    #[test]
    fn lowest_index_error_wins_deterministically() {
        // Non-binary pair: binary protocols fail, CSR protocols succeed.
        let a = mpest_matrix::CsrMatrix::from_triplets(4, 4, vec![(0, 0, 3), (1, 2, 2)]);
        let b = mpest_matrix::CsrMatrix::from_triplets(4, 4, vec![(2, 1, 5)]);
        let engine = Engine::new(Session::new(a, b));
        let requests = vec![
            EstimateRequest::SparseMatmul,
            EstimateRequest::LinfBinary { eps: 0.3 }, // first failure
            EstimateRequest::TrivialBinary,           // also fails
        ];
        let sequential_err = engine
            .session()
            .estimate_seeded(&requests[1], engine.session().query_seed(1))
            .unwrap_err();
        for workers in [1, 2, 8] {
            let err = engine
                .run_batch(
                    &requests,
                    &BatchPlan::default().with_workers(workers).at_index(0),
                )
                .unwrap_err();
            assert_eq!(err, sequential_err, "workers={workers}");
        }
    }

    #[test]
    fn prewarm_toggle_never_changes_results() {
        let engine = engine();
        let requests = mixed_requests();
        let warm = engine
            .run_batch(&requests, &BatchPlan::default().at_index(0))
            .unwrap();
        let cold = engine
            .run_batch(
                &requests,
                &BatchPlan::default().with_prewarm(false).at_index(0),
            )
            .unwrap();
        assert_eq!(warm, cold);
    }
}
