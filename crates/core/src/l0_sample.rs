//! Theorem 3.2: `ℓ0`-sampling of `C = A·B` in one round and `Õ(n/ε²)`
//! bits.
//!
//! Composition of two linear sketches, both shipped Alice→Bob in a single
//! message:
//!
//! * an `ℓ0` *norm* sketch of every column of `A` (accuracy `ε`), which by
//!   linearity Bob turns into `sk(C_{*,j}) = Σ_k B_{k,j} · sk(A_{*,k})`
//!   for every column `j` — estimating each column support size;
//! * an `ℓ0` *sampler* sketch of the same columns, similarly combined.
//!
//! Bob picks a column `j` proportionally to the estimated support sizes
//! (`(1±ε)`-correct marginals) and decodes the sampler on column `j` to
//! get a uniform nonzero row index. The overall output is a `(1±ε)`
//! uniform sample of the nonzero positions of `C`.
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_core::l0_sample::L0SampleParams;
//! use mpest_core::{L0Sample, MatrixSample, Session};
//! use mpest_matrix::Workloads;
//!
//! let a = Workloads::bernoulli_bits(16, 24, 0.25, 1).to_csr();
//! let b = Workloads::bernoulli_bits(24, 16, 0.25, 2).to_csr();
//! let session = Session::new(a.clone(), b.clone());
//! let run = session
//!     .run_seeded(&L0Sample, &L0SampleParams::new(0.4), Seed(9))
//!     .unwrap();
//! assert_eq!(run.rounds(), 1);
//! if let MatrixSample::Sampled { row, col, value } = run.output {
//!     assert_eq!(a.matmul(&b).get(row as usize, col), value);
//! }
//! ```

use crate::config::{check_eps, Constants};
use crate::protocol::Protocol;
use crate::result::{MatrixSample, ProtocolRun};
use crate::session::{cached_or, ProductDims, Reuse, SessionCtx};
use crate::sketchcache::{SketchKey, SketchKind};
use crate::wire::{WFieldMat, WFieldMatShared};
use mpest_comm::{execute_split, CommError, Exec, Seed};
use mpest_matrix::{CsrMatrix, DenseMatrix};
use mpest_sketch::linear::combine_rows;
use mpest_sketch::{L0Sampler, L0Sketch, SampleOutcome, M61};
use rand::Rng;
use std::sync::Arc;

/// Parameters of the `ℓ0`-sampling protocol.
#[derive(Debug, Clone, Copy)]
pub struct L0SampleParams {
    /// Marginal accuracy `ε` of the column-size estimates.
    pub eps: f64,
    /// Protocol constants.
    pub consts: Constants,
}

impl L0SampleParams {
    /// Convenience constructor with default constants.
    #[must_use]
    pub fn new(eps: f64) -> Self {
        Self {
            eps,
            consts: Constants::default(),
        }
    }
}

pub(crate) fn norm_sketch_for(params: &L0SampleParams, col_dim: usize, pub_seed: Seed) -> L0Sketch {
    L0Sketch::new(
        col_dim.max(1),
        params.eps,
        params.consts.sketch_reps,
        pub_seed.derive("l0s-norm").0,
    )
}

pub(crate) fn norm_key(params: &L0SampleParams, col_dim: usize, pub_seed: Seed) -> SketchKey {
    SketchKey {
        kind: SketchKind::L0NormRowsAt,
        seed: pub_seed.derive("l0s-norm").0,
        dim: col_dim.max(1),
        params: [0, params.eps.to_bits(), params.consts.sketch_reps as u64],
    }
}

pub(crate) fn sampler_for(params: &L0SampleParams, col_dim: usize, pub_seed: Seed) -> L0Sampler {
    L0Sampler::new(
        col_dim.max(1),
        params.consts.sampler_reps,
        pub_seed.derive("l0s-sampler").0,
    )
}

pub(crate) fn sampler_key(params: &L0SampleParams, col_dim: usize, pub_seed: Seed) -> SketchKey {
    SketchKey {
        kind: SketchKind::L0SamplerRowsAt,
        seed: pub_seed.derive("l0s-sampler").0,
        dim: col_dim.max(1),
        params: [0, 0, params.consts.sampler_reps as u64],
    }
}

/// The Theorem 3.2 protocol as a [`Protocol`]: a `(1±ε)`-uniform sample
/// from the support of `C = A·B`, one round, `Õ(n/ε²)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L0Sample;

impl Protocol for L0Sample {
    type Params = L0SampleParams;
    type Output = MatrixSample;

    fn name(&self) -> &'static str {
        "l0-sample"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &L0SampleParams,
    ) -> Result<ProtocolRun<MatrixSample>, CommError> {
        let (a, b) = ctx.csr_halves();
        let reuse = Reuse {
            a_t: ctx.a_transpose(),
            b_t: ctx.b_transpose(),
            sketches: Some(ctx.sketch_cache()),
            ..Reuse::default()
        };
        run_unchecked(a, b, ctx.dims(), params, ctx.seed(), reuse, ctx.executor())
    }
}

pub(crate) fn run_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    dims: ProductDims,
    params: &L0SampleParams,
    seed: Seed,
    reuse: Reuse<'_>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<MatrixSample>, CommError> {
    check_eps(params.eps)?;
    let pub_seed = seed.derive("public");
    let bob_seed = seed.derive("bob");
    let col_dim = dims.a_rows; // columns of C live in this dimension
    let norm_sketch = norm_sketch_for(params, col_dim, pub_seed);
    let sampler = sampler_for(params, col_dim, pub_seed);

    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a: &CsrMatrix| {
            // Sketch every column of A (rows of Aᵀ), reusing the
            // session's cached transpose when present, and the session's
            // sketch cache so repeated/prewarmed queries skip the pass.
            let at = cached_or(reuse.a_t, || a.transpose());
            let norm_mat = match reuse.sketches {
                Some(c) => c.field(norm_key(params, col_dim, pub_seed), || {
                    norm_sketch.sketch_rows(&at)
                }),
                None => Arc::new(norm_sketch.sketch_rows(&at)),
            };
            let samp_mat = match reuse.sketches {
                Some(c) => c.field(sampler_key(params, col_dim, pub_seed), || {
                    sampler.sketch_rows(&at)
                }),
                None => Arc::new(sampler.sketch_rows(&at)),
            };
            link.send(0, "l0s-norm-sketches", &WFieldMatShared(norm_mat))?;
            link.send(0, "l0s-sampler-sketches", &WFieldMatShared(samp_mat))
        },
        |link, b: &CsrMatrix| {
            let norm_rows: DenseMatrix<M61> = link.recv::<WFieldMat>("l0s-norm-sketches")?.0;
            let samp_rows: DenseMatrix<M61> = link.recv::<WFieldMat>("l0s-sampler-sketches")?.0;
            if norm_rows.rows() != b.rows() || samp_rows.rows() != b.rows() {
                return Err(CommError::protocol(
                    "sketch row count does not match inner dimension".to_string(),
                ));
            }
            let bt = cached_or(reuse.b_t, || b.transpose());
            // Estimate ‖C_{*,j}‖₀ for every column j.
            let mut ests = vec![0.0f64; b.cols()];
            for (j, est) in ests.iter_mut().enumerate() {
                let weights = bt.row_vec(j).entries;
                if weights.is_empty() {
                    continue;
                }
                let skc = combine_rows(&norm_rows, &weights);
                *est = norm_sketch.estimate(&skc).max(0.0);
            }
            let total: f64 = ests.iter().sum();
            if total <= 0.0 {
                return Ok(MatrixSample::ZeroMatrix);
            }
            // Pick a column proportionally to the estimates.
            let mut rng = bob_seed.rng();
            let mut target = rng.gen::<f64>() * total;
            let mut col = b.cols() - 1;
            for (j, &e) in ests.iter().enumerate() {
                if target < e {
                    col = j;
                    break;
                }
                target -= e;
            }
            // Decode a uniform nonzero row of that column.
            let weights = bt.row_vec(col).entries;
            let skc = combine_rows(&samp_rows, &weights);
            match sampler.decode(&skc) {
                SampleOutcome::Sampled { index, value } => Ok(MatrixSample::Sampled {
                    row: index as u32,
                    col: col as u32,
                    value,
                }),
                SampleOutcome::ZeroVector => Ok(MatrixSample::Failed),
                SampleOutcome::Failed => Ok(MatrixSample::Failed),
            }
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::Workloads;
    use std::collections::HashMap;

    fn run(
        a: &CsrMatrix,
        b: &CsrMatrix,
        params: &L0SampleParams,
        seed: Seed,
    ) -> Result<ProtocolRun<MatrixSample>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&L0Sample, params, seed)
    }

    #[test]
    fn one_round_and_support_valid() {
        let a = Workloads::bernoulli_bits(20, 28, 0.2, 1).to_csr();
        let b = Workloads::bernoulli_bits(28, 20, 0.2, 2).to_csr();
        let c = a.matmul(&b);
        let params = L0SampleParams::new(0.4);
        let mut successes = 0;
        for t in 0..20 {
            let run = run(&a, &b, &params, Seed(100 + t)).unwrap();
            assert_eq!(run.rounds(), 1, "Theorem 3.2 is one-round");
            if let MatrixSample::Sampled { row, col, value } = run.output {
                successes += 1;
                assert_eq!(
                    c.get(row as usize, col),
                    value,
                    "sampled value must match the product entry"
                );
                assert!(value != 0);
            }
        }
        assert!(successes >= 16, "sampler succeeded only {successes}/20");
    }

    #[test]
    fn zero_matrix_detected() {
        let (a, b) = Workloads::disjoint_supports(12, 24, 0.4, 3);
        let params = L0SampleParams::new(0.5);
        let run = run(&a.to_csr(), &b.to_csr(), &params, Seed(7)).unwrap();
        assert_eq!(run.output, MatrixSample::ZeroMatrix);
    }

    #[test]
    fn approximately_uniform_over_support() {
        // Tiny instance so we can afford many runs: support must be hit
        // near-uniformly.
        let a = Workloads::bernoulli_bits(10, 14, 0.25, 5).to_csr();
        let b = Workloads::bernoulli_bits(14, 10, 0.25, 6).to_csr();
        let c = a.matmul(&b);
        let support: Vec<(u32, u32)> = c.triplets().map(|(r, cc, _)| (r, cc)).collect();
        assert!(support.len() >= 5, "need a nontrivial support");
        let params = L0SampleParams::new(0.3);
        let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
        let mut successes = 0u64;
        let trials = 1600;
        for t in 0..trials {
            if let MatrixSample::Sampled { row, col, .. } =
                run(&a, &b, &params, Seed(50_000 + t)).unwrap().output
            {
                assert!(
                    support.contains(&(row, col)),
                    "sampled ({row},{col}) outside support"
                );
                *counts.entry((row, col)).or_insert(0) += 1;
                successes += 1;
            }
        }
        assert!(successes >= trials * 7 / 10, "successes {successes}");
        let expect = successes as f64 / support.len() as f64;
        let mut worst: f64 = 0.0;
        for &pos in &support {
            let got = *counts.get(&pos).unwrap_or(&0) as f64;
            worst = worst.max((got - expect).abs() / expect.max(1.0));
        }
        // The guarantee is (1±ε)-uniformity per draw (ε = 0.3 here); on
        // top of that the worst cell carries multinomial noise of a few
        // σ ≈ √expect, so the bound must leave room for both.
        assert!(
            worst < 0.8,
            "worst relative deviation from uniform {worst} (expect per-cell {expect})"
        );
    }

    #[test]
    fn rejects_bad_params() {
        let a = CsrMatrix::zeros(4, 4);
        let b = CsrMatrix::zeros(5, 4);
        assert!(run(&a, &b, &L0SampleParams::new(0.5), Seed(0)).is_err());
        let b4 = CsrMatrix::zeros(4, 4);
        assert!(run(&a, &b4, &L0SampleParams::new(0.0), Seed(0)).is_err());
    }
}
