//! The trivial baseline: Alice ships her entire matrix; Bob computes any
//! statistic exactly. `n·m` bits for binary inputs (`Õ(n·m)` for integer
//! inputs), one round. Every non-trivial bound in the paper is measured
//! against this.

use crate::protocol::Protocol;
use crate::result::ProtocolRun;
use crate::session::{ProductDims, SessionCtx};
use crate::wire::{WBits, WSparseVec};
use mpest_comm::{execute_split, CommError, Exec, Seed};
use mpest_matrix::norms::{dense_linf, dense_lp_pow, PNorm};
use mpest_matrix::{BitMatrix, CsrMatrix};

/// Exact statistics computed after a full-matrix transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExactStats {
    /// `‖AB‖₀`.
    pub l0: f64,
    /// `‖AB‖₁`.
    pub l1: f64,
    /// `‖AB‖₂²`.
    pub l2_sq: f64,
    /// `‖AB‖∞` with an arg-max position.
    pub linf: (i64, (u32, u32)),
}

/// The trivial baseline over binary matrices as a [`Protocol`]: Alice
/// ships `A` as a raw bitmap (`rows·cols` bits exactly), one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrivialBinary;

impl Protocol for TrivialBinary {
    type Params = ();
    type Output = ExactStats;

    fn name(&self) -> &'static str {
        "trivial-binary"
    }

    fn execute(&self, ctx: &SessionCtx<'_>, (): &()) -> Result<ProtocolRun<ExactStats>, CommError> {
        let (a, b) = ctx.bit_halves()?;
        run_binary_unchecked(a, b, ctx.dims(), ctx.seed(), ctx.executor())
    }
}

/// The trivial baseline over integer matrices as a [`Protocol`]: Alice
/// ships `A` as sparse rows, one round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrivialCsr;

impl Protocol for TrivialCsr {
    type Params = ();
    type Output = ExactStats;

    fn name(&self) -> &'static str {
        "trivial-csr"
    }

    fn execute(&self, ctx: &SessionCtx<'_>, (): &()) -> Result<ProtocolRun<ExactStats>, CommError> {
        let (a, b) = ctx.csr_halves();
        run_csr_unchecked(a, b, ctx.dims(), ctx.seed(), ctx.executor())
    }
}

pub(crate) fn run_binary_unchecked(
    a: Option<&BitMatrix>,
    b: Option<&BitMatrix>,
    dims: ProductDims,
    _seed: Seed,
    exec: Exec<'_>,
) -> Result<ProtocolRun<ExactStats>, CommError> {
    // `A`'s shape is public — both parties derive it from the product
    // dimensions, so a storage-split Bob sizes the decode without ever
    // holding `A`.
    let rows = dims.a_rows;
    let cols = dims.inner;
    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a: &BitMatrix| {
            let mut bits = Vec::with_capacity(rows * cols);
            for i in 0..rows {
                for j in 0..cols {
                    bits.push(a.get(i, j));
                }
            }
            link.send(0, "trivial-matrix", &WBits(bits))
        },
        |link, b: &BitMatrix| {
            let bits: WBits = link.recv("trivial-matrix")?;
            if bits.0.len() != rows * cols {
                return Err(CommError::protocol(
                    "matrix payload size mismatch".to_string(),
                ));
            }
            let mut a = BitMatrix::zeros(rows, cols);
            for (idx, &bit) in bits.0.iter().enumerate() {
                if bit {
                    a.set(idx / cols, idx % cols, true);
                }
            }
            let c = a.matmul(b);
            let (mx, (i, j)) = dense_linf(&c);
            Ok(ExactStats {
                l0: dense_lp_pow(&c, PNorm::Zero),
                l1: dense_lp_pow(&c, PNorm::ONE),
                l2_sq: dense_lp_pow(&c, PNorm::TWO),
                linf: (mx, (i as u32, j as u32)),
            })
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

pub(crate) fn run_csr_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    dims: ProductDims,
    _seed: Seed,
    exec: Exec<'_>,
) -> Result<ProtocolRun<ExactStats>, CommError> {
    let rows = dims.a_rows;
    let cols = dims.inner;
    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a: &CsrMatrix| {
            let payload: Vec<WSparseVec> = (0..rows)
                .map(|i| WSparseVec {
                    dim: cols as u64,
                    entries: a.row_vec(i).entries,
                })
                .collect();
            link.send(0, "trivial-rows", &payload)
        },
        |link, b: &CsrMatrix| {
            let payload: Vec<WSparseVec> = link.recv("trivial-rows")?;
            if payload.len() != rows {
                return Err(CommError::protocol("row count mismatch".to_string()));
            }
            let triplets = payload
                .iter()
                .enumerate()
                .flat_map(|(i, row)| {
                    row.entries
                        .iter()
                        .map(move |&(j, v)| (i as u32, j, v))
                        .collect::<Vec<_>>()
                })
                .collect();
            let a = CsrMatrix::from_triplets(rows, cols, triplets);
            let c = a.matmul(b).to_dense();
            let (mx, (i, j)) = dense_linf(&c);
            Ok(ExactStats {
                l0: dense_lp_pow(&c, PNorm::Zero),
                l1: dense_lp_pow(&c, PNorm::ONE),
                l2_sq: dense_lp_pow(&c, PNorm::TWO),
                linf: (mx, (i as u32, j as u32)),
            })
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{stats, Workloads};

    fn run_binary(
        a: &BitMatrix,
        b: &BitMatrix,
        seed: Seed,
    ) -> Result<ProtocolRun<ExactStats>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&TrivialBinary, &(), seed)
    }

    fn run_csr(
        a: &CsrMatrix,
        b: &CsrMatrix,
        seed: Seed,
    ) -> Result<ProtocolRun<ExactStats>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&TrivialCsr, &(), seed)
    }

    #[test]
    fn binary_exact_and_bit_cost() {
        let a = Workloads::bernoulli_bits(20, 30, 0.3, 1);
        let b = Workloads::bernoulli_bits(30, 20, 0.3, 2);
        let run = run_binary(&a, &b, Seed(0)).unwrap();
        assert_eq!(
            run.output.l0,
            stats::lp_pow_of_product_binary(&a, &b, PNorm::Zero)
        );
        assert_eq!(
            run.output.l1,
            stats::lp_pow_of_product_binary(&a, &b, PNorm::ONE)
        );
        assert_eq!(run.output.linf.0, stats::linf_of_product_binary(&a, &b).0);
        // Exactly rows*cols payload bits plus the tiny length header.
        assert_eq!(run.bits(), 20 * 30 + 16);
        assert_eq!(run.rounds(), 1);
    }

    #[test]
    fn csr_exact() {
        let a = Workloads::integer_csr(15, 20, 0.3, 5, true, 3);
        let b = Workloads::integer_csr(20, 15, 0.3, 5, true, 4);
        let run = run_csr(&a, &b, Seed(0)).unwrap();
        let c = a.matmul(&b);
        assert_eq!(
            run.output.l1,
            mpest_matrix::norms::csr_lp_pow(&c, PNorm::ONE)
        );
        assert_eq!(run.output.linf.0, mpest_matrix::norms::csr_linf(&c).0);
    }
}
