//! Cross-query memoization of *public-coin* sketch matrices.
//!
//! Every sketch a protocol phase builds over a session half is a pure
//! function of `(sketch parameters, fully derived sketch seed, matrix
//! content)`. The matrix content is pinned by the owning [`Session`]
//! or [`PartyView`] (the cache is cleared whenever an update batch
//! mutates a half), so a key of *kind + derived seed + parameters*
//! identifies a sketch matrix exactly. That makes three reuse patterns
//! free:
//!
//! * **replays** — `estimate_seeded` under a pinned seed rebuilds
//!   nothing on the second call;
//! * **engine prewarm** — a batch groups same-kind jobs and builds all
//!   of them in one fused multi-seed matrix pass
//!   ([`mpest_sketch::sketch_rows_multi`]), inserting each result here
//!   so the in-phase lookups hit;
//! * **serve** — clients that pin seeds get cached answers no matter
//!   how queries interleave.
//!
//! Reuse never changes outputs or transcripts: the fused kernels are
//! bit-identical to the in-phase builds (the contract
//! `crates/sketch/tests/kernel_equivalence.rs` enforces), and a cached
//! matrix is byte-for-byte what the phase would have sent.
//!
//! [`Session`]: crate::Session
//! [`PartyView`]: crate::PartyView

use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

use mpest_matrix::{DenseMatrix, PNorm};
use mpest_obs::{Counter, Histogram, Registry};
use mpest_sketch::{SkMat, M61};

/// Which protocol phase builds the sketch, and over which half — part
/// of the cache key, so protocols can never alias each other's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum SketchKind {
    /// `lp` round-1: coarse `ℓp` sketches of the rows of `B`.
    LpRowsB,
    /// `lp-baseline`: full-accuracy `ℓp` sketches of the rows of `B`.
    BaselineRowsB,
    /// `l0-sample`: `ℓ0` norm sketches of the rows of `Aᵀ`.
    L0NormRowsAt,
    /// `l0-sample`: `ℓ0` sampler sketches of the rows of `Aᵀ`.
    L0SamplerRowsAt,
    /// `linf-general`: block-AMS sketches of the rows of `Aᵀ`.
    BlockAmsRowsAt,
}

/// Full identity of one cached sketch matrix. `seed` is the *fully
/// derived* sketch seed (already below the per-query public seed), and
/// `params` pins every remaining constructor argument, so two queries
/// share an entry iff they would build bit-identical sketches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SketchKey {
    /// Which phase/half the sketch belongs to.
    pub kind: SketchKind,
    /// Fully derived sketch seed.
    pub seed: u64,
    /// Sketch input dimension.
    pub dim: usize,
    /// Kind-specific constructor parameters, as bits (norm, accuracy,
    /// repetition counts, `κ`, …).
    pub params: [u64; 3],
}

/// A stable bit encoding of a [`PNorm`] for [`SketchKey::params`].
pub(crate) fn pnorm_bits(p: PNorm) -> u64 {
    match p {
        PNorm::Zero => u64::MAX,
        PNorm::Inf => u64::MAX - 1,
        PNorm::P(x) => x.to_bits(),
    }
}

/// A memoized sketch matrix, word-type erased like the wire layer.
#[derive(Debug, Clone)]
pub(crate) enum CachedSketch {
    /// A [`NormSketch`](mpest_sketch::NormSketch)-shaped matrix (also
    /// used for real-word single sketches via [`SkMat::Real`]).
    Norm(Arc<SkMat>),
    /// A field-word matrix (the `ℓ0` norm/sampler sketches).
    Field(Arc<DenseMatrix<M61>>),
}

/// The per-session (and per-[`PartyView`](crate::PartyView)) sketch
/// store. Interior-mutable so `&Session` queries can fill it; cleared
/// wholesale by `apply_update` (sketches are content-addressed only
/// while the pair is frozen).
#[derive(Debug, Default)]
pub(crate) struct SketchCache {
    map: Mutex<HashMap<SketchKey, CachedSketch>>,
    /// Observability handles — no-op by default, wired by
    /// [`SketchCache::set_obs`] before the owning session is shared.
    /// Recording into them never changes what the cache returns.
    hits: Counter,
    misses: Counter,
    prewarm_kernel: Counter,
    prewarm_scalar: Counter,
    fused_group: Histogram,
}

/// Entry cap: one engine batch prewarm plus in-phase inserts stay far
/// below this; a long pinned-seed serve session cannot grow without
/// bound. Crossing the cap clears the map (entries are cheap to
/// rebuild and never load-bearing).
const CACHE_CAP: usize = 128;

impl SketchCache {
    /// Point the cache's metric handles at `registry` (hit/miss
    /// counters, prewarm kernel-vs-scalar counters, fused-group-size
    /// histogram). Takes `&mut self`: call before the owning session
    /// is Arc-shared.
    pub(crate) fn set_obs(&mut self, registry: &Registry) {
        self.hits = registry.counter("sketch.cache.hits");
        self.misses = registry.counter("sketch.cache.misses");
        self.prewarm_kernel = registry.counter("sketch.prewarm.kernel");
        self.prewarm_scalar = registry.counter("sketch.prewarm.scalar");
        self.fused_group = registry.histogram("sketch.fused.group_size");
    }

    /// Record one engine prewarm group: `n` same-kind sketches built
    /// in one pass, via the vectorized kernel or the scalar fallback.
    pub(crate) fn record_prewarm(&self, kernel: bool, n: usize) {
        self.fused_group.record(n as u64);
        if kernel {
            self.prewarm_kernel.add(n as u64);
        } else {
            self.prewarm_scalar.add(n as u64);
        }
    }

    /// Drops every entry (update batches, cap overflow).
    pub(crate) fn clear(&self) {
        self.lock().clear();
    }

    /// Number of live entries (tests and diagnostics).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.lock().len()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<SketchKey, CachedSketch>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// First-insert-wins put: under a race, every caller ends up
    /// holding the same `Arc`, and the cap keeps the map bounded.
    fn put(&self, key: SketchKey, value: CachedSketch) -> CachedSketch {
        let mut map = self.lock();
        if map.len() >= CACHE_CAP && !map.contains_key(&key) {
            map.clear();
        }
        map.entry(key).or_insert(value).clone()
    }

    /// The word-type-erased sketch matrix under `key`, building (outside
    /// the lock) and inserting on miss.
    pub(crate) fn norm(&self, key: SketchKey, build: impl FnOnce() -> SkMat) -> Arc<SkMat> {
        if let Some(CachedSketch::Norm(m)) = self.lock().get(&key).cloned() {
            self.hits.inc();
            return m;
        }
        self.misses.inc();
        let built = Arc::new(build());
        match self.put(key, CachedSketch::Norm(Arc::clone(&built))) {
            CachedSketch::Norm(m) => m,
            CachedSketch::Field(_) => built,
        }
    }

    /// The field-word sketch matrix under `key`, building (outside the
    /// lock) and inserting on miss.
    pub(crate) fn field(
        &self,
        key: SketchKey,
        build: impl FnOnce() -> DenseMatrix<M61>,
    ) -> Arc<DenseMatrix<M61>> {
        if let Some(CachedSketch::Field(m)) = self.lock().get(&key).cloned() {
            self.hits.inc();
            return m;
        }
        self.misses.inc();
        let built = Arc::new(build());
        match self.put(key, CachedSketch::Field(Arc::clone(&built))) {
            CachedSketch::Field(m) => m,
            CachedSketch::Norm(_) => built,
        }
    }

    /// Prewarm insert of a word-type-erased matrix (engine batch path).
    pub(crate) fn insert_norm(&self, key: SketchKey, m: SkMat) {
        let _ = self.put(key, CachedSketch::Norm(Arc::new(m)));
    }

    /// Prewarm insert of a field-word matrix (engine batch path).
    pub(crate) fn insert_field(&self, key: SketchKey, m: DenseMatrix<M61>) {
        let _ = self.put(key, CachedSketch::Field(Arc::new(m)));
    }

    /// Whether `key` is already resident (prewarm dedup).
    pub(crate) fn contains(&self, key: SketchKey) -> bool {
        self.lock().contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u64) -> SketchKey {
        SketchKey {
            kind: SketchKind::LpRowsB,
            seed,
            dim: 8,
            params: [pnorm_bits(PNorm::ONE), 0.5f64.to_bits(), 5],
        }
    }

    #[test]
    fn build_once_then_share() {
        let cache = SketchCache::default();
        let mut builds = 0;
        let m1 = cache.norm(key(1), || {
            builds += 1;
            SkMat::Real(DenseMatrix::from_vec(1, 2, vec![1.0, 2.0]))
        });
        let m2 = cache.norm(key(1), || {
            builds += 1;
            SkMat::Real(DenseMatrix::from_vec(1, 2, vec![9.0, 9.0]))
        });
        assert_eq!(builds, 1, "second lookup must hit");
        assert!(Arc::ptr_eq(&m1, &m2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_distinct_entries() {
        let cache = SketchCache::default();
        let _ = cache.field(key(1), || DenseMatrix::from_vec(1, 1, vec![M61::new(3)]));
        let _ = cache.field(key(2), || DenseMatrix::from_vec(1, 1, vec![M61::new(4)]));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(key(1)));
        cache.clear();
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn cap_clears_instead_of_growing() {
        let cache = SketchCache::default();
        for s in 0..(CACHE_CAP as u64 + 3) {
            cache.insert_field(key(s), DenseMatrix::from_vec(1, 1, vec![M61::new(s)]));
        }
        assert!(cache.len() <= CACHE_CAP);
        // The entries inserted after the clear are present.
        assert!(cache.contains(key(CACHE_CAP as u64 + 2)));
    }

    #[test]
    fn pnorm_bits_are_injective_on_supported_norms() {
        let ps = [
            pnorm_bits(PNorm::Zero),
            pnorm_bits(PNorm::ONE),
            pnorm_bits(PNorm::TWO),
            pnorm_bits(PNorm::P(0.5)),
            pnorm_bits(PNorm::Inf),
        ];
        for (i, a) in ps.iter().enumerate() {
            for b in &ps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
