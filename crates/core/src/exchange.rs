//! The min-side index exchange — the shared mechanism of Lemma 2.5,
//! Algorithm 2 (steps 7–12), Algorithm 3, and Section 5.2.
//!
//! Write `C = A·B = Σ_k A_{*,k} ⊗ B_{k,*}`. For each inner index (universe
//! item) `k`, Alice's side of the term has `u_k = nnz(A_{*,k})` entries and
//! Bob's has `v_k = nnz(B_{k,*})`. Once both parties know `(u_k, v_k)` for
//! the live items, the party holding the *lighter* side ships it, and the
//! peer computes that outer-product term entirely locally. The result is a
//! pair of additive shares `C_A + C_B = C` at a total list cost of
//! `Σ_k min(u_k, v_k)` index entries — which is how the `√‖C‖₀` and
//! `n^{1.5}` bounds arise.
//!
//! Convention: Alice ships items with `u_k ≤ v_k` (so Bob accumulates
//! those terms into `C_B`), Bob ships items with `v_k < u_k` (Alice
//! accumulates into `C_A`). Items with `u_k = 0` or `v_k = 0` contribute
//! nothing and are skipped. Both messages belong to one (simultaneous)
//! round.

use mpest_comm::{width_for, BitReader, BitWriter, CommError, Link, Wire};
use mpest_matrix::Accumulator;

/// Parameters shared by both sides of an exchange.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ExchangeCfg {
    /// Round index to annotate the (simultaneous) messages with.
    pub round: u16,
    /// If true, entry values are all 1 and are not shipped.
    pub binary: bool,
    /// Rows of the output shape (`C` has `out_rows × out_cols`).
    pub out_rows: usize,
    /// Columns of the output shape.
    pub out_cols: usize,
    /// Inner dimension (item universe size; determines item index width).
    pub inner_dim: usize,
}

/// The wire format of one party's shipped lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ItemLists {
    inner_dim: u64,
    coord_dim: u64,
    binary: bool,
    /// `(item, entries)` — for binary lists the values are implicitly 1.
    items: Vec<(u32, Vec<(u32, i64)>)>,
}

impl Wire for ItemLists {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.inner_dim);
        w.write_varint(self.coord_dim);
        w.write_bit(self.binary);
        w.write_varint(self.items.len() as u64);
        let iw = width_for(self.inner_dim);
        let cw = width_for(self.coord_dim);
        for (item, entries) in &self.items {
            w.write_bits(u64::from(*item), iw);
            w.write_varint(entries.len() as u64);
            for &(c, v) in entries {
                w.write_bits(u64::from(c), cw);
                if !self.binary {
                    w.write_zigzag(v);
                }
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let inner_dim = r.read_varint()?;
        let coord_dim = r.read_varint()?;
        let binary = r.read_bit()?;
        let n = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("item count overflow"))?;
        let iw = width_for(inner_dim);
        let cw = width_for(coord_dim);
        let mut items = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let item =
                u32::try_from(r.read_bits(iw)?).map_err(|_| CommError::decode("item overflow"))?;
            let len = usize::try_from(r.read_varint()?)
                .map_err(|_| CommError::decode("list length overflow"))?;
            let mut entries = Vec::with_capacity(len.min(1 << 20));
            for _ in 0..len {
                let c = u32::try_from(r.read_bits(cw)?)
                    .map_err(|_| CommError::decode("coord overflow"))?;
                let v = if binary { 1 } else { r.read_zigzag()? };
                entries.push((c, v));
            }
            items.push((item, entries));
        }
        Ok(Self {
            inner_dim,
            coord_dim,
            binary,
            items,
        })
    }
}

impl ItemLists {
    /// Builds the lists one party ships. `mine_lighter(k)` decides whether
    /// this party's side of item `k` is the one to ship (ties broken by
    /// the caller's convention); `entries(k)` yields the shipped list.
    pub(crate) fn build(
        cfg: ExchangeCfg,
        coord_dim: usize,
        items: &[u32],
        u: &[u32],
        v: &[u32],
        mine_lighter: impl Fn(u32, u32) -> bool,
        entries: impl Fn(u32) -> Vec<(u32, i64)>,
    ) -> Self {
        let shipped = items
            .iter()
            .filter(|&&k| {
                let (uk, vk) = (u[k as usize], v[k as usize]);
                uk > 0 && vk > 0 && mine_lighter(uk, vk)
            })
            .map(|&k| (k, entries(k)))
            .collect();
        Self {
            inner_dim: cfg.inner_dim as u64,
            coord_dim: coord_dim as u64,
            binary: cfg.binary,
            items: shipped,
        }
    }

    /// Accumulates the outer-product terms of received lists against this
    /// party's own entries.
    pub(crate) fn accumulate_against(
        &self,
        cfg: ExchangeCfg,
        my_entries: impl Fn(u32) -> Vec<(u32, i64)>,
        received_is_rows: bool,
    ) -> Accumulator {
        let mut acc = Accumulator::new(cfg.out_rows, cfg.out_cols);
        for (k, list) in &self.items {
            let mine = my_entries(*k);
            if received_is_rows {
                // Received Bob-style rows; mine are columns.
                acc.add_outer(&mine, list);
            } else {
                // Received Alice-style columns; mine are rows.
                acc.add_outer(list, &mine);
            }
        }
        acc
    }
}

/// Alice's side. `col_entries(k)` must return the nonzeros of `A_{*,k}`
/// as `(row, value)` pairs. Returns her share `C_A` of the product.
pub(crate) fn exchange_alice(
    link: &Link<'_>,
    cfg: ExchangeCfg,
    items: &[u32],
    u: &[u32],
    v: &[u32],
    col_entries: impl Fn(u32) -> Vec<(u32, i64)>,
) -> Result<Accumulator, CommError> {
    let to_ship: Vec<(u32, Vec<(u32, i64)>)> = items
        .iter()
        .filter(|&&k| {
            let (uk, vk) = (u[k as usize], v[k as usize]);
            uk > 0 && vk > 0 && uk <= vk
        })
        .map(|&k| (k, col_entries(k)))
        .collect();
    link.send(
        cfg.round,
        "exchange-alice-lists",
        &ItemLists {
            inner_dim: cfg.inner_dim as u64,
            coord_dim: cfg.out_rows as u64,
            binary: cfg.binary,
            items: to_ship,
        },
    )?;
    let from_bob: ItemLists = link.recv("exchange-bob-lists")?;
    let mut acc = Accumulator::new(cfg.out_rows, cfg.out_cols);
    for (k, row) in &from_bob.items {
        let col = col_entries(*k);
        acc.add_outer(&col, row);
    }
    Ok(acc)
}

/// Bob's side. `row_entries(k)` must return the nonzeros of `B_{k,*}` as
/// `(col, value)` pairs. Returns his share `C_B` of the product.
pub(crate) fn exchange_bob(
    link: &Link<'_>,
    cfg: ExchangeCfg,
    items: &[u32],
    u: &[u32],
    v: &[u32],
    row_entries: impl Fn(u32) -> Vec<(u32, i64)>,
) -> Result<Accumulator, CommError> {
    let to_ship: Vec<(u32, Vec<(u32, i64)>)> = items
        .iter()
        .filter(|&&k| {
            let (uk, vk) = (u[k as usize], v[k as usize]);
            uk > 0 && vk > 0 && vk < uk
        })
        .map(|&k| (k, row_entries(k)))
        .collect();
    link.send(
        cfg.round,
        "exchange-bob-lists",
        &ItemLists {
            inner_dim: cfg.inner_dim as u64,
            coord_dim: cfg.out_cols as u64,
            binary: cfg.binary,
            items: to_ship,
        },
    )?;
    let from_alice: ItemLists = link.recv("exchange-alice-lists")?;
    let mut acc = Accumulator::new(cfg.out_rows, cfg.out_cols);
    for (k, col) in &from_alice.items {
        let row = row_entries(*k);
        acc.add_outer(col, &row);
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_comm::execute;
    use mpest_matrix::{CsrMatrix, Workloads};

    fn run_exchange(a: &CsrMatrix, b: &CsrMatrix, binary: bool) {
        let at = a.transpose();
        let u = a.col_nnz();
        let v = b.row_nnz();
        let items: Vec<u32> = (0..a.cols() as u32).collect();
        let cfg = ExchangeCfg {
            round: 0,
            binary,
            out_rows: a.rows(),
            out_cols: b.cols(),
            inner_dim: a.cols(),
        };
        let out = execute(
            (),
            (),
            |link, ()| {
                exchange_alice(link, cfg, &items, &u, &v, |k| {
                    at.row_vec(k as usize).entries
                })
                .map(crate::wire::WAccum)
            },
            |link, ()| {
                exchange_bob(link, cfg, &items, &u, &v, |k| b.row_vec(k as usize).entries)
                    .map(crate::wire::WAccum)
            },
        )
        .unwrap();
        // Shares sum to the exact product.
        let mut triplets = out.alice.0.into_entries();
        triplets.extend(out.bob.0.into_entries());
        let c = CsrMatrix::from_triplets(a.rows(), b.cols(), triplets);
        assert_eq!(c, a.matmul(b));
        assert_eq!(out.transcript.rounds(), 1, "simultaneous exchange");
        // Cost is bounded by the min-side totals (plus headers).
        let min_side: u64 = (0..a.cols()).map(|k| u64::from(u[k].min(v[k]))).sum();
        let header_slack = 200 + 40 * a.cols() as u64;
        assert!(
            out.transcript.total_bits() <= min_side * 64 + header_slack,
            "exchange cost {} far above min-side budget {}",
            out.transcript.total_bits(),
            min_side * 64 + header_slack,
        );
    }

    #[test]
    fn shares_reconstruct_product_binary() {
        let a = Workloads::bernoulli_bits(24, 30, 0.2, 1).to_csr();
        let b = Workloads::bernoulli_bits(30, 20, 0.25, 2).to_csr();
        run_exchange(&a, &b, true);
    }

    #[test]
    fn shares_reconstruct_product_integer() {
        let a = Workloads::integer_csr(15, 18, 0.3, 5, true, 3);
        let b = Workloads::integer_csr(18, 12, 0.3, 5, true, 4);
        run_exchange(&a, &b, false);
    }

    #[test]
    fn empty_matrices() {
        let a = CsrMatrix::zeros(5, 5);
        let b = CsrMatrix::zeros(5, 5);
        run_exchange(&a, &b, false);
    }

    #[test]
    fn skewed_weights_ship_light_side() {
        // One dense column on Alice's side vs sparse rows on Bob's: Bob's
        // side is lighter, so Bob ships and Alice accumulates.
        let a = CsrMatrix::from_triplets(50, 2, (0..50).map(|i| (i, 0, 1i64)).collect());
        let b = CsrMatrix::from_triplets(2, 50, vec![(0, 7, 1)]);
        let at = a.transpose();
        let u = a.col_nnz();
        let v = b.row_nnz();
        let items: Vec<u32> = vec![0, 1];
        let cfg = ExchangeCfg {
            round: 0,
            binary: true,
            out_rows: 50,
            out_cols: 50,
            inner_dim: 2,
        };
        let out = execute(
            (),
            (),
            |link, ()| {
                exchange_alice(link, cfg, &items, &u, &v, |k| {
                    at.row_vec(k as usize).entries
                })
                .map(crate::wire::WAccum)
            },
            |link, ()| {
                exchange_bob(link, cfg, &items, &u, &v, |k| b.row_vec(k as usize).entries)
                    .map(crate::wire::WAccum)
            },
        )
        .unwrap();
        // All 50 entries of the product live in Alice's share.
        assert_eq!(out.alice.0.nnz(), 50);
        assert_eq!(out.bob.0.nnz(), 0);
        // Bob shipped 1 entry, Alice shipped nothing.
        assert!(out.transcript.bits_from(mpest_comm::Party::Bob) < 100);
    }
}
