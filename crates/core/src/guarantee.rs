//! Per-protocol statistical contracts as data: [`GuaranteeSpec`].
//!
//! Every protocol in the paper comes with an (ε, δ)-style guarantee —
//! "a `(1±ε)` estimate with constant probability", "a set `S` with
//! `HH_φ ⊆ S ⊆ HH_{φ−ε}`", "a `(1±ε)`-uniform support sample". The code
//! historically knew these contracts only implicitly, inside test
//! assertions. This module turns them into *data*: each
//! [`EstimateRequest`] maps to a [`GuaranteeSpec`] describing what the
//! output promises ([`GuaranteeKind`]) and with what failure budget
//! (`delta`), so a Monte-Carlo harness (the `mpest-verify` crate) can
//! score observed outputs against exact references and gate the
//! empirical failure rate in CI.
//!
//! The `delta` values are *empirical contracts*, not the paper's
//! asymptotic ones: the default [`Constants`](crate::Constants) are the
//! laptop-scale `practical()` preset, whose constant success probability
//! is real but far from the `1 − 1/n¹⁰` the paper gets with `10⁴ log n`
//! multipliers. Each `delta` below is chosen so that measured failure
//! rates over many seeded trials sit comfortably inside it while a
//! genuine regression (a broken estimator, a biased sampler) still
//! trips it.

use crate::request::EstimateRequest;

/// What shape of promise a protocol's output makes relative to the
/// exact statistic of `C = A·B`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GuaranteeKind {
    /// The output equals the exact reference (no randomness budget).
    Exact,
    /// A scalar estimate within `(1 ± eps)` of the true statistic.
    RelativeError {
        /// Multiplicative accuracy.
        eps: f64,
    },
    /// A scalar estimate sandwiched as
    /// `truth / under ≤ estimate ≤ over · truth` (a zero truth demands
    /// an estimate below 1).
    ApproxFactor {
        /// Largest tolerated underestimation factor.
        under: f64,
        /// Largest tolerated overestimation factor.
        over: f64,
    },
    /// A heavy-hitter set `S` with `HH_φ ⊆ S ⊆ HH_{φ−ε}` in `ℓp` mass.
    HeavyHitters {
        /// Norm exponent.
        p: f64,
        /// Heavy-hitter threshold.
        phi: f64,
        /// Tolerance band width.
        eps: f64,
    },
    /// All pairs with overlap `≥ T`, plus possibly pairs in the
    /// `[T·(1−slack), T)` band.
    OverlapJoin {
        /// Overlap threshold.
        t: u32,
        /// Tolerance band fraction.
        slack: f64,
    },
    /// A `(1±eps)`-uniform sample from the support of `C`; sampled
    /// values must be exact, and outright failure is a bounded-`delta`
    /// event.
    SupportSample {
        /// Marginal accuracy of the underlying size estimates.
        eps: f64,
    },
    /// An `ℓ1`-sample: position drawn with probability `∝ |C_{i,j}|`,
    /// delivered with a valid join witness (`None` only for `‖C‖₁ = 0`).
    L1Sample,
    /// Additive shares that reconstruct `A·B` exactly.
    ExactShares,
}

/// The statistical contract of one protocol invocation: what the output
/// promises, with what per-trial failure budget, and where the paper
/// says so.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuaranteeSpec {
    /// The protocol's stable name (see [`EstimateRequest::name`]).
    pub protocol: &'static str,
    /// The shape of the promise.
    pub kind: GuaranteeKind,
    /// Allowed per-trial failure probability: the empirical failure
    /// rate over many seeded trials must stay at or below this. `0.0`
    /// for exact protocols.
    pub delta: f64,
    /// Human-readable statement of the contract (paper reference
    /// included), for reports and documentation tables.
    pub contract: &'static str,
}

impl EstimateRequest {
    /// The statistical contract this request's protocol makes under the
    /// default [`Constants`](crate::Constants). The Monte-Carlo harness
    /// (`mpest-verify`) scores every trial against this spec.
    #[must_use]
    pub fn guarantee(&self) -> GuaranteeSpec {
        let protocol = self.name();
        match *self {
            EstimateRequest::LpNorm { eps, .. } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::RelativeError { eps },
                delta: 0.40,
                contract: "Alg. 1 / Thm 3.1: (1±ε)·‖AB‖_p^p, p ∈ [0,2], constant success probability",
            },
            EstimateRequest::LpBaseline { eps, .. } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::RelativeError { eps },
                delta: 0.40,
                contract: "[16] / §1.3 one-round baseline: (1±ε)·‖AB‖_p^p, constant success probability",
            },
            EstimateRequest::ExactL1 => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::Exact,
                delta: 0.0,
                contract: "Remark 2: exact ‖AB‖₁ for non-negative inputs, always",
            },
            EstimateRequest::L1Sample => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::L1Sample,
                delta: 0.0,
                contract: "Remark 3: ℓ1-sample with a valid join witness; position drawn ∝ C_{ij}",
            },
            EstimateRequest::L0Sample { eps } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::SupportSample { eps },
                delta: 0.25,
                contract: "Thm 3.2: (1±ε)-uniform support sample with exact value; bounded failure probability",
            },
            EstimateRequest::SparseMatmul => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::ExactShares,
                delta: 0.0,
                contract: "Lemma 2.5: additive shares with C_A + C_B = AB exactly, always",
            },
            EstimateRequest::LinfBinary { eps } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::ApproxFactor {
                    under: 2.0 + eps,
                    over: 2.0,
                },
                delta: 0.30,
                contract: "Alg. 2 / Thm 4.1: (2+ε)-approximation of ‖AB‖∞ for binary inputs",
            },
            EstimateRequest::LinfKappa { kappa } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::ApproxFactor {
                    under: 3.0 * kappa,
                    over: 3.0 * kappa,
                },
                delta: 0.25,
                contract: "Alg. 3 / Thm 4.3: κ-approximation of ‖AB‖∞ for binary inputs, O(1) rounds",
            },
            EstimateRequest::LinfGeneral { kappa } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::ApproxFactor {
                    under: 2.5 * kappa as f64,
                    over: 2.5 * kappa as f64,
                },
                delta: 0.25,
                contract: "Thm 4.8(1): κ-approximation of ‖AB‖∞ for integer inputs, one round",
            },
            EstimateRequest::HhGeneral { p, phi, eps } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::HeavyHitters { p, phi, eps },
                delta: 0.35,
                contract: "Alg. 4 / Thm 5.1: set S with HH_φ ⊆ S ⊆ HH_{φ−ε} in ℓp mass, integer inputs",
            },
            EstimateRequest::HhBinary { p, phi, eps } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::HeavyHitters { p, phi, eps },
                delta: 0.35,
                contract: "§5.2 / Thm 5.3: set S with HH_φ ⊆ S ⊆ HH_{φ−ε} in ℓp mass, binary inputs",
            },
            EstimateRequest::AtLeastTJoin { t, slack } => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::OverlapJoin { t, slack },
                delta: 0.35,
                contract: "§1.3: all pairs with |A_i ∩ B_j| ≥ T; band [T(1−slack), T) may also appear",
            },
            EstimateRequest::TrivialBinary | EstimateRequest::TrivialCsr => GuaranteeSpec {
                protocol,
                kind: GuaranteeKind::Exact,
                delta: 0.0,
                contract: "folklore baseline: ship A, compute every statistic exactly, always",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_has_a_spec_with_sane_budget() {
        for req in EstimateRequest::catalog() {
            let spec = req.guarantee();
            assert_eq!(spec.protocol, req.name());
            assert!(
                (0.0..1.0).contains(&spec.delta),
                "{}: delta {} out of range",
                spec.protocol,
                spec.delta
            );
            assert!(!spec.contract.is_empty());
            if matches!(
                spec.kind,
                GuaranteeKind::Exact | GuaranteeKind::ExactShares | GuaranteeKind::L1Sample
            ) {
                assert_eq!(
                    spec.delta, 0.0,
                    "{}: exact kinds get no budget",
                    spec.protocol
                );
            }
        }
    }

    #[test]
    fn specs_inherit_request_parameters() {
        let spec = EstimateRequest::LpNorm {
            p: mpest_matrix::PNorm::ONE,
            eps: 0.125,
        }
        .guarantee();
        assert_eq!(spec.kind, GuaranteeKind::RelativeError { eps: 0.125 });
        let spec = EstimateRequest::HhBinary {
            p: 2.0,
            phi: 0.1,
            eps: 0.05,
        }
        .guarantee();
        assert_eq!(
            spec.kind,
            GuaranteeKind::HeavyHitters {
                p: 2.0,
                phi: 0.1,
                eps: 0.05
            }
        );
        let spec = EstimateRequest::LinfBinary { eps: 0.5 }.guarantee();
        assert_eq!(
            spec.kind,
            GuaranteeKind::ApproxFactor {
                under: 2.5,
                over: 2.0
            }
        );
    }
}
