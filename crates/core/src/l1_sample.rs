//! Remark 3: `ℓ1`-sampling of `C = A·B` in one round and `O(n log n)`
//! bits, for entrywise non-negative matrices.
//!
//! Alice ships, per inner index `k`, the column mass `‖A_{*,k}‖₁` and one
//! row index sampled proportionally to the column's values. Bob draws a
//! witness `k` proportionally to `‖A_{*,k}‖₁ · ‖B_{k,*}‖₁`, then a column
//! index from `B_{k,*}` proportionally to its values. The produced pair
//! `(i, j)` is distributed exactly as `C_{i,j} / ‖C‖₁` — an `ℓ1`-sample —
//! and the witness `k` is a uniformly random join witness for the pair.
//!
//! ```
//! use mpest_comm::Seed;
//! use mpest_matrix::Workloads;
//!
//! let a = Workloads::bernoulli_bits(24, 32, 0.3, 1).to_csr();
//! let b = Workloads::bernoulli_bits(32, 24, 0.3, 2).to_csr();
//! let session = mpest_core::Session::new(a.clone(), b.clone());
//! let run = session.run_seeded(&mpest_core::L1Sampling, &(), Seed(5)).unwrap();
//! let s = run.output.expect("product is nonzero");
//! // The witness is a genuine join witness: (row, witness) ∈ A, (witness, col) ∈ B.
//! assert_eq!(a.get(s.row as usize, s.witness), 1);
//! assert_eq!(b.get(s.witness as usize, s.col), 1);
//! ```

use crate::protocol::Protocol;
use crate::result::{L1Sample, ProtocolRun};
use crate::session::{cached_or, Reuse, SessionCtx};
use mpest_comm::width_for;
use mpest_comm::{execute_split, BitReader, BitWriter, CommError, Exec, Seed, Wire};
use mpest_matrix::CsrMatrix;
use rand::Rng;

/// Per-column summary Alice ships: mass and (for nonzero columns) a
/// value-proportional sampled row index.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ColumnSummaries {
    row_dim: u64,
    /// `(mass, sampled_row)` per inner index; `sampled_row` present iff
    /// `mass > 0`.
    cols: Vec<(u64, Option<u32>)>,
}

impl Wire for ColumnSummaries {
    fn encode(&self, w: &mut BitWriter) {
        w.write_varint(self.row_dim);
        w.write_varint(self.cols.len() as u64);
        let rw = width_for(self.row_dim);
        for &(mass, row) in &self.cols {
            w.write_varint(mass);
            match row {
                Some(r) => w.write_bits(u64::from(r), rw),
                None => debug_assert_eq!(mass, 0),
            }
        }
    }

    fn decode(r: &mut BitReader<'_>) -> Result<Self, CommError> {
        let row_dim = r.read_varint()?;
        let n = usize::try_from(r.read_varint()?)
            .map_err(|_| CommError::decode("column count overflow"))?;
        let rw = width_for(row_dim);
        let mut cols = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let mass = r.read_varint()?;
            let row = if mass > 0 {
                Some(
                    u32::try_from(r.read_bits(rw)?)
                        .map_err(|_| CommError::decode("row overflow"))?,
                )
            } else {
                None
            };
            cols.push((mass, row));
        }
        Ok(Self { row_dim, cols })
    }
}

/// Samples an index from a discrete distribution given by non-negative
/// weights (assumes `total > 0`).
fn weighted_pick(rng: &mut impl Rng, weights: impl Iterator<Item = u64>, total: u128) -> usize {
    let mut target = rng.gen_range(0..total);
    for (idx, w) in weights.enumerate() {
        let w = u128::from(w);
        if target < w {
            return idx;
        }
        target -= w;
    }
    unreachable!("weighted_pick: weights exhausted before total");
}

/// The Remark 3 protocol as a [`Protocol`]: an `ℓ1`-sample of `C = A·B`
/// with its join witness, one round, `O(n log n)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L1Sampling;

impl Protocol for L1Sampling {
    type Params = ();
    type Output = Option<L1Sample>;

    fn name(&self) -> &'static str {
        "l1-sample"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        (): &(),
    ) -> Result<ProtocolRun<Option<L1Sample>>, CommError> {
        let (a, b) = ctx.csr_halves();
        let reuse = Reuse {
            a_t: ctx.a_transpose(),
            b_row_abs: ctx.b_row_abs_sums(),
            ..Reuse::default()
        };
        run_unchecked(a, b, ctx.seed(), reuse, ctx.executor())
    }
}

pub(crate) fn run_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    seed: Seed,
    reuse: Reuse<'_>,
    exec: Exec<'_>,
) -> Result<ProtocolRun<Option<L1Sample>>, CommError> {
    // Each process validates only the halves it holds.
    if a.is_some_and(|m| !m.is_nonnegative()) || b.is_some_and(|m| !m.is_nonnegative()) {
        return Err(CommError::protocol(
            "Remark 3 requires entrywise non-negative matrices".to_string(),
        ));
    }
    let alice_seed = seed.derive("alice");
    let bob_seed = seed.derive("bob");
    let outcome = execute_split(
        exec,
        a,
        b,
        |link, a: &CsrMatrix| {
            let at = cached_or(reuse.a_t, || a.transpose());
            let mut rng = alice_seed.rng();
            let cols: Vec<(u64, Option<u32>)> = (0..a.cols())
                .map(|k| {
                    let entries = at.row(k).0;
                    let vals = at.row(k).1;
                    let mass: u64 = vals.iter().map(|&v| v as u64).sum();
                    if mass == 0 {
                        (0, None)
                    } else {
                        let pick = weighted_pick(
                            &mut rng,
                            vals.iter().map(|&v| v as u64),
                            u128::from(mass),
                        );
                        (mass, Some(entries[pick]))
                    }
                })
                .collect();
            link.send(
                0,
                "l1-column-summaries",
                &ColumnSummaries {
                    row_dim: a.rows() as u64,
                    cols,
                },
            )
        },
        |link, b: &CsrMatrix| {
            let summary: ColumnSummaries = link.recv("l1-column-summaries")?;
            if summary.cols.len() != b.rows() {
                return Err(CommError::protocol("summary length mismatch".to_string()));
            }
            let row_masses: Vec<u64> = match reuse.b_row_abs {
                Some(sums) => sums.iter().map(|&v| v as u64).collect(),
                None => b.row_abs_sums().iter().map(|&v| v as u64).collect(),
            };
            let weights: Vec<u128> = summary
                .cols
                .iter()
                .zip(row_masses.iter())
                .map(|(&(u, _), &v)| u128::from(u) * u128::from(v))
                .collect();
            let total: u128 = weights.iter().sum();
            if total == 0 {
                return Ok(None);
            }
            let mut rng = bob_seed.rng();
            // Draw the witness k proportionally to u_k * v_k.
            let mut target = rng.gen_range(0..total);
            let mut witness = 0usize;
            for (k, &w) in weights.iter().enumerate() {
                if target < w {
                    witness = k;
                    break;
                }
                target -= w;
            }
            let row = summary.cols[witness]
                .1
                .ok_or_else(|| CommError::protocol("witness without sampled row".to_string()))?;
            let (b_cols, b_vals) = b.row(witness);
            let pick = weighted_pick(
                &mut rng,
                b_vals.iter().map(|&v| v as u64),
                u128::from(row_masses[witness]),
            );
            Ok(Some(L1Sample {
                row,
                col: b_cols[pick],
                witness: witness as u32,
            }))
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::Workloads;
    use std::collections::HashMap;

    fn run(
        a: &CsrMatrix,
        b: &CsrMatrix,
        seed: Seed,
    ) -> Result<ProtocolRun<Option<L1Sample>>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&L1Sampling, &(), seed)
    }

    #[test]
    fn one_round_and_witness_valid() {
        let a = Workloads::bernoulli_bits(16, 24, 0.3, 1).to_csr();
        let b = Workloads::bernoulli_bits(24, 16, 0.3, 2).to_csr();
        let run = run(&a, &b, Seed(5)).unwrap();
        assert_eq!(run.rounds(), 1);
        let s = run.output.expect("nonzero product");
        // The witness must be a genuine join witness.
        assert_eq!(a.get(s.row as usize, s.witness), 1);
        assert_eq!(b.get(s.witness as usize, s.col), 1);
    }

    #[test]
    fn zero_product_returns_none() {
        let (a, b) = Workloads::disjoint_supports(10, 20, 0.4, 3);
        let run = run(&a.to_csr(), &b.to_csr(), Seed(1)).unwrap();
        assert_eq!(run.output, None);
    }

    #[test]
    fn distribution_proportional_to_entries() {
        // Small deterministic instance: C entries have known masses.
        // A = [2 0; 1 1], B = [1 1; 0 2] (non-negative integers).
        let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 2), (1, 0, 1), (1, 1, 1)]);
        let b = CsrMatrix::from_triplets(2, 2, vec![(0, 0, 1), (0, 1, 1), (1, 1, 2)]);
        let c = a.matmul(&b);
        let l1: i64 = c.triplets().map(|(_, _, v)| v).sum();
        let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
        let trials = 4000u64;
        for t in 0..trials {
            let out = run(&a, &b, Seed(10_000 + t)).unwrap().output.unwrap();
            *counts.entry((out.row, out.col)).or_insert(0) += 1;
        }
        for (r, cidx, v) in c.triplets() {
            let expect = trials as f64 * v as f64 / l1 as f64;
            let got = *counts.get(&(r, cidx)).unwrap_or(&0) as f64;
            assert!(
                (got - expect).abs() < 5.0 * expect.sqrt() + 20.0,
                "entry ({r},{cidx}) value {v}: got {got}, expect {expect}"
            );
        }
        // No samples outside the support.
        assert_eq!(counts.values().sum::<u64>(), trials);
        assert!(counts.len() <= c.nnz());
    }

    #[test]
    fn communication_budget() {
        let a = Workloads::bernoulli_bits(64, 128, 0.8, 7).to_csr();
        let b = Workloads::bernoulli_bits(128, 64, 0.8, 8).to_csr();
        let run = run(&a, &b, Seed(2)).unwrap();
        // ~n * (varint mass + log n index) bits.
        assert!(
            run.bits() < 128 * 48,
            "l1-sampling cost {} above O(n log n)",
            run.bits()
        );
    }

    #[test]
    fn rejects_negative() {
        let a = Workloads::integer_csr(5, 5, 0.5, 3, true, 9);
        let b = Workloads::integer_csr(5, 5, 0.5, 3, false, 10);
        assert!(run(&a, &b, Seed(0)).is_err());
    }
}
