//! Algorithm 4 / Theorem 5.1 / Corollary 5.2: `ℓp`-(φ, ε) heavy hitters
//! of `AB` for (non-negative) integer matrices, `p ∈ (0, 2]`, in `O(1)`
//! rounds and `Õ(√φ/ε · n)` bits.
//!
//! Pipeline: (1) both parties learn `‖C‖_p^p` — exactly via Remark 2 for
//! `p = 1`, via an Algorithm 1 sub-phase otherwise; (2) Alice *thins*
//! her matrix (binomial sampling of each unit) at rate `β` chosen so
//! that heavy entries keep `Θ̃((pφ/ε)²)` surviving mass — enough for
//! Chernoff to separate `φ`-heavy from `(φ−ε)`-light — while
//! `‖C^β‖₀ = Õ(φ/ε²)` stays tiny; (3) the Lemma 2.5 sparse-multiplication
//! phases recover `C^β` as additive shares; (4) Alice ships only her
//! share's entries above a noise floor, and Bob thresholds the combined
//! values, reporting `S` with `HH_φ ⊆ S ⊆ HH_{φ−ε}`.

use crate::config::{check_phi_eps, Constants};
use crate::exact_l1;
use crate::lp_norm::{self, LpParams};
use crate::protocol::Protocol;
use crate::result::{HeavyHitters, HhPair, ProtocolRun};
use crate::session::{ProductDims, SessionCtx};
use crate::sparse_matmul;
use mpest_comm::{execute_split, CommError, Exec, Link, Seed};
use mpest_matrix::{CsrMatrix, PNorm};
use rand::Rng;

/// Parameters of the general-matrix heavy-hitter protocol.
#[derive(Debug, Clone, Copy)]
pub struct HhGeneralParams {
    /// The norm exponent `p ∈ (0, 2]`.
    pub p: f64,
    /// Heavy-hitter threshold `φ`.
    pub phi: f64,
    /// Approximation slack `ε` (`0 < ε ≤ φ ≤ 1`).
    pub eps: f64,
    /// Protocol constants.
    pub consts: Constants,
}

impl HhGeneralParams {
    /// Convenience constructor with default constants.
    #[must_use]
    pub fn new(p: f64, phi: f64, eps: f64) -> Self {
        Self {
            p,
            phi,
            eps,
            consts: Constants::default(),
        }
    }

    fn validate(&self) -> Result<(), CommError> {
        check_phi_eps(self.phi, self.eps)?;
        if !(self.p > 0.0 && self.p <= 2.0) {
            return Err(CommError::protocol(format!(
                "heavy hitters support p in (0, 2], got {}",
                self.p
            )));
        }
        Ok(())
    }

    fn is_exact_l1(&self) -> bool {
        (self.p - 1.0).abs() < 1e-12
    }

    /// Accuracy for the Algorithm 1 sub-phase when `p ≠ 1`.
    fn sub_eps(&self) -> f64 {
        (self.eps / (2.0 * self.phi)).clamp(0.05, 1.0 / 3.0)
    }

    /// Thinning rate from the norm mass (both parties compute this
    /// identically from the shared estimate).
    fn beta(&self, lp_pow: f64, cells: f64) -> f64 {
        if lp_pow <= 0.0 {
            return 1.0;
        }
        let t = (self.phi * lp_pow).powf(1.0 / self.p); // linear HH threshold
        let delta = (self.eps / (8.0 * self.p * self.phi)).min(0.5);
        let mu_min = self.consts.hh_mean_const * 3.0 * cells.ln() / (delta * delta);
        (mu_min / t).min(1.0)
    }
}

/// Binomial(`n`, `q`) sampling (unit-level thinning of a matrix entry).
fn binomial(rng: &mut impl Rng, n: i64, q: f64) -> i64 {
    debug_assert!(n >= 0);
    if q >= 1.0 {
        return n;
    }
    if n <= 4096 {
        let mut c = 0i64;
        for _ in 0..n {
            if rng.gen::<f64>() < q {
                c += 1;
            }
        }
        c
    } else {
        // Normal approximation for very large entries (poly-bounded model).
        let mean = n as f64 * q;
        let sd = (n as f64 * q * (1.0 - q)).sqrt();
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + sd * z).round().clamp(0.0, n as f64) as i64
    }
}

/// The Algorithm 4 / Theorem 5.1 protocol as a [`Protocol`]:
/// `(φ, ε)`-heavy hitters for non-negative integer matrices in `O(1)`
/// rounds and `Õ(√φ/ε·n)` bits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HhGeneral;

impl Protocol for HhGeneral {
    type Params = HhGeneralParams;
    type Output = HeavyHitters;

    fn name(&self) -> &'static str {
        "hh-general"
    }

    fn execute(
        &self,
        ctx: &SessionCtx<'_>,
        params: &HhGeneralParams,
    ) -> Result<ProtocolRun<HeavyHitters>, CommError> {
        let (a, b) = ctx.csr_halves();
        run_unchecked(a, b, ctx.dims(), params, ctx.seed(), ctx.executor())
    }
}

pub(crate) fn run_unchecked(
    a: Option<&CsrMatrix>,
    b: Option<&CsrMatrix>,
    dims: ProductDims,
    params: &HhGeneralParams,
    seed: Seed,
    exec: Exec<'_>,
) -> Result<ProtocolRun<HeavyHitters>, CommError> {
    params.validate()?;
    // Each process validates only the halves it holds.
    if a.is_some_and(|m| !m.is_nonnegative()) || b.is_some_and(|m| !m.is_nonnegative()) {
        return Err(CommError::protocol(
            "Algorithm 4 requires entrywise non-negative matrices".to_string(),
        ));
    }
    let pub_seed = seed.derive("public");
    let alice_seed = seed.derive("alice");
    let cells = (dims.a_rows * dims.b_cols).max(2) as f64;
    let p = params.p;
    let pnorm = PNorm::P(p);
    let b_cols = dims.b_cols;
    let out_rows = dims.a_rows;
    let lp_params = LpParams {
        p: pnorm,
        eps: params.sub_eps(),
        consts: params.consts,
        beta_override: None,
    };

    let outcome = execute_split(
        exec,
        a,
        b,
        |link: &Link<'_>, a: &CsrMatrix| {
            // Phase 1: learn ‖C‖_p^p.
            let (lp_pow, mm_base): (f64, u16) = if params.is_exact_l1() {
                (exact_l1::exchange_alice(link, 0, a)? as f64, 1)
            } else {
                lp_norm::alice_phase(
                    link,
                    0,
                    a,
                    b_cols,
                    &lp_params,
                    pub_seed.derive("hh-lp"),
                    alice_seed.derive("hh-lp"),
                )?;
                let est: f64 = link.recv("hh-lp-estimate")?;
                (est.max(0.0), 3)
            };
            // Phase 2: thin.
            let beta = params.beta(lp_pow, cells);
            let mut rng = alice_seed.derive("thin").rng();
            let thinned = CsrMatrix::from_triplets(
                a.rows(),
                a.cols(),
                a.triplets()
                    .map(|(r, c, v)| (r, c, binomial(&mut rng, v, beta)))
                    .filter(|&(_, _, v)| v != 0)
                    .collect(),
            );
            // Phase 3: sparse multiplication shares.
            let ca = sparse_matmul::alice_phase(link, mm_base, &thinned, b_cols, false)?;
            // Phase 4: ship entries of C_A above the noise floor.
            let tau_keep = beta * (params.eps * lp_pow).powf(1.0 / p) / 8.0;
            let kept: Vec<(u32, u32, i64)> = ca
                .into_entries()
                .into_iter()
                .filter(|&(_, _, v)| v as f64 > tau_keep)
                .collect();
            link.send(mm_base + 2, "hh-alice-heavy-share", &kept)?;
            Ok(())
        },
        |link: &Link<'_>, b: &CsrMatrix| {
            let (lp_pow, mm_base): (f64, u16) = if params.is_exact_l1() {
                (exact_l1::exchange_bob(link, 0, b)? as f64, 1)
            } else {
                let est =
                    lp_norm::bob_phase(link, 0, b, &lp_params, pub_seed.derive("hh-lp"), None)?;
                link.send(2, "hh-lp-estimate", &est)?;
                (est.max(0.0), 3)
            };
            let beta = params.beta(lp_pow, cells);
            let cb = sparse_matmul::bob_phase(link, mm_base, b, out_rows, false)?;
            let kept: Vec<(u32, u32, i64)> = link.recv("hh-alice-heavy-share")?;
            // Combine and threshold.
            let tau_out = beta * ((params.phi - params.eps / 2.0).max(0.0) * lp_pow).powf(1.0 / p);
            let mut combined = cb;
            for (r, c, v) in kept {
                if (r as usize) < out_rows && (c as usize) < b.cols() {
                    combined.add(r, c, v);
                } else {
                    return Err(CommError::protocol("share entry out of range".to_string()));
                }
            }
            let pairs = combined
                .into_entries()
                .into_iter()
                .filter(|&(_, _, v)| v as f64 >= tau_out && v > 0)
                .map(|(r, c, v)| HhPair {
                    row: r,
                    col: c,
                    estimate: v as f64 / beta,
                })
                .collect();
            Ok(HeavyHitters { pairs })
        },
    )?;
    Ok(ProtocolRun {
        output: outcome.bob,
        transcript: outcome.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpest_matrix::{norms, stats, Workloads};

    fn run(
        a: &CsrMatrix,
        b: &CsrMatrix,
        params: &HhGeneralParams,
        seed: Seed,
    ) -> Result<ProtocolRun<HeavyHitters>, CommError> {
        crate::Session::new(a.clone(), b.clone()).run_seeded(&HhGeneral, params, seed)
    }

    /// Checks the containment HH_phi ⊆ S ⊆ HH_{phi−eps} on a run.
    fn containment_ok(a: &CsrMatrix, b: &CsrMatrix, params: &HhGeneralParams, seed: Seed) -> bool {
        let run = run(a, b, params, seed).unwrap();
        let got = run.output.positions();
        let must = stats::heavy_hitters_of_product(a, b, PNorm::P(params.p), params.phi);
        let may =
            stats::heavy_hitters_of_product(a, b, PNorm::P(params.p), params.phi - params.eps);
        must.iter().all(|pos| got.contains(pos)) && got.iter().all(|pos| may.contains(pos))
    }

    #[test]
    fn exact_path_p1_containment() {
        let (abit, bbit, _) = Workloads::planted_pairs(32, 64, 0.05, &[(3, 7), (11, 20)], 40, 1);
        let (a, b) = (abit.to_csr(), bbit.to_csr());
        let c = a.matmul(&b);
        let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
        let phi = 35.0 / l1; // planted entries (>= 40) are phi-heavy
        let params = HhGeneralParams::new(1.0, phi.min(0.9), (phi / 2.0).min(0.4));
        let mut ok = 0;
        for t in 0..9 {
            if containment_ok(&a, &b, &params, Seed(100 + t)) {
                ok += 1;
            }
        }
        assert!(ok >= 7, "p=1 containment failed too often: {ok}/9");
    }

    #[test]
    fn planted_pairs_always_reported_p1() {
        let (abit, bbit, planted) = Workloads::planted_pairs(32, 64, 0.04, &[(5, 5)], 48, 2);
        let (a, b) = (abit.to_csr(), bbit.to_csr());
        let c = a.matmul(&b);
        let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
        let phi = (40.0 / l1).min(0.9);
        let params = HhGeneralParams::new(1.0, phi, (phi / 2.0).min(0.4));
        for t in 0..5 {
            let run = run(&a, &b, &params, Seed(300 + t)).unwrap();
            for &(i, j) in &planted {
                assert!(
                    run.output.contains(i, j),
                    "planted ({i},{j}) missing at seed {t}"
                );
            }
        }
    }

    #[test]
    fn thinning_path_activates_and_preserves_planted() {
        // Crank the Chernoff constant down so beta < 1 at laptop scale.
        let (abit, bbit, planted) = Workloads::planted_pairs(40, 96, 0.08, &[(2, 9)], 80, 3);
        let (a, b) = (abit.to_csr(), bbit.to_csr());
        let c = a.matmul(&b);
        let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
        let phi = (60.0 / l1).min(0.9);
        // Tiny Chernoff constant: forces beta < 1 at this scale so the
        // thinning machinery is exercised (noise correspondingly higher).
        let mut consts = Constants::practical();
        consts.hh_mean_const = 0.005;
        let params = HhGeneralParams {
            p: 1.0,
            phi,
            eps: (phi / 2.0).min(0.4),
            consts,
        };
        let beta = params.beta(l1, (40 * 96) as f64);
        assert!(beta < 1.0, "thinning should activate (beta = {beta})");
        let mut hit = 0;
        for t in 0..9 {
            let run = run(&a, &b, &params, Seed(700 + t)).unwrap();
            if planted.iter().all(|&(i, j)| run.output.contains(i, j)) {
                hit += 1;
            }
        }
        assert!(hit >= 6, "planted pair lost under thinning: {hit}/9");
    }

    #[test]
    fn p2_subprotocol_path() {
        let (abit, bbit, _) = Workloads::planted_pairs(28, 48, 0.05, &[(1, 2)], 36, 4);
        let (a, b) = (abit.to_csr(), bbit.to_csr());
        let c = a.matmul(&b);
        let l2 = norms::csr_lp_pow(&c, PNorm::TWO);
        let phi = ((36.0f64 * 36.0) / l2 * 0.8).min(0.9);
        let params = HhGeneralParams::new(2.0, phi, (phi / 2.0).min(phi));
        let mut ok = 0;
        for t in 0..9 {
            if containment_ok(&a, &b, &params, Seed(500 + t)) {
                ok += 1;
            }
        }
        assert!(ok >= 5, "p=2 containment failed too often: {ok}/9");
    }

    #[test]
    fn empty_product_reports_nothing() {
        let (abit, bbit) = Workloads::disjoint_supports(16, 32, 0.3, 5);
        let params = HhGeneralParams::new(1.0, 0.5, 0.25);
        let run = run(&abit.to_csr(), &bbit.to_csr(), &params, Seed(1)).unwrap();
        assert!(run.output.pairs.is_empty());
    }

    #[test]
    fn rejects_invalid() {
        let a = CsrMatrix::zeros(4, 4);
        let b = CsrMatrix::zeros(4, 4);
        assert!(run(&a, &b, &HhGeneralParams::new(1.0, 0.1, 0.2), Seed(0)).is_err());
        assert!(run(&a, &b, &HhGeneralParams::new(3.0, 0.5, 0.2), Seed(0)).is_err());
        let neg = Workloads::integer_csr(4, 4, 0.5, 3, true, 1);
        assert!(run(&neg, &b, &HhGeneralParams::new(1.0, 0.5, 0.2), Seed(0)).is_err());
    }

    #[test]
    fn binomial_thinning_moments() {
        let mut rng = Seed(9).rng();
        let n = 200i64;
        let q = 0.3;
        let trials = 2000;
        let mut sum = 0i64;
        for _ in 0..trials {
            let x = binomial(&mut rng, n, q);
            assert!((0..=n).contains(&x));
            sum += x;
        }
        let mean = sum as f64 / trials as f64;
        assert!((mean - 60.0).abs() < 2.0, "binomial mean {mean}");
        // Large-n path.
        let big = binomial(&mut rng, 1_000_000, 0.5);
        assert!((400_000..=600_000).contains(&big));
    }
}
