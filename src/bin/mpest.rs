//! `mpest` — command-line driver for the distributed matrix-product
//! estimation protocols.
//!
//! ```text
//! mpest gen --kind bernoulli --rows 256 --cols 256 --density 0.1 --seed 1 --out a.mtx
//! mpest exact --a a.mtx --b b.mtx
//! mpest run l0 --a a.mtx --b b.mtx --eps 0.2 --seed 7
//! mpest run linf-binary --a a.mtx --b b.mtx --eps 0.25
//! mpest run hh-binary --a a.mtx --b b.mtx --phi 0.01 --hh-eps 0.005
//! ```
//!
//! Matrices use the MatrixMarket-style coordinate format of
//! `mpest_matrix::io` (1-based `row col [value]` triplets).

use mpest::comm::NetworkModel;
use mpest::matrix::io;
use mpest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  mpest gen --kind bernoulli|zipf|integer --rows R --cols C [--density D] [--set-size K]
            [--max-val V] [--seed S] --out FILE
  mpest exact --a FILE --b FILE
  mpest run PROTOCOL --a FILE --b FILE [options]

protocols and their options:
  l0 | l1 | l2 | lp        --eps E [--p P]        (Algorithm 1, 2 rounds)
  lp-baseline              --eps E [--p P]        (one-round [16] baseline)
  exact-l1                                        (Remark 2)
  l1-sample                                       (Remark 3)
  l0-sample                --eps E                (Theorem 3.2)
  sparse-matmul                                   (Lemma 2.5)
  linf-binary              --eps E                (Algorithm 2)
  linf-kappa               --kappa K              (Algorithm 3)
  linf-general             --kappa K              (Theorem 4.8)
  hh-general               --phi F --hh-eps E [--p P]   (Algorithm 4)
  hh-binary                --phi F --hh-eps E [--p P]   (Theorem 5.3)
  at-least-t               --t T [--slack S]      (>= T overlap join)
  trivial | trivial-binary                        (ship A)

common options: --seed S (default 42), --exact (also print ground truth)";

/// Minimal flag parser: `--key value` pairs after the positional words.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<(Vec<String>, Flags), String> {
        let mut positional = Vec::new();
        let mut map = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if key == "exact" {
                    map.insert(key.to_string(), "true".to_string());
                } else {
                    i += 1;
                    let value = args
                        .get(i)
                        .ok_or_else(|| format!("flag --{key} needs a value"))?;
                    map.insert(key.to_string(), value.clone());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok((positional, Flags(map)))
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.str(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.str(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|e| format!("bad --{key}: {e}")),
        }
    }

    fn required_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.required(key)?
            .parse()
            .map_err(|e| format!("bad --{key}: {e}"))
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let (pos, flags) = Flags::parse(args)?;
    match pos.first().map(String::as_str) {
        Some("gen") => cmd_gen(&flags),
        Some("exact") => cmd_exact(&flags),
        Some("run") => {
            let protocol = pos
                .get(1)
                .ok_or_else(|| "run needs a protocol name".to_string())?;
            cmd_run(protocol, &flags)
        }
        _ => Err("expected a subcommand: gen | exact | run".to_string()),
    }
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let kind = flags.required("kind")?;
    let rows: usize = flags.required_num("rows")?;
    let cols: usize = flags.required_num("cols")?;
    let seed: u64 = flags.num("seed", 42)?;
    let out = PathBuf::from(flags.required("out")?);
    let m = match kind {
        "bernoulli" => {
            let density: f64 = flags.num("density", 0.1)?;
            Workloads::bernoulli_bits(rows, cols, density, seed).to_csr()
        }
        "zipf" => {
            let set_size: usize = flags.num("set-size", 12)?;
            Workloads::zipf_sets(rows, cols, set_size.min(cols), 1.1, seed).to_csr()
        }
        "integer" => {
            let density: f64 = flags.num("density", 0.1)?;
            let max_val: i64 = flags.num("max-val", 8)?;
            Workloads::integer_csr(rows, cols, density, max_val, false, seed)
        }
        other => return Err(format!("unknown --kind {other}")),
    };
    io::write_csr(&m, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}x{} matrix with {} nonzeros to {}",
        m.rows(),
        m.cols(),
        m.nnz(),
        out.display()
    );
    Ok(())
}

fn load_pair(flags: &Flags) -> Result<(CsrMatrix, CsrMatrix), String> {
    let a = io::read_csr(Path::new(flags.required("a")?)).map_err(|e| format!("--a: {e}"))?;
    let b = io::read_csr(Path::new(flags.required("b")?)).map_err(|e| format!("--b: {e}"))?;
    if a.cols() != b.rows() {
        return Err(format!(
            "inner dimensions differ: A is {}x{}, B is {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        ));
    }
    Ok((a, b))
}

fn cmd_exact(flags: &Flags) -> Result<(), String> {
    let (a, b) = load_pair(flags)?;
    let c = a.matmul(&b);
    let (linf, (i, j)) = norms::csr_linf(&c);
    println!("exact statistics of C = A*B ({}x{}):", c.rows(), c.cols());
    println!("  ||C||_0   = {}", norms::csr_lp_pow(&c, PNorm::Zero));
    println!("  ||C||_1   = {}", norms::csr_lp_pow(&c, PNorm::ONE));
    println!("  ||C||_2^2 = {}", norms::csr_lp_pow(&c, PNorm::TWO));
    println!("  ||C||_inf = {linf} at ({i}, {j})");
    Ok(())
}

/// Parses a protocol word plus its flags into the uniform request shape.
fn parse_request(protocol: &str, flags: &Flags) -> Result<EstimateRequest, String> {
    Ok(match protocol {
        "l0" | "l1" | "l2" | "lp" => {
            let p = match protocol {
                "l0" => PNorm::Zero,
                "l1" => PNorm::ONE,
                "l2" => PNorm::TWO,
                _ => PNorm::P(flags.required_num::<f64>("p")?),
            };
            EstimateRequest::LpNorm {
                p,
                eps: flags.num("eps", 0.2)?,
            }
        }
        "lp-baseline" => {
            let p = flags.str("p").map_or(Ok(PNorm::Zero), |s| {
                s.parse::<f64>().map(PNorm::P).map_err(|e| e.to_string())
            })?;
            EstimateRequest::LpBaseline {
                p,
                eps: flags.num("eps", 0.2)?,
            }
        }
        "exact-l1" => EstimateRequest::ExactL1,
        "l1-sample" => EstimateRequest::L1Sample,
        "l0-sample" => EstimateRequest::L0Sample {
            eps: flags.num("eps", 0.3)?,
        },
        "sparse-matmul" => EstimateRequest::SparseMatmul,
        "linf-binary" => EstimateRequest::LinfBinary {
            eps: flags.num("eps", 0.25)?,
        },
        "linf-kappa" => EstimateRequest::LinfKappa {
            kappa: flags.num("kappa", 8.0)?,
        },
        "linf-general" => EstimateRequest::LinfGeneral {
            kappa: flags.num("kappa", 4)?,
        },
        "hh-general" | "hh-binary" => {
            let phi: f64 = flags.required_num("phi")?;
            let eps: f64 = flags.num("hh-eps", phi / 2.0)?;
            let p: f64 = flags.num("p", 1.0)?;
            if protocol == "hh-general" {
                EstimateRequest::HhGeneral { p, phi, eps }
            } else {
                EstimateRequest::HhBinary { p, phi, eps }
            }
        }
        "at-least-t" => EstimateRequest::AtLeastTJoin {
            t: flags.required_num("t")?,
            slack: flags.num("slack", 0.5)?,
        },
        "trivial" => EstimateRequest::TrivialCsr,
        "trivial-binary" => EstimateRequest::TrivialBinary,
        other => return Err(format!("unknown protocol {other}")),
    })
}

/// Prints the uniform report: type-erased output, exact bits/rounds, and
/// estimated wall-clock on reference links.
fn print_report(report: &EstimateReport) {
    println!("{}:", report.protocol);
    match &report.output {
        AnyOutput::Scalar(v) => println!("  output     = {v}"),
        AnyOutput::Count(v) => println!("  output     = {v}"),
        AnyOutput::Sample(s) => println!("  output     = {s:?}"),
        AnyOutput::L1Sample(s) => println!("  output     = {s:?}"),
        AnyOutput::Linf(e) => println!("  output     = {e:?}"),
        AnyOutput::HeavyHitters(hh) => {
            println!(
                "  output     = {} pairs {:?}",
                hh.pairs.len(),
                hh.positions()
            );
        }
        AnyOutput::Shares(sh) => println!(
            "  output     = shares with {} nonzeros recovered",
            sh.alice.len() + sh.bob.len()
        ),
        AnyOutput::Exact(stats) => println!("  output     = {stats:?}"),
    }
    println!("  bits       = {}", report.bits());
    println!("  rounds     = {}", report.rounds());
    for (label, model) in [
        ("datacenter", NetworkModel::datacenter()),
        ("wan       ", NetworkModel::wan()),
        ("mobile    ", NetworkModel::mobile()),
    ] {
        println!(
            "  est. time on {label} link: {:.4} s",
            model.seconds(&report.transcript)
        );
    }
}

/// Whether `--exact` has a ground truth to print for this request (the
/// centralized product is only computed when it will be shown).
fn has_exact_line(request: &EstimateRequest) -> bool {
    matches!(
        request,
        EstimateRequest::LpNorm { .. }
            | EstimateRequest::LpBaseline { .. }
            | EstimateRequest::LinfBinary { .. }
            | EstimateRequest::LinfKappa { .. }
            | EstimateRequest::LinfGeneral { .. }
            | EstimateRequest::ExactL1
    )
}

/// Requests that run over the bit-matrix view of the pair.
fn is_binary_request(request: &EstimateRequest) -> bool {
    matches!(
        request,
        EstimateRequest::LinfBinary { .. }
            | EstimateRequest::LinfKappa { .. }
            | EstimateRequest::HhBinary { .. }
            | EstimateRequest::AtLeastTJoin { .. }
            | EstimateRequest::TrivialBinary
    )
}

fn cmd_run(protocol: &str, flags: &Flags) -> Result<(), String> {
    let (a, b) = load_pair(flags)?;
    let seed = Seed(flags.num("seed", 42u64)?);
    let request = parse_request(protocol, flags)?;
    let exact = (flags.str("exact").is_some() && has_exact_line(&request)).then(|| a.matmul(&b));

    // Binary protocols historically accept integer inputs by coercing
    // nonzeros to 1 (the support view); keep that CLI behavior.
    let session = if is_binary_request(&request) && !(a.is_binary() && b.is_binary()) {
        eprintln!("note: binarizing integer inputs (nonzero -> 1) for {protocol}");
        Session::new(BitMatrix::from_csr(&a), BitMatrix::from_csr(&b))
    } else {
        Session::new(a, b)
    }
    .with_seed(seed);
    let report = session
        .estimate_seeded(&request, seed)
        .map_err(|e| e.to_string())?;
    print_report(&report);

    if let Some(c) = exact {
        match &request {
            EstimateRequest::LpNorm { p, .. } | EstimateRequest::LpBaseline { p, .. } => {
                println!("  exact      = {}", norms::csr_lp_pow(&c, *p));
            }
            EstimateRequest::LinfBinary { .. }
            | EstimateRequest::LinfKappa { .. }
            | EstimateRequest::LinfGeneral { .. } => {
                println!("  exact      = {}", norms::csr_linf(&c).0);
            }
            EstimateRequest::ExactL1 => {
                println!("  exact      = {}", norms::csr_lp_pow(&c, PNorm::ONE));
            }
            _ => {}
        }
    }
    Ok(())
}
