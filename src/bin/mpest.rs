//! `mpest` — command-line driver for the distributed matrix-product
//! estimation protocols.
//!
//! ```text
//! mpest gen --kind bernoulli --rows 256 --cols 256 --density 0.1 --seed 1 --out a.mtx
//! mpest exact --a a.mtx --b b.mtx
//! mpest run l0 --a a.mtx --b b.mtx --eps 0.2 --seed 7
//! mpest run linf-binary --a a.mtx --b b.mtx --eps 0.25
//! mpest run hh-binary --a a.mtx --b b.mtx --phi 0.01 --hh-eps 0.005
//! ```
//!
//! Matrices use the MatrixMarket-style coordinate format of
//! `mpest_matrix::io` (1-based `row col [value]` triplets).

use mpest::comm::NetworkModel;
use mpest::matrix::io;
use mpest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  mpest gen --kind bernoulli|zipf|integer --rows R --cols C [--density D] [--set-size K]
            [--max-val V] [--seed S] --out FILE
  mpest exact --a FILE --b FILE
  mpest run PROTOCOL --a FILE --b FILE [options] [--format text|json]
  mpest batch --a FILE --b FILE --requests FILE.jsonl [--workers N] [--seed S]
            [--executor fused|threaded]
  mpest verify [--protocol NAME] [--trials N] [--quick] [--seed S]
  mpest serve --listen ADDR [--workers N] [--io-timeout SECS] [--idle-timeout SECS]
            [--max-sessions N] [--io-mode duplex|blocking] [--no-obs]
            [--trace-out FILE [--trace-format jsonl|chrome]]
  mpest stats --connect ADDR [--format text|json]
  mpest shutdown --connect ADDR
  mpest party --listen ADDR [--side alice|bob] [--io-mode duplex|blocking]
            (--a FILE --b FILE [--updatable]
             | --matrix FILE --peer-rows N --peer-cols N [--peer-binary])
  mpest query PROTOCOL (--connect ADDR | --party ADDR)
            (--a FILE --b FILE
             | --matrix FILE --peer-rows N --peer-cols N [--peer-binary]
               [--peer-fp FP] (--party only))
            [options] [--side alice|bob] [--format text|json]
            [--at-epoch N (--connect only)]
            [--io-timeout SECS] [--reply-timeout SECS (--connect only)]
            [--io-mode duplex|blocking (--party only)]
  mpest update (--connect ADDR | --party ADDR) --a FILE --b FILE --ops FILE.jsonl
            [--out-a FILE] [--out-b FILE] [--io-timeout SECS]

verify runs the Monte-Carlo statistical-guarantee sweep: every protocol
(or just --protocol NAME) over generated dense/sparse/power-law/skewed/
integer workloads, N seeded trials each through the batch engine, scored
against exact references and gated on each protocol's (eps, delta)
contract. Exits nonzero on any contract violation. --quick shrinks the
matrices and trial counts to the CI-smoke scale.

serve runs the estimation daemon: clients send requests plus matrix
fingerprints, upload each matrix pair once (fingerprint-keyed session
cache, LRU-capped at --max-sessions, default 64, 0 = unbounded), and
get back outputs + transcripts bit-identical to a local run under the
same seed, with real-socket byte accounting. --io-timeout (default 30,
0 = none) bounds in-flight frames and writes; --idle-timeout (default
0 = none) bounds how long a connection may sit idle between queries.
serve records an observability registry (cache hits, per-phase
latency histograms, reactor wakeup causes, spool depth, backpressure
transitions) alongside the core counters; --no-obs drops the extended
tier to zero cost. --trace-out streams one span per query (decode/
lookup/run/encode phase timings, cache tag) as JSON lines, or as a
chrome://tracing array with --trace-format chrome. stats --connect
pulls the live registry from a running daemon (codec v6); --format
json emits the raw snapshot.
query --connect talks to it: --reply-timeout (default 600, 0 = wait
forever) bounds the wait for a reply to start, generous because the
server may legitimately compute a heavy batch for minutes. party hosts
one side (default bob) of a remote two-party run; query --party plays
the other side so every protocol message crosses the socket, matching
the initiator's --io-timeout for the run (host-clamped at 600s).

--io-mode picks the I/O engine: duplex (default) is the readiness-
driven reactor — the serve daemon multiplexes every connection on one
thread, and party runs progress both directions simultaneously so big
simultaneous rounds can never deadlock; blocking keeps the reference
thread-per-connection implementation (big simultaneous payloads
surface the documented write-stall as a typed timeout).

party/query --matrix is the storage-split form: each process loads ONLY
its own half; the peer is known by shape and representation alone
(--peer-rows/--peer-cols/--peer-binary). The connection opens with a
bidirectional party-hello handshake — shape, binariness, content
fingerprint, and per-side epoch are cross-checked both ways, and any
divergence fails typed before a protocol frame moves. query --peer-fp
additionally pins the host half's content fingerprint (as printed in a
previous run's party-hello, decimal or 0x-hex). Outputs and transcripts
are bit-identical to an in-process run over the assembled pair.

batch requests file: one JSON object per line, {\"protocol\": NAME, ...flags},
e.g. {\"protocol\": \"l0\", \"eps\": 0.2} — keys match the run flags
below ('#' lines and blank lines are skipped). The batch executes across a
worker pool (--workers 0 = one per core) and is bit-identical to running
the requests sequentially in file order. A request may pin \"epoch\": N
to a session snapshot: the batch refuses to run if the loaded pair's
epoch (0 for freshly loaded files) differs from any pinned epoch.

update pushes a live mutation batch into the session a daemon caches
for the pair (--connect), or into the half a `mpest party` host serves
(--party, the host must be started with --updatable). The local files
are the mirror: their fingerprints and epoch name the remote session,
the ops apply locally after the remote acknowledges, and the mutated
pair is written to --out-a/--out-b (defaulting to overwriting --a/--b)
so the next query or update starts from the synced snapshot. The ops
file is one JSON object per line:
  {\"op\": \"set\",    \"side\": \"alice|bob\", \"row\": R, \"col\": C, \"val\": V}
  {\"op\": \"delete\", \"side\": \"alice|bob\", \"row\": R, \"col\": C}
  {\"op\": \"append-row\", \"side\": \"alice|bob\", \"entries\": \"IDX:VAL,IDX:VAL,...\"}
query --at-epoch N pins a daemon query to an exact session epoch; the
daemon answers only at that epoch and otherwise replies with a typed
stale-epoch error naming its current identity.

protocols and their options:
  l0 | l1 | l2 | lp        --eps E [--p P]        (Algorithm 1, 2 rounds)
  lp-baseline              --eps E [--p P]        (one-round [16] baseline)
  exact-l1                                        (Remark 2)
  l1-sample                                       (Remark 3)
  l0-sample                --eps E                (Theorem 3.2)
  sparse-matmul                                   (Lemma 2.5)
  linf-binary              --eps E                (Algorithm 2)
  linf-kappa               --kappa K              (Algorithm 3)
  linf-general             --kappa K              (Theorem 4.8)
  hh-general               --phi F --hh-eps E [--p P]   (Algorithm 4)
  hh-binary                --phi F --hh-eps E [--p P]   (Theorem 5.3)
  at-least-t               --t T [--slack S]      (>= T overlap join)
  trivial | trivial-binary                        (ship A)

common options: --seed S (default 42), --exact (also print ground truth),
  --executor fused|threaded (default fused; bit-identical results, the fused
  single-thread executor skips the per-query thread-spawn/channel overhead)";

/// Minimal flag parser: `--key value` pairs after the positional words.
struct Flags(HashMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<(Vec<String>, Flags), String> {
        let mut positional = Vec::new();
        let mut map = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if key == "exact"
                    || key == "quick"
                    || key == "updatable"
                    || key == "peer-binary"
                    || key == "no-obs"
                {
                    map.insert(key.to_string(), "true".to_string());
                } else {
                    i += 1;
                    let value = args
                        .get(i)
                        .ok_or_else(|| format!("flag --{key} needs a value"))?;
                    map.insert(key.to_string(), value.clone());
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok((positional, Flags(map)))
    }

    fn str(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.str(key).ok_or_else(|| format!("missing --{key}"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.str(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|e| format!("bad --{key}: {e}")),
        }
    }

    fn required_num<T: std::str::FromStr>(&self, key: &str) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        self.required(key)?
            .parse()
            .map_err(|e| format!("bad --{key}: {e}"))
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let (pos, flags) = Flags::parse(args)?;
    match pos.first().map(String::as_str) {
        Some("gen") => cmd_gen(&flags),
        Some("exact") => cmd_exact(&flags),
        Some("run") => {
            let protocol = pos
                .get(1)
                .ok_or_else(|| "run needs a protocol name".to_string())?;
            cmd_run(protocol, &flags)
        }
        Some("batch") => cmd_batch(&flags),
        Some("verify") => {
            if let Some(extra) = pos.get(1) {
                return Err(format!(
                    "verify takes no positional arguments (got {extra:?}); \
                     use --protocol {extra} to restrict the sweep"
                ));
            }
            cmd_verify(&flags)
        }
        Some("serve") => cmd_serve(&flags),
        Some("stats") => cmd_stats(&flags),
        Some("shutdown") => cmd_shutdown(&flags),
        Some("party") => cmd_party(&flags),
        Some("query") => {
            let protocol = pos
                .get(1)
                .ok_or_else(|| "query needs a protocol name".to_string())?;
            cmd_query(protocol, &flags)
        }
        Some("update") => cmd_update(&flags),
        _ => Err(
            "expected a subcommand: gen | exact | run | batch | verify | serve | stats \
             | shutdown | party | query | update"
                .to_string(),
        ),
    }
}

fn cmd_gen(flags: &Flags) -> Result<(), String> {
    let kind = flags.required("kind")?;
    let rows: usize = flags.required_num("rows")?;
    let cols: usize = flags.required_num("cols")?;
    let seed: u64 = flags.num("seed", 42)?;
    let out = PathBuf::from(flags.required("out")?);
    let m = match kind {
        "bernoulli" => {
            let density: f64 = flags.num("density", 0.1)?;
            Workloads::bernoulli_bits(rows, cols, density, seed).to_csr()
        }
        "zipf" => {
            let set_size: usize = flags.num("set-size", 12)?;
            Workloads::zipf_sets(rows, cols, set_size.min(cols), 1.1, seed).to_csr()
        }
        "integer" => {
            let density: f64 = flags.num("density", 0.1)?;
            let max_val: i64 = flags.num("max-val", 8)?;
            Workloads::integer_csr(rows, cols, density, max_val, false, seed)
        }
        other => return Err(format!("unknown --kind {other}")),
    };
    io::write_csr(&m, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}x{} matrix with {} nonzeros to {}",
        m.rows(),
        m.cols(),
        m.nnz(),
        out.display()
    );
    Ok(())
}

/// Parses the `--executor` flag (default: fused).
fn parse_executor(flags: &Flags) -> Result<ExecBackend, String> {
    match flags.str("executor") {
        None => Ok(ExecBackend::default()),
        Some(s) => s
            .parse::<ExecBackend>()
            .map_err(|e| format!("--executor: {e}")),
    }
}

fn load_pair(flags: &Flags) -> Result<(CsrMatrix, CsrMatrix), String> {
    let a = io::read_csr(Path::new(flags.required("a")?)).map_err(|e| format!("--a: {e}"))?;
    let b = io::read_csr(Path::new(flags.required("b")?)).map_err(|e| format!("--b: {e}"))?;
    if a.cols() != b.rows() {
        return Err(format!(
            "inner dimensions differ: A is {}x{}, B is {}x{}",
            a.rows(),
            a.cols(),
            b.rows(),
            b.cols()
        ));
    }
    Ok((a, b))
}

fn cmd_exact(flags: &Flags) -> Result<(), String> {
    let (a, b) = load_pair(flags)?;
    let c = a.matmul(&b);
    let (linf, (i, j)) = norms::csr_linf(&c);
    println!("exact statistics of C = A*B ({}x{}):", c.rows(), c.cols());
    println!("  ||C||_0   = {}", norms::csr_lp_pow(&c, PNorm::Zero));
    println!("  ||C||_1   = {}", norms::csr_lp_pow(&c, PNorm::ONE));
    println!("  ||C||_2^2 = {}", norms::csr_lp_pow(&c, PNorm::TWO));
    println!("  ||C||_inf = {linf} at ({i}, {j})");
    Ok(())
}

/// The canonical protocol names, from the catalog — the single source
/// of truth for "which protocols exist" in error messages and the
/// verify filter.
fn catalog_names() -> Vec<&'static str> {
    EstimateRequest::catalog()
        .iter()
        .map(EstimateRequest::name)
        .collect()
}

/// The "unknown protocol" error: names every valid protocol (from
/// [`EstimateRequest::catalog`]) plus the CLI aliases, instead of a
/// bare "unknown protocol X".
fn unknown_protocol(name: &str) -> String {
    format!(
        "unknown protocol {name:?}; valid protocols: {} \
         (aliases: l0 | l1 | l2 for lp at p = 0/1/2, trivial for trivial-csr, \
         at-least-t for at-least-t-join)",
        catalog_names().join(", ")
    )
}

/// Resolves a protocol word (canonical name or CLI alias) to its
/// canonical catalog name.
fn canonical_protocol(name: &str) -> Result<&'static str, String> {
    let target = match name {
        "l0" | "l1" | "l2" => "lp",
        "trivial" => "trivial-csr",
        "at-least-t" => "at-least-t-join",
        other => other,
    };
    catalog_names()
        .into_iter()
        .find(|n| *n == target)
        .ok_or_else(|| unknown_protocol(name))
}

/// Parses a protocol word plus its flags into the uniform request shape.
fn parse_request(protocol: &str, flags: &Flags) -> Result<EstimateRequest, String> {
    Ok(match protocol {
        "l0" | "l1" | "l2" | "lp" => {
            let p = match protocol {
                "l0" => PNorm::Zero,
                "l1" => PNorm::ONE,
                "l2" => PNorm::TWO,
                _ => PNorm::P(flags.required_num::<f64>("p")?),
            };
            EstimateRequest::LpNorm {
                p,
                eps: flags.num("eps", 0.2)?,
            }
        }
        "lp-baseline" => {
            let p = flags.str("p").map_or(Ok(PNorm::Zero), |s| {
                s.parse::<f64>().map(PNorm::P).map_err(|e| e.to_string())
            })?;
            EstimateRequest::LpBaseline {
                p,
                eps: flags.num("eps", 0.2)?,
            }
        }
        "exact-l1" => EstimateRequest::ExactL1,
        "l1-sample" => EstimateRequest::L1Sample,
        "l0-sample" => EstimateRequest::L0Sample {
            eps: flags.num("eps", 0.3)?,
        },
        "sparse-matmul" => EstimateRequest::SparseMatmul,
        "linf-binary" => EstimateRequest::LinfBinary {
            eps: flags.num("eps", 0.25)?,
        },
        "linf-kappa" => EstimateRequest::LinfKappa {
            kappa: flags.num("kappa", 8.0)?,
        },
        "linf-general" => EstimateRequest::LinfGeneral {
            kappa: flags.num("kappa", 4)?,
        },
        "hh-general" | "hh-binary" => {
            let phi: f64 = flags.required_num("phi")?;
            let eps: f64 = flags.num("hh-eps", phi / 2.0)?;
            let p: f64 = flags.num("p", 1.0)?;
            if protocol == "hh-general" {
                EstimateRequest::HhGeneral { p, phi, eps }
            } else {
                EstimateRequest::HhBinary { p, phi, eps }
            }
        }
        "at-least-t" | "at-least-t-join" => EstimateRequest::AtLeastTJoin {
            t: flags.required_num("t")?,
            slack: flags.num("slack", 0.5)?,
        },
        "trivial" | "trivial-csr" => EstimateRequest::TrivialCsr,
        "trivial-binary" => EstimateRequest::TrivialBinary,
        other => return Err(unknown_protocol(other)),
    })
}

/// Output format of `run` and `query` (`--format`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn parse_format(flags: &Flags) -> Result<Format, String> {
    match flags.str("format") {
        None | Some("text") => Ok(Format::Text),
        Some("json") => Ok(Format::Json),
        Some(other) => Err(format!(
            "unknown --format {other:?} (expected \"text\" or \"json\")"
        )),
    }
}

/// Renders a type-erased output as a JSON value (all fields numeric, so
/// no escaping is needed here; string-valued fields go through the
/// shared `mpest-bench` `json_escape` in [`report_json`]).
fn output_json(output: &AnyOutput) -> String {
    let pairs_json = |pairs: &[HhPair]| {
        let body: Vec<String> = pairs
            .iter()
            .map(|p| {
                format!(
                    "{{\"row\": {}, \"col\": {}, \"estimate\": {}}}",
                    p.row, p.col, p.estimate
                )
            })
            .collect();
        format!("[{}]", body.join(", "))
    };
    let triplets_json = |triplets: &[(u32, u32, i64)]| {
        let body: Vec<String> = triplets
            .iter()
            .map(|&(i, j, v)| format!("[{i}, {j}, {v}]"))
            .collect();
        format!("[{}]", body.join(", "))
    };
    match output {
        AnyOutput::Scalar(v) => format!("{{\"kind\": \"scalar\", \"value\": {v}}}"),
        AnyOutput::Count(v) => format!("{{\"kind\": \"count\", \"value\": {v}}}"),
        AnyOutput::Sample(MatrixSample::Sampled { row, col, value }) => {
            format!("{{\"kind\": \"sample\", \"row\": {row}, \"col\": {col}, \"value\": {value}}}")
        }
        AnyOutput::Sample(MatrixSample::ZeroMatrix) => {
            "{\"kind\": \"sample\", \"zero_matrix\": true}".to_string()
        }
        AnyOutput::Sample(MatrixSample::Failed) => {
            "{\"kind\": \"sample\", \"failed\": true}".to_string()
        }
        AnyOutput::L1Sample(None) => "{\"kind\": \"l1-sample\", \"empty\": true}".to_string(),
        AnyOutput::L1Sample(Some(s)) => format!(
            "{{\"kind\": \"l1-sample\", \"row\": {}, \"col\": {}, \"witness\": {}}}",
            s.row, s.col, s.witness
        ),
        AnyOutput::Linf(e) => format!(
            "{{\"kind\": \"linf\", \"estimate\": {}, \"level\": {}}}",
            e.estimate,
            e.level.map_or("null".to_string(), |l| l.to_string())
        ),
        AnyOutput::HeavyHitters(hh) => format!(
            "{{\"kind\": \"heavy-hitters\", \"count\": {}, \"pairs\": {}}}",
            hh.pairs.len(),
            pairs_json(&hh.pairs)
        ),
        AnyOutput::Shares(sh) => format!(
            "{{\"kind\": \"shares\", \"alice\": {}, \"bob\": {}}}",
            triplets_json(&sh.alice),
            triplets_json(&sh.bob)
        ),
        AnyOutput::Exact(st) => format!(
            "{{\"kind\": \"exact\", \"l0\": {}, \"l1\": {}, \"l2_sq\": {}, \"linf\": {}, \
             \"argmax\": [{}, {}]}}",
            st.l0, st.l1, st.l2_sq, st.linf.0, st.linf.1 .0, st.linf.1 .1
        ),
    }
}

/// Renders a report as one JSON object. `extra` is injected verbatim
/// after the standard fields (callers pass pre-rendered key/value pairs,
/// e.g. wire-byte accounting for `query`).
fn report_json(report: &EstimateReport, extra: &[String]) -> String {
    use mpest_bench::report::json_escape;
    let mut fields = vec![
        format!("\"protocol\": \"{}\"", json_escape(report.protocol)),
        format!("\"output\": {}", output_json(&report.output)),
        format!("\"bits\": {}", report.bits()),
        format!("\"rounds\": {}", report.rounds()),
        format!("\"messages\": {}", report.transcript.messages()),
    ];
    fields.extend_from_slice(extra);
    format!("{{{}}}", fields.join(", "))
}

/// One-line rendering of a type-erased output; `compact` trades detail
/// for width (batch listings print one query per line).
fn output_summary(output: &AnyOutput, compact: bool) -> String {
    match output {
        AnyOutput::Scalar(v) => format!("{v}"),
        AnyOutput::Count(v) => format!("{v}"),
        AnyOutput::Sample(s) => format!("{s:?}"),
        AnyOutput::L1Sample(s) => format!("{s:?}"),
        AnyOutput::Linf(e) if compact => format!("{:.2}", e.estimate),
        AnyOutput::Linf(e) => format!("{e:?}"),
        AnyOutput::HeavyHitters(hh) if compact => format!("{} pairs", hh.pairs.len()),
        AnyOutput::HeavyHitters(hh) => format!("{} pairs {:?}", hh.pairs.len(), hh.positions()),
        AnyOutput::Shares(sh) => format!(
            "shares with {} nonzeros recovered",
            sh.alice.len() + sh.bob.len()
        ),
        AnyOutput::Exact(stats) => format!("{stats:?}"),
    }
}

/// Prints the uniform report: type-erased output, exact bits/rounds, and
/// estimated wall-clock on reference links.
fn print_report(report: &EstimateReport) {
    println!("{}:", report.protocol);
    println!("  output     = {}", output_summary(&report.output, false));
    println!("  bits       = {}", report.bits());
    println!("  rounds     = {}", report.rounds());
    for (label, model) in [
        ("datacenter", NetworkModel::datacenter()),
        ("wan       ", NetworkModel::wan()),
        ("mobile    ", NetworkModel::mobile()),
    ] {
        println!(
            "  est. time on {label} link: {:.4} s",
            model.seconds(&report.transcript)
        );
    }
}

/// Whether `--exact` has a ground truth to print for this request (the
/// centralized product is only computed when it will be shown).
fn has_exact_line(request: &EstimateRequest) -> bool {
    matches!(
        request,
        EstimateRequest::LpNorm { .. }
            | EstimateRequest::LpBaseline { .. }
            | EstimateRequest::LinfBinary { .. }
            | EstimateRequest::LinfKappa { .. }
            | EstimateRequest::LinfGeneral { .. }
            | EstimateRequest::ExactL1
    )
}

/// Requests that run over the bit-matrix view of the pair.
fn is_binary_request(request: &EstimateRequest) -> bool {
    matches!(
        request,
        EstimateRequest::LinfBinary { .. }
            | EstimateRequest::LinfKappa { .. }
            | EstimateRequest::HhBinary { .. }
            | EstimateRequest::AtLeastTJoin { .. }
            | EstimateRequest::TrivialBinary
    )
}

/// Whether `token` is a number by the JSON grammar (RFC 8259 §6):
/// optional minus, integer part without leading zeros, optional
/// fraction, optional exponent. Stricter than `f64::from_str`, which
/// would also accept `inf`, `nan`, and `+1`.
fn is_json_number(token: &str) -> bool {
    let b = token.as_bytes();
    let mut i = 0;
    if b.first() == Some(&b'-') {
        i += 1;
    }
    match b.get(i) {
        Some(b'0') => i += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(i), Some(b'0'..=b'9')) {
                i += 1;
            }
        }
        _ => return false,
    }
    if b.get(i) == Some(&b'.') {
        i += 1;
        let frac_start = i;
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
        if i == frac_start {
            return false;
        }
    }
    if matches!(b.get(i), Some(b'e' | b'E')) {
        i += 1;
        if matches!(b.get(i), Some(b'+' | b'-')) {
            i += 1;
        }
        let exp_start = i;
        while matches!(b.get(i), Some(b'0'..=b'9')) {
            i += 1;
        }
        if i == exp_start {
            return false;
        }
    }
    i == b.len()
}

/// Reads the four hex digits of a `\uXXXX` escape. On entry `*i` is the
/// index of the `u`; on success `*i` is the index of the last hex digit
/// (the caller's loop step then moves past it). Strict: exactly four
/// ASCII hex digits, no signs or whitespace (`u32::from_str_radix`
/// alone would accept `+06c`).
fn parse_u_escape(line: &str, i: &mut usize) -> Result<u32, String> {
    let hex = line
        .get(*i + 1..*i + 5)
        .filter(|h| h.bytes().all(|b| b.is_ascii_hexdigit()))
        .ok_or_else(|| "bad \\u escape: expected exactly four hex digits".to_string())?;
    *i += 4;
    Ok(u32::from_str_radix(hex, 16).expect("four hex digits"))
}

/// Minimal JSON-object parser for the batch request file: one flat
/// `{"key": value, ...}` per line, values being strings, numbers,
/// booleans, or null. Everything is surfaced as strings so request
/// parsing reuses the exact flag-parsing path of `mpest run`.
fn parse_jsonl_object(line: &str) -> Result<HashMap<String, String>, String> {
    let bytes = line.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_ascii_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&b'"') {
            return Err(format!("expected '\"' at byte {i}", i = *i));
        }
        *i += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    *i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *i += 1;
                    match bytes.get(*i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = parse_u_escape(line, i)?;
                            if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: JSON encodes non-BMP
                                // chars as a \uXXXX\uXXXX pair.
                                *i += 1;
                                if bytes.get(*i) != Some(&b'\\') || bytes.get(*i + 1) != Some(&b'u')
                                {
                                    return Err(format!(
                                        "high surrogate \\u{code:04x} not followed by a \\u low surrogate"
                                    ));
                                }
                                *i += 1;
                                let low = parse_u_escape(line, i)?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "expected a low surrogate after \\u{code:04x}, got \\u{low:04x}"
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(combined).expect("valid surrogate pair"));
                            } else {
                                out.push(char::from_u32(code).ok_or_else(|| {
                                    format!("invalid codepoint \\u{code:04x} (lone low surrogate)")
                                })?);
                            }
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    *i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = &line[*i..];
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    *i += ch.len_utf8();
                }
            }
        }
    };
    let parse_scalar = |i: &mut usize| -> Result<String, String> {
        let start = *i;
        while *i < bytes.len()
            && matches!(bytes[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E' | b'a'..=b'z')
        {
            *i += 1;
        }
        let token = &line[start..*i];
        match token {
            "" => Err(format!("expected a value at byte {start}")),
            "null" => Ok(String::new()),
            "true" | "false" => Ok(token.to_string()),
            _ if is_json_number(token) => Ok(token.to_string()),
            _ => Err(format!("unsupported JSON value {token:?}")),
        }
    };

    skip_ws(&mut i);
    if bytes.get(i) != Some(&b'{') {
        return Err("request line must be a JSON object".into());
    }
    i += 1;
    let mut map = HashMap::new();
    skip_ws(&mut i);
    if bytes.get(i) == Some(&b'}') {
        i += 1;
    } else {
        loop {
            skip_ws(&mut i);
            let key = parse_string(&mut i)?;
            skip_ws(&mut i);
            if bytes.get(i) != Some(&b':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            i += 1;
            skip_ws(&mut i);
            let value = if bytes.get(i) == Some(&b'"') {
                parse_string(&mut i)?
            } else {
                parse_scalar(&mut i)?
            };
            map.insert(key, value);
            skip_ws(&mut i);
            match bytes.get(i) {
                Some(b',') => i += 1,
                Some(b'}') => {
                    i += 1;
                    break;
                }
                _ => return Err("expected ',' or '}' in object".into()),
            }
        }
    }
    skip_ws(&mut i);
    if i != bytes.len() {
        return Err(format!("trailing content after object: {:?}", &line[i..]));
    }
    Ok(map)
}

/// Every key a batch request line may carry: `protocol` plus the
/// per-protocol flags of `mpest run`, plus the optional `epoch` pin.
/// Unknown keys are rejected so a typo (`"hheps"`) can't silently fall
/// back to a default.
const REQUEST_KEYS: &[&str] = &[
    "protocol", "eps", "p", "kappa", "phi", "hh-eps", "t", "slack", "epoch",
];

/// One batch request: the uniform shape plus its optional epoch pin and
/// the (1-based) source line for error context.
#[derive(Debug)]
struct PinnedRequest {
    request: EstimateRequest,
    epoch: Option<u64>,
    line: usize,
}

/// Parses one already-decoded request object into the uniform shape
/// plus its optional epoch pin.
fn request_from_map(
    mut map: HashMap<String, String>,
) -> Result<(EstimateRequest, Option<u64>), String> {
    for key in map.keys() {
        if !REQUEST_KEYS.contains(&key.as_str()) {
            return Err(if key == "seed" {
                "per-request \"seed\" is not supported; seeds derive from the batch --seed in file order".to_string()
            } else {
                format!("unknown request key {key:?} (expected one of {REQUEST_KEYS:?})")
            });
        }
    }
    let epoch = match map.remove("epoch") {
        None => None,
        Some(raw) => Some(raw.parse::<u64>().map_err(|_| {
            format!(
                "bad \"epoch\" value {raw:?}: an epoch pin must be a \
                 non-negative integer"
            )
        })?),
    };
    let protocol = map
        .get("protocol")
        .cloned()
        .ok_or_else(|| "missing \"protocol\" key".to_string())?;
    Ok((parse_request(&protocol, &Flags(map))?, epoch))
}

/// Reads a JSONL request file into the uniform request shape, reusing
/// the `mpest run` flag vocabulary for per-protocol parameters.
fn load_requests(path: &Path) -> Result<Vec<PinnedRequest>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("--requests {}: {e}", path.display()))?;
    let mut requests = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let context = |e: String| format!("{}:{}: {e}", path.display(), lineno + 1);
        let map = parse_jsonl_object(trimmed).map_err(context)?;
        let (request, epoch) = request_from_map(map).map_err(context)?;
        requests.push(PinnedRequest {
            request,
            epoch,
            line: lineno + 1,
        });
    }
    if requests.is_empty() {
        return Err(format!("{}: no requests", path.display()));
    }
    Ok(requests)
}

fn cmd_batch(flags: &Flags) -> Result<(), String> {
    let (a, b) = load_pair(flags)?;
    let seed = Seed(flags.num("seed", 42u64)?);
    let workers: usize = flags.num("workers", 0)?;
    let executor = parse_executor(flags)?;
    let requests_path = PathBuf::from(flags.required("requests")?);
    let pinned = load_requests(&requests_path)?;
    // A freshly loaded pair sits at epoch 0; a request pinned to any
    // other snapshot must not silently run over the wrong data.
    for p in &pinned {
        if let Some(epoch) = p.epoch {
            if epoch != 0 {
                return Err(format!(
                    "{}:{}: request pins epoch {epoch}, but a pair loaded \
                     from files is at epoch 0; drop the pin or query the \
                     daemon holding that snapshot (mpest query --at-epoch)",
                    requests_path.display(),
                    p.line
                ));
            }
        }
    }
    let requests: Vec<EstimateRequest> = pinned.into_iter().map(|p| p.request).collect();

    // `mpest run` coerces integer inputs to their binary support view
    // when the (single) request is binary. A batch may only apply that
    // coercion when *every* request is binary — binarizing the pair for
    // a mixed batch would silently change the non-binary requests'
    // answers relative to running them alone, so that case is an error.
    let any_binary = requests.iter().any(is_binary_request);
    let all_binary = requests.iter().all(is_binary_request);
    let inputs_binary = a.is_binary() && b.is_binary();
    if any_binary && !all_binary && !inputs_binary {
        return Err(
            "batch mixes binary and general protocols over non-binary inputs; \
             binarizing would change the general protocols' answers — split the \
             batch or pre-binarize the matrices with `mpest gen`"
                .to_string(),
        );
    }
    let session = if all_binary && !inputs_binary {
        eprintln!(
            "note: binarizing integer inputs (nonzero -> 1) for an all-binary-protocol batch"
        );
        Session::builder(BitMatrix::from_csr(&a), BitMatrix::from_csr(&b))
    } else {
        Session::builder(a, b)
    }
    .seed(seed)
    .executor(executor)
    .build();

    let engine = Engine::new(session);
    let plan = BatchPlan::default().with_workers(workers);
    let start = std::time::Instant::now();
    let batch = engine
        .run_batch(&requests, &plan)
        .map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();

    println!(
        "batch of {} requests over {} worker(s), {} executor:",
        batch.reports.len(),
        plan.effective_workers(requests.len()),
        executor,
    );
    for (i, report) in batch.reports.iter().enumerate() {
        println!(
            "  [{i:>3}] {:<16} {:>10} bits  {} round(s)  {}",
            report.protocol,
            report.bits(),
            report.rounds(),
            output_summary(&report.output, true)
        );
    }
    let acc = &batch.accounting;
    println!("aggregate: {acc}");
    println!(
        "           {:.3}s wall, {:.1} queries/s, mean {:.0} bits/query",
        secs,
        batch.reports.len() as f64 / secs.max(1e-9),
        acc.mean_bits()
    );
    for (label, model) in [
        ("datacenter", NetworkModel::datacenter()),
        ("wan       ", NetworkModel::wan()),
    ] {
        let est: f64 = batch
            .reports
            .iter()
            .map(|r| model.seconds(&r.transcript))
            .sum();
        println!("           est. serial time on {label} link: {est:.4} s");
    }
    Ok(())
}

/// `mpest verify`: the Monte-Carlo statistical-guarantee sweep over
/// generated workloads, exiting nonzero on any contract violation.
fn cmd_verify(flags: &Flags) -> Result<(), String> {
    use mpest::verify::VerifyConfig;
    let mut config = if flags.str("quick").is_some() {
        VerifyConfig::quick()
    } else {
        VerifyConfig::full()
    };
    if let Some(trials) = flags.str("trials") {
        let trials: usize = trials.parse().map_err(|e| format!("bad --trials: {e}"))?;
        if trials == 0 {
            return Err("--trials must be positive".to_string());
        }
        config = config.with_trials(trials);
    }
    let seed = flags.num("seed", config.seed)?;
    config = config.with_seed(seed);
    if let Some(name) = flags.str("protocol") {
        config = config.with_protocols(vec![canonical_protocol(name)?.to_string()]);
    }

    let start = std::time::Instant::now();
    let report = mpest::verify::verify(&config);
    print!("{}", report.summary());
    println!(
        "{} cells verified in {:.2}s",
        report.verdicts.len(),
        start.elapsed().as_secs_f64()
    );
    if report.all_pass() {
        println!("all statistical guarantees hold");
        Ok(())
    } else {
        // Not a usage error: report the violations and exit 1 without
        // the usage banner.
        for v in report.failures() {
            eprintln!(
                "VIOLATION: {} on {} failed {}/{} trials (allowed {:.0}%): {}",
                v.protocol,
                v.workload,
                v.failures,
                v.trials,
                100.0 * v.delta,
                v.first_failure.as_deref().unwrap_or("see summary")
            );
        }
        std::process::exit(1);
    }
}

/// The ground-truth value `--exact` prints for this request, if any.
fn exact_value(request: &EstimateRequest, c: &CsrMatrix) -> Option<f64> {
    match request {
        EstimateRequest::LpNorm { p, .. } | EstimateRequest::LpBaseline { p, .. } => {
            Some(norms::csr_lp_pow(c, *p))
        }
        EstimateRequest::LinfBinary { .. }
        | EstimateRequest::LinfKappa { .. }
        | EstimateRequest::LinfGeneral { .. } => Some(norms::csr_linf(c).0 as f64),
        EstimateRequest::ExactL1 => Some(norms::csr_lp_pow(c, PNorm::ONE)),
        _ => None,
    }
}

fn cmd_run(protocol: &str, flags: &Flags) -> Result<(), String> {
    // Parse the request before touching the filesystem, so an unknown
    // protocol name is reported even when the matrix files are bad too.
    let request = parse_request(protocol, flags)?;
    let format = parse_format(flags)?;
    let (a, b) = load_pair(flags)?;
    let seed = Seed(flags.num("seed", 42u64)?);
    let executor = parse_executor(flags)?;
    let exact = (flags.str("exact").is_some() && has_exact_line(&request)).then(|| a.matmul(&b));

    // Binary protocols historically accept integer inputs by coercing
    // nonzeros to 1 (the support view); keep that CLI behavior.
    let session = if is_binary_request(&request) && !(a.is_binary() && b.is_binary()) {
        eprintln!("note: binarizing integer inputs (nonzero -> 1) for {protocol}");
        Session::builder(BitMatrix::from_csr(&a), BitMatrix::from_csr(&b))
    } else {
        Session::builder(a, b)
    }
    .seed(seed)
    .executor(executor)
    .build();
    let report = session
        .estimate_seeded(&request, seed)
        .map_err(|e| e.to_string())?;
    let exact = exact.and_then(|c| exact_value(&request, &c));

    match format {
        Format::Json => {
            let mut extra = vec![format!("\"seed\": {}", seed.0)];
            if let Some(v) = exact {
                extra.push(format!("\"exact\": {v}"));
            }
            println!("{}", report_json(&report, &extra));
        }
        Format::Text => {
            print_report(&report);
            if let Some(v) = exact {
                println!("  exact      = {v}");
            }
        }
    }
    Ok(())
}

/// `mpest serve`: the estimation daemon (blocks until a client sends
/// `shutdown`).
fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use mpest::net::DEFAULT_MAX_SESSIONS;
    use mpest::net::{serve_on, ServeConfig, ServerState, TraceFormat, Tracer};
    let addr = flags.str("listen").unwrap_or("127.0.0.1:7117");
    let workers: usize = flags.num("workers", 0)?;
    let config = ServeConfig {
        workers,
        io_timeout: parse_timeout(flags, "io-timeout", 30)?,
        idle_timeout: parse_timeout(flags, "idle-timeout", 0)?,
        max_sessions: flags.num("max-sessions", DEFAULT_MAX_SESSIONS)?,
        io_mode: parse_io_mode(flags)?,
        obs: flags.str("no-obs").is_none(),
        ..ServeConfig::default()
    };
    let trace_format = match flags.str("trace-format") {
        None | Some("jsonl") => TraceFormat::Jsonl,
        Some("chrome") => TraceFormat::Chrome,
        Some(other) => {
            return Err(format!(
                "--trace-format: expected jsonl|chrome, got {other}"
            ))
        }
    };
    let tracer = match flags.str("trace-out") {
        None => Tracer::disabled(),
        Some(path) => {
            Tracer::to_file(path, trace_format).map_err(|e| format!("--trace-out {path}: {e}"))?
        }
    };
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("--listen {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    println!("mpest serve: listening on {local} ({workers} worker(s) per query, 0 = per-core)");
    println!("  clients: mpest query PROTOCOL --connect {local} --a A.mtx --b B.mtx [...]");
    println!("  metrics: mpest stats --connect {local} [--format json]");
    let state = std::sync::Arc::new(ServerState::with_config_traced(config, tracer));
    serve_on(&listener, &state);
    // The shutdown summary is a rendering of the same registry the
    // `metrics` wire reply snapshots — one source of truth for totals.
    println!("mpest serve: {}", state.summary());
    Ok(())
}

/// `mpest shutdown`: asks a live daemon to stop (it prints its summary
/// and seals any trace file on the way out).
fn cmd_shutdown(flags: &Flags) -> Result<(), String> {
    use mpest::net::ServeClient;
    let addr = flags.required("connect")?;
    let mut client = ServeClient::connect(addr).map_err(|e| format!("--connect {addr}: {e}"))?;
    client.shutdown().map_err(|e| e.to_string())?;
    println!("daemon at {addr} acknowledged shutdown");
    Ok(())
}

/// `mpest stats`: pulls the daemon-wide statistics plus (on codec v6)
/// the full observability-registry snapshot from a live daemon.
fn cmd_stats(flags: &Flags) -> Result<(), String> {
    use mpest::net::ServeClient;
    let addr = flags.required("connect")?;
    let mut client = ServeClient::connect(addr).map_err(|e| format!("--connect {addr}: {e}"))?;
    let snapshot = client.metrics().map_err(|e| e.to_string())?;
    match parse_format(flags)? {
        Format::Json => println!("{}", snapshot.to_json()),
        Format::Text => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!(
                "daemon at {addr}: {} request(s) served, {} cached session(s), \
                 {} logical bits, {} bytes in / {} bytes out on the wire",
                stats.queries,
                stats.sessions,
                stats.accounting.total_bits,
                stats.wire_in,
                stats.wire_out
            );
            print!("{}", snapshot.render());
        }
    }
    Ok(())
}

/// Parses `--io-mode duplex|blocking` (default: the duplex reactor).
fn parse_io_mode(flags: &Flags) -> Result<mpest::net::IoMode, String> {
    match flags.str("io-mode") {
        None => Ok(mpest::net::IoMode::default()),
        Some(raw) => mpest::net::IoMode::parse(raw).map_err(|e| format!("--io-mode: {e}")),
    }
}

/// Parses a `--KEY SECS` timeout flag; `0` means no deadline.
fn parse_timeout(
    flags: &Flags,
    key: &str,
    default_secs: u64,
) -> Result<Option<std::time::Duration>, String> {
    let secs: u64 = flags.num(key, default_secs)?;
    Ok((secs > 0).then(|| std::time::Duration::from_secs(secs)))
}

/// Parses `--side alice|bob` (with a per-command default) through the
/// shared [`Role`] vocabulary.
fn parse_side(flags: &Flags, default: Party) -> Result<Party, String> {
    match flags.str("side") {
        None => Ok(default),
        Some(s) => s.parse::<Party>().map_err(|e| format!("--side: {e}")),
    }
}

/// Loads the storage-split view for `side`: only this party's matrix
/// comes off disk (`--matrix`); the peer is known by its public
/// metadata alone (`--peer-rows`, `--peer-cols`, `--peer-binary`).
fn load_party_view(flags: &Flags, side: Party) -> Result<PartyView, String> {
    let own =
        io::read_csr(Path::new(flags.required("matrix")?)).map_err(|e| format!("--matrix: {e}"))?;
    let peer = PeerInfo::new(
        flags.required_num("peer-rows")?,
        flags.required_num("peer-cols")?,
        flags.str("peer-binary").is_some(),
    );
    let view = PartyView::new(side, own, peer);
    // Surface an inner-dimension mismatch now, at the CLI boundary,
    // instead of at the first run (this also warms the derived views).
    view.warm_views().map_err(|e| e.to_string())?;
    Ok(view)
}

/// `mpest party`: host one side of remote two-party runs (blocks).
///
/// With `--matrix`, the host is **storage-split**: it loads only its
/// own half, never sees the peer's entries, cross-checks every
/// connection's `party-hello` handshake, and ingests per-side update
/// batches between runs. With `--a`/`--b`, it is the legacy role-split
/// form holding the full pair; `--updatable` additionally accepts
/// `mpest update --party` batches.
fn cmd_party(flags: &Flags) -> Result<(), String> {
    use mpest::net::PartyHost;
    let addr = flags.str("listen").unwrap_or("127.0.0.1:7118");
    let side = parse_side(flags, Party::Bob)?;
    let io_mode = parse_io_mode(flags)?;
    if flags.str("matrix").is_some() {
        if flags.str("a").is_some() || flags.str("b").is_some() {
            return Err(
                "--matrix (storage-split, one half) and --a/--b (full pair) \
                 are mutually exclusive"
                    .to_string(),
            );
        }
        let view = load_party_view(flags, side)?;
        let (rows, cols) = view.own_shape();
        let host = PartyHost::spawn_split_io(addr, view, io_mode)
            .map_err(|e| format!("--listen {addr}: {e}"))?;
        println!(
            "mpest party: playing {side} on {} holding only the {rows}x{cols} \
             {} half (storage-split; per-side updates accepted) — initiators \
             run `mpest query PROTOCOL --party {} --side {} --matrix THEIR.mtx \
             --peer-rows {rows} --peer-cols {cols} ...`",
            host.addr(),
            side.half_label(),
            host.addr(),
            side.peer().as_str(),
        );
        host.wait();
        return Ok(());
    }
    let updatable = flags.str("updatable").is_some();
    let (a, b) = load_pair(flags)?;
    let session = Session::new(a, b);
    let host = if updatable {
        PartyHost::spawn_updatable_io(addr, session, side, io_mode)
    } else {
        PartyHost::spawn_io(addr, std::sync::Arc::new(session), side, io_mode)
    }
    .map_err(|e| format!("--listen {addr}: {e}"))?;
    println!(
        "mpest party: playing {side} on {}{} — initiators run \
         `mpest query PROTOCOL --party {} --side {} ...` with the same matrices",
        host.addr(),
        if updatable {
            " (updatable: accepts `mpest update --party` batches)"
        } else {
            ""
        },
        host.addr(),
        side.peer().as_str(),
    );
    host.wait();
    Ok(())
}

/// `mpest query`: run a request against a serve daemon (`--connect`) or
/// as the initiating side of a remote two-party run (`--party`).
fn cmd_query(protocol: &str, flags: &Flags) -> Result<(), String> {
    let request = parse_request(protocol, flags)?;
    let format = parse_format(flags)?;
    let seed: u64 = flags.num("seed", 42u64)?;
    if flags.str("matrix").is_some() {
        return query_split(protocol, &request, format, seed, flags);
    }
    let (a, b) = load_pair(flags)?;
    let binarize = is_binary_request(&request) && !(a.is_binary() && b.is_binary());
    let as_binary = |m: &CsrMatrix| BitMatrix::from_csr(m).to_csr();

    match (flags.str("connect"), flags.str("party")) {
        (Some(addr), None) => {
            use mpest::net::ServeClient;
            let (qa, qb) = if binarize {
                eprintln!("note: binarizing integer inputs (nonzero -> 1) for {protocol}");
                (as_binary(&a), as_binary(&b))
            } else {
                (a, b)
            };
            let reply_timeout = parse_timeout(flags, "reply-timeout", 600)?;
            let io_timeout = parse_timeout(flags, "io-timeout", 30)?;
            let mut client = ServeClient::connect_with(addr, reply_timeout, io_timeout)
                .map_err(|e| e.to_string())?;
            let outcome = match flags.str("at-epoch") {
                None => client.query(&qa, &qb, &[(seed, request)]),
                Some(raw) => {
                    let at_epoch: u64 = raw.parse().map_err(|e| format!("bad --at-epoch: {e}"))?;
                    client.query_at_epoch(&qa, &qb, &[(seed, request)], at_epoch)
                }
            }
            .map_err(|e| e.to_string())?;
            let report = outcome
                .reports
                .reports
                .first()
                .ok_or("server returned no reports for a one-request query")?;
            match format {
                Format::Json => {
                    let extra = vec![
                        format!("\"seed\": {seed}"),
                        format!("\"cache_hit\": {}", outcome.reports.cache_hit),
                        format!("\"uploaded\": {}", outcome.uploaded),
                        format!("\"wire_bytes_out\": {}", outcome.bytes_out),
                        format!("\"wire_bytes_in\": {}", outcome.bytes_in),
                    ];
                    println!("{}", report_json(report, &extra));
                }
                Format::Text => {
                    print_report(report);
                    println!(
                        "  served by  {addr} (session cache {}{})",
                        if outcome.reports.cache_hit {
                            "hit"
                        } else {
                            "miss"
                        },
                        if outcome.uploaded {
                            ", pair uploaded"
                        } else {
                            ""
                        },
                    );
                    println!(
                        "  real wire  = {} bytes out, {} bytes in ({} logical payload bytes)",
                        outcome.bytes_out,
                        outcome.bytes_in,
                        report.bits().div_ceil(8),
                    );
                }
            }
            Ok(())
        }
        (None, Some(addr)) => {
            use mpest::net::run_with_party_io;
            if flags.str("at-epoch").is_some() {
                return Err(
                    "--at-epoch pins a daemon session's epoch and requires --connect; \
                     a two-party run always executes over the host's current pair"
                        .to_string(),
                );
            }
            // A remote two-party run needs both processes to hold the
            // same pair; binarizing only this side would desynchronize
            // the run (and `mpest party` serves the files as given).
            if binarize {
                return Err(format!(
                    "{protocol} requires binary matrices, but the inputs are \
                     integer-valued; auto-binarizing only the initiator would \
                     desynchronize the remote run. Binarize the files first \
                     (e.g. mpest gen --kind bernoulli) so both the party host \
                     and this side load the same pair, or use --connect."
                ));
            }
            let side = parse_side(flags, Party::Alice)?;
            let io_timeout = parse_timeout(flags, "io-timeout", 30)?;
            let io_mode = parse_io_mode(flags)?;
            let session = Session::new(a, b);
            let (report, out, inn) = run_with_party_io(
                addr,
                &session,
                side,
                &request,
                Seed(seed),
                io_timeout,
                io_mode,
            )
            .map_err(|e| e.to_string())?;
            match format {
                Format::Json => {
                    let extra = vec![
                        format!("\"seed\": {seed}"),
                        format!("\"side\": \"{}\"", side.as_str()),
                        format!("\"wire_bytes_out\": {out}"),
                        format!("\"wire_bytes_in\": {inn}"),
                    ];
                    println!("{}", report_json(&report, &extra));
                }
                Format::Text => {
                    print_report(&report);
                    println!("  remote run playing {side} against {addr}");
                    println!(
                        "  real wire  = {out} bytes out, {inn} bytes in ({} logical payload bytes)",
                        report.bits().div_ceil(8),
                    );
                }
            }
            Ok(())
        }
        (Some(_), Some(_)) => Err("--connect and --party are mutually exclusive".to_string()),
        (None, None) => Err("query needs --connect ADDR or --party ADDR".to_string()),
    }
}

/// Parses `--peer-fp` (decimal or `0x`-prefixed hex) into the content
/// pin a split run enforces on the host's announced fingerprint.
fn parse_peer_fp(flags: &Flags) -> Result<Option<u64>, String> {
    let Some(raw) = flags.str("peer-fp") else {
        return Ok(None);
    };
    let parsed = match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    parsed.map(Some).map_err(|e| format!("bad --peer-fp: {e}"))
}

/// The storage-split `mpest query --party` path: this process loads
/// only `--matrix` and plays `--side` against a `mpest party --matrix`
/// host, opening with the `party-hello` cross-check.
fn query_split(
    protocol: &str,
    request: &EstimateRequest,
    format: Format,
    seed: u64,
    flags: &Flags,
) -> Result<(), String> {
    use mpest::net::run_with_party_view_io;
    let Some(addr) = flags.str("party") else {
        return Err(
            "--matrix loads only this party's half and requires --party ADDR \
             (a storage-split run); --connect uploads the full pair, use \
             --a/--b there"
                .to_string(),
        );
    };
    if flags.str("a").is_some() || flags.str("b").is_some() {
        return Err(
            "--matrix (storage-split, one half) and --a/--b (full pair) are \
             mutually exclusive"
                .to_string(),
        );
    }
    if flags.str("at-epoch").is_some() {
        return Err(
            "--at-epoch pins a daemon session's epoch and requires --connect; \
             a two-party run always executes over the host's current pair"
                .to_string(),
        );
    }
    let side = parse_side(flags, Party::Alice)?;
    let view = load_party_view(flags, side)?;
    if is_binary_request(request) && !(view.own_binary() && view.peer().binary()) {
        return Err(format!(
            "{protocol} requires binary matrices, but this half (or the \
             announced peer) is integer-valued; a storage-split run cannot \
             binarize one side without desynchronizing the pair — binarize \
             the files first (e.g. mpest gen --kind bernoulli)"
        ));
    }
    let io_timeout = parse_timeout(flags, "io-timeout", 30)?;
    let pin = parse_peer_fp(flags)?;
    let io_mode = parse_io_mode(flags)?;
    let (report, out, inn) =
        run_with_party_view_io(addr, &view, request, Seed(seed), io_timeout, pin, io_mode)
            .map_err(|e| e.to_string())?;
    match format {
        Format::Json => {
            let extra = vec![
                format!("\"seed\": {seed}"),
                format!("\"side\": \"{}\"", side.as_str()),
                "\"storage_split\": true".to_string(),
                format!("\"wire_bytes_out\": {out}"),
                format!("\"wire_bytes_in\": {inn}"),
            ];
            println!("{}", report_json(&report, &extra));
        }
        Format::Text => {
            print_report(&report);
            println!(
                "  storage-split run playing {side} against {addr} \
                 (this process held only its {} half)",
                side.half_label()
            );
            println!(
                "  real wire  = {out} bytes out, {inn} bytes in ({} logical payload bytes)",
                report.bits().div_ceil(8),
            );
        }
    }
    Ok(())
}

/// Every key an update-ops line may carry.
const OP_KEYS: &[&str] = &["op", "side", "row", "col", "val", "entries"];

/// Parses `"alice"` / `"bob"`.
fn parse_update_side(raw: &str) -> Result<UpdateSide, String> {
    match raw {
        "alice" => Ok(UpdateSide::Alice),
        "bob" => Ok(UpdateSide::Bob),
        other => Err(format!(
            "unknown \"side\" {other:?} (expected \"alice\" or \"bob\")"
        )),
    }
}

/// Parses the `"entries"` string of an `append-row` op:
/// comma-separated `IDX:VAL` pairs.
fn parse_op_entries(raw: &str) -> Result<Vec<(u32, i64)>, String> {
    let mut entries = Vec::new();
    for token in raw.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let (idx, val) = token
            .split_once(':')
            .ok_or_else(|| format!("bad entry {token:?}: expected IDX:VAL"))?;
        entries.push((
            idx.trim()
                .parse()
                .map_err(|e| format!("bad entry index {:?}: {e}", idx.trim()))?,
            val.trim()
                .parse()
                .map_err(|e| format!("bad entry value {:?}: {e}", val.trim()))?,
        ));
    }
    Ok(entries)
}

/// Parses one already-decoded ops object and appends it to `batch`.
fn op_from_map(map: &HashMap<String, String>, batch: UpdateBatch) -> Result<UpdateBatch, String> {
    for key in map.keys() {
        if !OP_KEYS.contains(&key.as_str()) {
            return Err(format!(
                "unknown op key {key:?} (expected one of {OP_KEYS:?})"
            ));
        }
    }
    let field = |key: &str| {
        map.get(key)
            .ok_or_else(|| format!("missing {key:?} key"))
            .map(String::as_str)
    };
    let num = |key: &str| -> Result<u32, String> {
        field(key)?
            .parse()
            .map_err(|e| format!("bad {key:?} value: {e}"))
    };
    let reject = |keys: &[&str], op: &str| -> Result<(), String> {
        for key in keys {
            if map.contains_key(*key) {
                return Err(format!("op {op:?} takes no {key:?} key"));
            }
        }
        Ok(())
    };
    let op = field("op")?;
    let side = parse_update_side(field("side")?)?;
    Ok(match op {
        "set" => {
            reject(&["entries"], op)?;
            let val: i64 = field("val")?
                .parse()
                .map_err(|e| format!("bad \"val\" value: {e}"))?;
            batch.set_entry(side, num("row")?, num("col")?, val)
        }
        "delete" => {
            reject(&["val", "entries"], op)?;
            batch.delete_entry(side, num("row")?, num("col")?)
        }
        "append-row" => {
            reject(&["row", "col", "val"], op)?;
            batch.append_row(side, parse_op_entries(field("entries")?)?)
        }
        other => {
            return Err(format!(
                "unknown op {other:?} (expected \"set\", \"delete\", or \"append-row\")"
            ))
        }
    })
}

/// Reads a JSONL ops file into an [`UpdateBatch`], with file:line
/// context on every malformed line.
fn load_ops(path: &Path) -> Result<UpdateBatch, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("--ops {}: {e}", path.display()))?;
    let mut batch = UpdateBatch::new();
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let context = |e: String| format!("{}:{}: {e}", path.display(), lineno + 1);
        let map = parse_jsonl_object(trimmed).map_err(context)?;
        batch = op_from_map(&map, batch).map_err(context)?;
    }
    if batch.is_empty() {
        return Err(format!("{}: no update ops", path.display()));
    }
    Ok(batch)
}

/// `mpest update`: push a live mutation batch into a daemon's cached
/// session (`--connect`) or an updatable party host (`--party`). The
/// local files are the mirror: they name the remote session and are
/// re-written in sync after the remote acknowledges.
fn cmd_update(flags: &Flags) -> Result<(), String> {
    use mpest::net::{fingerprint, update_party, ServeClient};
    let (a, b) = load_pair(flags)?;
    let batch = load_ops(Path::new(flags.required("ops")?))?;
    let out_a = PathBuf::from(flags.str("out-a").unwrap_or(flags.required("a")?));
    let out_b = PathBuf::from(flags.str("out-b").unwrap_or(flags.required("b")?));
    let io_timeout = parse_timeout(flags, "io-timeout", 30)?;
    let mut mirror = Session::new(a, b);

    match (flags.str("connect"), flags.str("party")) {
        (Some(addr), None) => {
            let reply_timeout = parse_timeout(flags, "reply-timeout", 600)?;
            let mut client = ServeClient::connect_with(addr, reply_timeout, io_timeout)
                .map_err(|e| e.to_string())?;
            let outcome = {
                let (ca, cb) = mirror.csr_halves().map_err(|e| e.to_string())?;
                client.update(ca, cb, mirror.epoch(), &batch)
            }
            .map_err(|e| e.to_string())?;
            mirror.apply_update(&batch).map_err(|e| e.to_string())?;
            let (la, lb) = {
                let (ca, cb) = mirror.csr_halves().map_err(|e| e.to_string())?;
                (fingerprint(ca), fingerprint(cb))
            };
            if (la, lb) != (outcome.fp_a, outcome.fp_b) || mirror.epoch() != outcome.epoch {
                return Err(format!(
                    "local mirror diverged from the daemon after the update: \
                     daemon is ({:#x}, {:#x}) at epoch {}, mirror is \
                     ({la:#x}, {lb:#x}) at epoch {}",
                    outcome.fp_a,
                    outcome.fp_b,
                    outcome.epoch,
                    mirror.epoch()
                ));
            }
            println!(
                "update applied: daemon session is now ({:#x}, {:#x}) at epoch {} \
                 ({} op(s))",
                outcome.fp_a,
                outcome.fp_b,
                outcome.epoch,
                batch.len()
            );
        }
        (None, Some(addr)) => {
            let epoch =
                update_party(addr, &mut mirror, &batch, io_timeout).map_err(|e| e.to_string())?;
            println!(
                "update applied: party host is now at epoch {epoch} ({} op(s))",
                batch.len()
            );
        }
        (Some(_), Some(_)) => return Err("--connect and --party are mutually exclusive".into()),
        (None, None) => return Err("update needs --connect ADDR or --party ADDR".into()),
    }

    let (ca, cb) = mirror.csr_halves().map_err(|e| e.to_string())?;
    io::write_csr(ca, &out_a).map_err(|e| format!("--out-a {}: {e}", out_a.display()))?;
    io::write_csr(cb, &out_b).map_err(|e| format!("--out-b {}: {e}", out_b.display()))?;
    println!(
        "synced mirror written to {} and {}",
        out_a.display(),
        out_b.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_object_parses_strings_numbers_bools_null() {
        let map = parse_jsonl_object(
            r#"{"protocol": "hh-binary", "phi": 0.05, "t": 3, "neg": -1.5e-2, "flag": true, "off": false, "none": null}"#,
        )
        .unwrap();
        assert_eq!(map["protocol"], "hh-binary");
        assert_eq!(map["phi"], "0.05");
        assert_eq!(map["t"], "3");
        assert_eq!(map["neg"], "-1.5e-2");
        assert_eq!(map["flag"], "true");
        assert_eq!(map["off"], "false");
        assert_eq!(map["none"], "");
        assert!(parse_jsonl_object("{}").unwrap().is_empty());
        assert!(parse_jsonl_object("  { }  ").unwrap().is_empty());
    }

    #[test]
    fn jsonl_object_decodes_string_escapes() {
        let map = parse_jsonl_object(
            r#"{"a": "q\"uote", "b": "back\\slash", "c": "tab\there", "d": "Aé"}"#,
        )
        .unwrap();
        assert_eq!(map["a"], "q\"uote");
        assert_eq!(map["b"], "back\\slash");
        assert_eq!(map["c"], "tab\there");
        assert_eq!(map["d"], "Aé");
        // \u escapes: BMP directly, non-BMP as a surrogate pair.
        let map =
            parse_jsonl_object(r#"{"bmp": "\u006c\u00e9", "emoji": "\ud83d\ude00"}"#).unwrap();
        assert_eq!(map["bmp"], "lé");
        assert_eq!(map["emoji"], "😀");
    }

    #[test]
    fn jsonl_object_rejects_malformed_input() {
        for bad in [
            "not json",
            "[1, 2]",
            r#"{"unterminated": "x"#,
            r#"{"key" "missing-colon"}"#,
            r#"{"trailing": 1} extra"#,
            r#"{"bad": inf}"#,
            r#"{"bad": nan}"#,
            r#"{"bad": +1}"#,
            r#"{"bad": 01}"#,
            r#"{"bad": 1.}"#,
            r#"{"bad": 1e}"#,
            r#"{"bad": .5}"#,
            r#"{"bad": \n}"#,
            r#"{"lone-surrogate": "\ud800"}"#,
            r#"{"lone-low-surrogate": "\udc00"}"#,
            r#"{"swapped-pair": "\ude00\ud83d"}"#,
            r#"{"signed-hex": "\u+06c"}"#,
            r#"{"short-hex": "\u06"}"#,
        ] {
            assert!(parse_jsonl_object(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn json_numbers_follow_the_rfc_grammar() {
        for good in [
            "0", "-0", "3", "42", "0.5", "-1.25", "1e3", "1E-3", "2.5e+10",
        ] {
            assert!(is_json_number(good), "rejected: {good}");
        }
        for bad in [
            "", "-", "+1", "01", "1.", ".5", "1e", "1e+", "inf", "nan", "0x1", "1_000",
        ] {
            assert!(!is_json_number(bad), "accepted: {bad}");
        }
    }

    #[test]
    fn load_requests_reports_file_and_line_context() {
        let dir = std::env::temp_dir().join(format!("mpest-jsonl-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap();
            path
        };

        // Comments and blank lines are skipped; order is preserved.
        let good = write(
            "good.jsonl",
            "# heavy hitters then a norm\n\n{\"protocol\": \"hh-binary\", \"phi\": 0.05}\n{\"protocol\": \"l0\", \"eps\": 0.2}\n",
        );
        let requests = load_requests(&good).unwrap();
        assert_eq!(requests.len(), 2);
        assert_eq!(requests[0].request.name(), "hh-binary");
        assert_eq!(requests[1].request.name(), "lp");
        assert_eq!(requests[0].epoch, None);
        assert_eq!(requests[0].line, 3);
        assert_eq!(requests[1].line, 4);

        // A malformed object points at its file and (1-based) line.
        let bad = write("bad.jsonl", "{\"protocol\": \"l0\"}\n{not json}\n");
        let err = load_requests(&bad).unwrap_err();
        assert!(err.contains("bad.jsonl:2:"), "got: {err}");

        // A well-formed object with a bad number value surfaces the
        // flag-parse error, still with line context.
        let badnum = write(
            "badnum.jsonl",
            "{\"protocol\": \"l0\", \"eps\": \"lots\"}\n",
        );
        let err = load_requests(&badnum).unwrap_err();
        assert!(
            err.contains("badnum.jsonl:1:") && err.contains("bad --eps"),
            "got: {err}"
        );

        // Unknown protocol inside the file names the valid set.
        let badproto = write("badproto.jsonl", "{\"protocol\": \"l7\"}\n");
        let err = load_requests(&badproto).unwrap_err();
        assert!(
            err.contains("badproto.jsonl:1:") && err.contains("valid protocols"),
            "got: {err}"
        );

        // A required flag missing for the chosen protocol.
        let missing = write("missing.jsonl", "{\"protocol\": \"at-least-t\"}\n");
        let err = load_requests(&missing).unwrap_err();
        assert!(err.contains("missing --t"), "got: {err}");

        // Epoch pins: a valid pin round-trips, malformed values get a
        // typed error with file:line context.
        let pinned = write(
            "pinned.jsonl",
            "{\"protocol\": \"l0\", \"eps\": 0.2, \"epoch\": 3}\n",
        );
        let requests = load_requests(&pinned).unwrap();
        assert_eq!(requests[0].epoch, Some(3));
        for (name, body) in [
            ("negepoch.jsonl", "{\"protocol\": \"l0\", \"epoch\": -1}\n"),
            (
                "fracepoch.jsonl",
                "{\"protocol\": \"l0\", \"epoch\": 1.5}\n",
            ),
            (
                "strepoch.jsonl",
                "{\"protocol\": \"l0\", \"epoch\": \"latest\"}\n",
            ),
            (
                "nullepoch.jsonl",
                "{\"protocol\": \"l0\", \"epoch\": null}\n",
            ),
        ] {
            let err = load_requests(&write(name, body)).unwrap_err();
            assert!(
                err.contains(&format!("{name}:1:")) && err.contains("bad \"epoch\" value"),
                "got: {err}"
            );
        }

        // All-comment and empty files are "no requests", and a missing
        // file reports the I/O failure.
        let empty = write("empty.jsonl", "# nothing\n\n");
        assert!(load_requests(&empty).unwrap_err().contains("no requests"));
        let gone = dir.join("does-not-exist.jsonl");
        assert!(load_requests(&gone).is_err());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_protocols_list_the_catalog() {
        let flags = Flags(HashMap::new());
        let err = parse_request("l7", &flags).unwrap_err();
        for req in EstimateRequest::catalog() {
            assert!(
                err.contains(req.name()),
                "error does not name {}: {err}",
                req.name()
            );
        }
        assert!(err.contains("aliases"), "got: {err}");

        // Canonical names and CLI aliases both resolve.
        assert_eq!(canonical_protocol("l0").unwrap(), "lp");
        assert_eq!(canonical_protocol("lp").unwrap(), "lp");
        assert_eq!(canonical_protocol("trivial").unwrap(), "trivial-csr");
        assert_eq!(canonical_protocol("at-least-t").unwrap(), "at-least-t-join");
        assert_eq!(canonical_protocol("hh-binary").unwrap(), "hh-binary");
        assert!(canonical_protocol("nope")
            .unwrap_err()
            .contains("valid protocols"));
    }

    #[test]
    fn request_from_map_rejects_unknown_and_per_request_seed_keys() {
        let line = |s: &str| parse_jsonl_object(s).unwrap();
        assert!(matches!(
            request_from_map(line(r#"{"protocol": "l0", "eps": 0.25}"#)),
            Ok((EstimateRequest::LpNorm { .. }, None))
        ));
        assert!(matches!(
            request_from_map(line(r#"{"protocol": "l0", "eps": 0.25, "epoch": 2}"#)),
            Ok((EstimateRequest::LpNorm { .. }, Some(2)))
        ));
        let err = request_from_map(line(
            r#"{"protocol": "hh-binary", "phi": 0.05, "hheps": 0.005}"#,
        ))
        .unwrap_err();
        assert!(err.contains("unknown request key \"hheps\""), "got: {err}");
        let err = request_from_map(line(r#"{"protocol": "l0", "seed": 7}"#)).unwrap_err();
        assert!(err.contains("per-request \"seed\""), "got: {err}");
        let err = request_from_map(line(r#"{"eps": 0.2}"#)).unwrap_err();
        assert!(err.contains("protocol"), "got: {err}");
    }

    #[test]
    fn update_ops_files_parse_with_typed_line_errors() {
        let dir = std::env::temp_dir().join(format!("mpest-ops-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, body: &str| {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap();
            path
        };

        // All three op kinds parse; comments and blanks are skipped.
        let good = write(
            "good.jsonl",
            "# a mixed batch\n\
             {\"op\": \"set\", \"side\": \"alice\", \"row\": 1, \"col\": 2, \"val\": 7}\n\
             {\"op\": \"delete\", \"side\": \"bob\", \"row\": 0, \"col\": 0}\n\
             {\"op\": \"append-row\", \"side\": \"alice\", \"entries\": \"0:1, 3:2\"}\n",
        );
        let batch = load_ops(&good).unwrap();
        assert_eq!(batch.len(), 3);

        // Malformed lines carry file:line context and a typed message.
        for (name, body, needle) in [
            (
                "badop.jsonl",
                "{\"op\": \"upsert\", \"side\": \"alice\", \"row\": 1, \"col\": 2, \"val\": 7}\n",
                "unknown op \"upsert\"",
            ),
            (
                "badside.jsonl",
                "{\"op\": \"set\", \"side\": \"carol\", \"row\": 1, \"col\": 2, \"val\": 7}\n",
                "unknown \"side\" \"carol\"",
            ),
            (
                "badrow.jsonl",
                "{\"op\": \"set\", \"side\": \"alice\", \"row\": -1, \"col\": 2, \"val\": 7}\n",
                "bad \"row\" value",
            ),
            (
                "extrakey.jsonl",
                "{\"op\": \"delete\", \"side\": \"bob\", \"row\": 0, \"col\": 0, \"val\": 1}\n",
                "op \"delete\" takes no \"val\"",
            ),
            (
                "badentries.jsonl",
                "{\"op\": \"append-row\", \"side\": \"bob\", \"entries\": \"0=1\"}\n",
                "expected IDX:VAL",
            ),
            (
                "unknownkey.jsonl",
                "{\"op\": \"set\", \"side\": \"alice\", \"row\": 1, \"col\": 2, \"val\": 7, \"epoch\": 1}\n",
                "unknown op key \"epoch\"",
            ),
        ] {
            let err = load_ops(&write(name, body)).unwrap_err();
            assert!(
                err.contains(&format!("{name}:1:")) && err.contains(needle),
                "got: {err}"
            );
        }

        // Empty batches are rejected.
        let empty = write("empty.jsonl", "# nothing\n");
        assert!(load_ops(&empty).unwrap_err().contains("no update ops"));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
