//! # mpest — distributed statistical estimation of matrix products
//!
//! A complete Rust implementation of **Woodruff & Zhang, "Distributed
//! Statistical Estimation of Matrix Products with Applications"
//! (PODS 2018)**: two-party communication protocols that estimate
//! statistics of `C = A·B` — `ℓp` norms (`p ∈ [0, 2]`), `ℓ0`/`ℓ1`
//! sampling, the maximum entry (`ℓ∞`), and `(φ, ε)` heavy hitters —
//! where Alice holds `A` and Bob holds `B`, with bit-exact communication
//! accounting.
//!
//! These statistics are the classic database-join quantities: for binary
//! matrices encoding relations, `‖AB‖₀` is the set-intersection join
//! (composition) size, `‖AB‖₁` the natural join size, `‖AB‖∞` the most
//! overlapping pair of sets, and the heavy hitters are the pairs above a
//! join-size threshold.
//!
//! ## The Session / Protocol API
//!
//! The paper defines a *family* of protocols over the same pair
//! `(A, B)`, and real workloads ask several questions of the same
//! relations. The API mirrors that:
//!
//! * [`Session`](protocols::Session) owns the pair, validates dimensions
//!   once, caches shared derived state (CSR/bit views, transposes,
//!   norm/support tables), and derives independent per-query seeds;
//! * every protocol is a unit struct implementing
//!   [`Protocol`](protocols::Protocol) — `session.run(&LpNorm, &params)`
//!   is the typed entry point;
//! * [`EstimateRequest`](protocols::EstimateRequest) →
//!   [`EstimateReport`](protocols::EstimateReport) is the uniform
//!   dynamic-dispatch layer: a request is plain data that can be parsed,
//!   queued, and routed to whichever shard holds the session;
//! * [`Engine`](protocols::Engine) executes whole request batches
//!   across a worker pool sharing one session's caches —
//!   bit-identical to the sequential run for any worker count, with
//!   aggregate [`BatchAccounting`](comm::BatchAccounting).
//!
//! ## Quickstart
//!
//! ```
//! use mpest::prelude::*;
//!
//! // Alice's relation: rows are her sets. Bob's: columns are his sets.
//! let a = Workloads::bernoulli_bits(64, 96, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(96, 64, 0.2, 2).to_csr();
//!
//! // One session, many queries over the same pair.
//! let session = Session::builder(a, b).seed(Seed(7)).build();
//!
//! // Estimate the set-intersection join size ||AB||_0 within (1+eps)
//! // using 2 rounds and O~(n/eps) bits (paper Algorithm 1).
//! let run = session.run(&LpNorm, &LpParams::new(PNorm::Zero, 0.25)).unwrap();
//! println!(
//!     "composition size ≈ {:.0} ({} bits, {} rounds)",
//!     run.output,
//!     run.bits(),
//!     run.rounds()
//! );
//!
//! // The same protocols as queueable plain data (dynamic dispatch).
//! let report = session.estimate(&EstimateRequest::ExactL1).unwrap();
//! println!("natural join size = {:?} ({} bits)", report.output, report.bits());
//! ```
//!
//! ## Workspace layout
//!
//! * [`comm`] — the two-party communication substrate (bit-level wire
//!   encodings, transcripts with exact bit/round accounting, and the
//!   executor backends — a fused single-thread scheduler and a
//!   reference two-thread one — so parties only interact through
//!   messages);
//! * [`matrix`] — matrices (dense / CSR / bit-packed), the set-join
//!   view, exact ground truth, seeded workload generators;
//! * [`sketch`] — the linear sketch toolbox (AMS, p-stable, linear `ℓ0`,
//!   `ℓ0`-sampler, CountSketch, block-AMS, Mersenne-61 field);
//! * [`protocols`] — the paper's protocols (Algorithms 1–4, Remarks 2–3,
//!   Theorems 3.2, 4.8, 5.3, Lemma 2.5, plus baselines) behind the
//!   `Session` / `Protocol` / `EstimateRequest` API;
//! * [`lower`] — the paper's lower-bound constructions as runnable hard
//!   instances (Theorems 4.4–4.6, 4.8(2)).

pub use mpest_comm as comm;
pub use mpest_core as protocols;
pub use mpest_lower as lower;
pub use mpest_matrix as matrix;
pub use mpest_net as net;
pub use mpest_sketch as sketch;
pub use mpest_verify as verify;

/// Convenience re-exports covering the common API surface.
pub mod prelude {
    // The session-first API: start here.
    pub use mpest_core::{
        AnyOutput, EstimateReport, EstimateRequest, PartyView, PeerInfo, ProductDims, Protocol,
        Session, SessionBuilder, SessionCtx, SessionInput,
    };
    // Parallel batched execution over one session.
    pub use mpest_core::{BatchPlan, BatchReport, Engine, SeedSchedule};
    // Protocol unit structs.
    pub use mpest_core::{
        AtLeastTJoin, AtLeastTParams, ExactL1, HhBinary, HhGeneral, L0Sample, L1Sampling,
        LinfBinary, LinfGeneral, LinfKappa, LpBaseline, LpNorm, SparseMatmul, TrivialBinary,
        TrivialCsr,
    };
    // Parameter types (kept at their module paths too).
    pub use mpest_core::hh_binary::HhBinaryParams;
    pub use mpest_core::hh_general::HhGeneralParams;
    pub use mpest_core::l0_sample::L0SampleParams;
    pub use mpest_core::linf_binary::LinfBinaryParams;
    pub use mpest_core::linf_general::LinfGeneralParams;
    pub use mpest_core::linf_kappa::LinfKappaParams;
    pub use mpest_core::lp_baseline::BaselineParams;
    pub use mpest_core::lp_norm::LpParams;
    // Protocol modules (parameter types and the combinators live here).
    pub use mpest_core::{
        boost, exact_l1, hh_binary, hh_general, l0_sample, l1_sample, linf_binary, linf_general,
        linf_kappa, lp_baseline, lp_norm, sparse_matmul, trivial,
    };
    // Output and substrate types.
    pub use mpest_comm::{BatchAccounting, ExecBackend, Party, Role, Seed, Transcript};
    pub use mpest_core::{
        Constants, HeavyHitters, HhPair, L1Sample, LinfEstimate, MatrixSample, ProductShares,
        ProtocolRun,
    };
    // The streaming layer: live updates over an epoch-versioned session.
    pub use mpest_core::{UpdateBatch, UpdateOp, UpdateSide};
    // The serving layer: real sockets, remote parties, session cache.
    pub use mpest_net::{PartyHost, ServeClient, Server};
    // Statistical contracts and the Monte-Carlo verification harness.
    pub use mpest_core::{GuaranteeKind, GuaranteeSpec};
    pub use mpest_matrix::{
        joins, norms, stats, BitMatrix, CsrMatrix, PNorm, SetFamily, SparseVec, Workloads,
    };
    pub use mpest_verify::{VerifyConfig, VerifyReport};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_working_api() {
        let a = Workloads::bernoulli_bits(16, 24, 0.3, 1).to_csr();
        let b = Workloads::bernoulli_bits(24, 16, 0.3, 2).to_csr();
        let session = Session::builder(a, b).seed(Seed(1)).build();
        let run = session.run(&ExactL1, &()).unwrap();
        assert!(run.output > 0);
        let report = session.estimate(&EstimateRequest::ExactL1).unwrap();
        assert_eq!(report.protocol, "exact-l1");
    }
}
