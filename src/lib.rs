//! # mpest — distributed statistical estimation of matrix products
//!
//! A complete Rust implementation of **Woodruff & Zhang, "Distributed
//! Statistical Estimation of Matrix Products with Applications"
//! (PODS 2018)**: two-party communication protocols that estimate
//! statistics of `C = A·B` — `ℓp` norms (`p ∈ [0, 2]`), `ℓ0`/`ℓ1`
//! sampling, the maximum entry (`ℓ∞`), and `(φ, ε)` heavy hitters —
//! where Alice holds `A` and Bob holds `B`, with bit-exact communication
//! accounting.
//!
//! These statistics are the classic database-join quantities: for binary
//! matrices encoding relations, `‖AB‖₀` is the set-intersection join
//! (composition) size, `‖AB‖₁` the natural join size, `‖AB‖∞` the most
//! overlapping pair of sets, and the heavy hitters are the pairs above a
//! join-size threshold.
//!
//! The workspace is organized as:
//!
//! * [`comm`] — the two-party communication substrate (bit-level wire
//!   encodings, transcripts with exact bit/round accounting, a
//!   two-thread executor so parties only interact through messages);
//! * [`matrix`] — matrices (dense / CSR / bit-packed), the set-join
//!   view, exact ground truth, seeded workload generators;
//! * [`sketch`] — the linear sketch toolbox (AMS, p-stable, linear `ℓ0`,
//!   `ℓ0`-sampler, CountSketch, block-AMS, Mersenne-61 field);
//! * [`protocols`] — the paper's protocols (Algorithms 1–4, Remarks 2–3,
//!   Theorems 3.2, 4.8, 5.3, Lemma 2.5, plus baselines);
//! * [`lower`] — the paper's lower-bound constructions as runnable hard
//!   instances (Theorems 4.4–4.6, 4.8(2)).
//!
//! ## Quickstart
//!
//! ```
//! use mpest::prelude::*;
//!
//! // Alice's relation: rows are her sets. Bob's: columns are his sets.
//! let a = Workloads::bernoulli_bits(64, 96, 0.2, 1).to_csr();
//! let b = Workloads::bernoulli_bits(96, 64, 0.2, 2).to_csr();
//!
//! // Estimate the set-intersection join size ||AB||_0 within (1+eps)
//! // using 2 rounds and O~(n/eps) bits (paper Algorithm 1).
//! let run = lp_norm::run(&a, &b, &LpParams::new(PNorm::Zero, 0.25), Seed(7)).unwrap();
//! println!(
//!     "composition size ≈ {:.0} ({} bits, {} rounds)",
//!     run.output,
//!     run.bits(),
//!     run.rounds()
//! );
//! ```

pub use mpest_comm as comm;
pub use mpest_core as protocols;
pub use mpest_lower as lower;
pub use mpest_matrix as matrix;
pub use mpest_sketch as sketch;

/// Convenience re-exports covering the common API surface.
pub mod prelude {
    pub use mpest_comm::{Party, Seed, Transcript};
    pub use mpest_core::hh_binary::{self, HhBinaryParams};
    pub use mpest_core::hh_general::{self, HhGeneralParams};
    pub use mpest_core::l0_sample::{self, L0SampleParams};
    pub use mpest_core::linf_binary::{self, LinfBinaryParams};
    pub use mpest_core::linf_general::{self, LinfGeneralParams};
    pub use mpest_core::linf_kappa::{self, LinfKappaParams};
    pub use mpest_core::lp_baseline::{self, BaselineParams};
    pub use mpest_core::lp_norm::{self, LpParams};
    pub use mpest_core::{boost, exact_l1, l1_sample, sparse_matmul, trivial};
    pub use mpest_core::{
        Constants, HeavyHitters, HhPair, L1Sample, LinfEstimate, MatrixSample, ProductShares,
        ProtocolRun,
    };
    pub use mpest_matrix::{
        joins, norms, stats, BitMatrix, CsrMatrix, PNorm, SetFamily, SparseVec, Workloads,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_working_api() {
        let a = Workloads::bernoulli_bits(16, 24, 0.3, 1).to_csr();
        let b = Workloads::bernoulli_bits(24, 16, 0.3, 2).to_csr();
        let run = exact_l1::run(&a, &b, Seed(1)).unwrap();
        assert!(run.output > 0);
    }
}
