/root/repo/target/debug/examples/job_matching-90e559550acdf051.d: examples/job_matching.rs Cargo.toml

/root/repo/target/debug/examples/libjob_matching-90e559550acdf051.rmeta: examples/job_matching.rs Cargo.toml

examples/job_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
