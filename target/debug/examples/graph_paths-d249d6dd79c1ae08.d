/root/repo/target/debug/examples/graph_paths-d249d6dd79c1ae08.d: examples/graph_paths.rs

/root/repo/target/debug/examples/libgraph_paths-d249d6dd79c1ae08.rmeta: examples/graph_paths.rs

examples/graph_paths.rs:
