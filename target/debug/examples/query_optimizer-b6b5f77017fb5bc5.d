/root/repo/target/debug/examples/query_optimizer-b6b5f77017fb5bc5.d: examples/query_optimizer.rs

/root/repo/target/debug/examples/query_optimizer-b6b5f77017fb5bc5: examples/query_optimizer.rs

examples/query_optimizer.rs:
