/root/repo/target/debug/examples/query_optimizer-e1d0204e5671b296.d: examples/query_optimizer.rs Cargo.toml

/root/repo/target/debug/examples/libquery_optimizer-e1d0204e5671b296.rmeta: examples/query_optimizer.rs Cargo.toml

examples/query_optimizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
