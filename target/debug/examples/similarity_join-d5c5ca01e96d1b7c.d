/root/repo/target/debug/examples/similarity_join-d5c5ca01e96d1b7c.d: examples/similarity_join.rs

/root/repo/target/debug/examples/similarity_join-d5c5ca01e96d1b7c: examples/similarity_join.rs

examples/similarity_join.rs:
