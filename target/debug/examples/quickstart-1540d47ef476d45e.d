/root/repo/target/debug/examples/quickstart-1540d47ef476d45e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-1540d47ef476d45e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
