/root/repo/target/debug/examples/job_matching-ca22b471c08ac95b.d: examples/job_matching.rs

/root/repo/target/debug/examples/job_matching-ca22b471c08ac95b: examples/job_matching.rs

examples/job_matching.rs:
