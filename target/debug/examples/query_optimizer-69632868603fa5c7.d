/root/repo/target/debug/examples/query_optimizer-69632868603fa5c7.d: examples/query_optimizer.rs

/root/repo/target/debug/examples/libquery_optimizer-69632868603fa5c7.rmeta: examples/query_optimizer.rs

examples/query_optimizer.rs:
