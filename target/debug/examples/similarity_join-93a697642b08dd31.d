/root/repo/target/debug/examples/similarity_join-93a697642b08dd31.d: examples/similarity_join.rs

/root/repo/target/debug/examples/libsimilarity_join-93a697642b08dd31.rmeta: examples/similarity_join.rs

examples/similarity_join.rs:
