/root/repo/target/debug/examples/job_matching-ba6680fe9c78e63b.d: examples/job_matching.rs

/root/repo/target/debug/examples/libjob_matching-ba6680fe9c78e63b.rmeta: examples/job_matching.rs

examples/job_matching.rs:
