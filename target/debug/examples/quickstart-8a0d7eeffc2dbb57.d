/root/repo/target/debug/examples/quickstart-8a0d7eeffc2dbb57.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-8a0d7eeffc2dbb57.rmeta: examples/quickstart.rs

examples/quickstart.rs:
