/root/repo/target/debug/examples/quickstart-32ad8834d42d7123.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-32ad8834d42d7123: examples/quickstart.rs

examples/quickstart.rs:
