/root/repo/target/debug/examples/graph_paths-a87e19b6a609848b.d: examples/graph_paths.rs Cargo.toml

/root/repo/target/debug/examples/libgraph_paths-a87e19b6a609848b.rmeta: examples/graph_paths.rs Cargo.toml

examples/graph_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
