/root/repo/target/debug/examples/similarity_join-64d9a339897c84a7.d: examples/similarity_join.rs Cargo.toml

/root/repo/target/debug/examples/libsimilarity_join-64d9a339897c84a7.rmeta: examples/similarity_join.rs Cargo.toml

examples/similarity_join.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
