/root/repo/target/debug/examples/graph_paths-1e82dc1a6a55ffd9.d: examples/graph_paths.rs

/root/repo/target/debug/examples/graph_paths-1e82dc1a6a55ffd9: examples/graph_paths.rs

examples/graph_paths.rs:
