/root/repo/target/debug/libproptest.rlib: /root/repo/crates/shims/proptest/src/lib.rs
