/root/repo/target/debug/libbytes.rlib: /root/repo/crates/shims/bytes/src/lib.rs
