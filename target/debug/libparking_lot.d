/root/repo/target/debug/libparking_lot.rlib: /root/repo/crates/shims/parking_lot/src/lib.rs
