/root/repo/target/debug/libcrossbeam.rlib: /root/repo/crates/shims/crossbeam/src/lib.rs
