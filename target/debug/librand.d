/root/repo/target/debug/librand.rlib: /root/repo/crates/shims/rand/src/lib.rs
