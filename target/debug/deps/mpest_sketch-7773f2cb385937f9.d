/root/repo/target/debug/deps/mpest_sketch-7773f2cb385937f9.d: crates/sketch/src/lib.rs crates/sketch/src/ams.rs crates/sketch/src/blockams.rs crates/sketch/src/countsketch.rs crates/sketch/src/field.rs crates/sketch/src/hash.rs crates/sketch/src/inner.rs crates/sketch/src/l0.rs crates/sketch/src/l0sampler.rs crates/sketch/src/linear.rs crates/sketch/src/lp.rs crates/sketch/src/normsketch.rs crates/sketch/src/stable.rs

/root/repo/target/debug/deps/mpest_sketch-7773f2cb385937f9: crates/sketch/src/lib.rs crates/sketch/src/ams.rs crates/sketch/src/blockams.rs crates/sketch/src/countsketch.rs crates/sketch/src/field.rs crates/sketch/src/hash.rs crates/sketch/src/inner.rs crates/sketch/src/l0.rs crates/sketch/src/l0sampler.rs crates/sketch/src/linear.rs crates/sketch/src/lp.rs crates/sketch/src/normsketch.rs crates/sketch/src/stable.rs

crates/sketch/src/lib.rs:
crates/sketch/src/ams.rs:
crates/sketch/src/blockams.rs:
crates/sketch/src/countsketch.rs:
crates/sketch/src/field.rs:
crates/sketch/src/hash.rs:
crates/sketch/src/inner.rs:
crates/sketch/src/l0.rs:
crates/sketch/src/l0sampler.rs:
crates/sketch/src/linear.rs:
crates/sketch/src/lp.rs:
crates/sketch/src/normsketch.rs:
crates/sketch/src/stable.rs:
