/root/repo/target/debug/deps/prop_invariants-104e5c05a4801daf.d: crates/matrix/tests/prop_invariants.rs

/root/repo/target/debug/deps/libprop_invariants-104e5c05a4801daf.rmeta: crates/matrix/tests/prop_invariants.rs

crates/matrix/tests/prop_invariants.rs:
