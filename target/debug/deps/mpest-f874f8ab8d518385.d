/root/repo/target/debug/deps/mpest-f874f8ab8d518385.d: src/bin/mpest.rs

/root/repo/target/debug/deps/libmpest-f874f8ab8d518385.rmeta: src/bin/mpest.rs

src/bin/mpest.rs:
