/root/repo/target/debug/deps/rand-0ea4f7139c79499e.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0ea4f7139c79499e.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-0ea4f7139c79499e.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
