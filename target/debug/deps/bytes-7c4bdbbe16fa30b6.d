/root/repo/target/debug/deps/bytes-7c4bdbbe16fa30b6.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-7c4bdbbe16fa30b6.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
