/root/repo/target/debug/deps/comm_budgets-a657e67479a2cc58.d: tests/comm_budgets.rs Cargo.toml

/root/repo/target/debug/deps/libcomm_budgets-a657e67479a2cc58.rmeta: tests/comm_budgets.rs Cargo.toml

tests/comm_budgets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
