/root/repo/target/debug/deps/experiments-3e6b60276d1938f4.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-3e6b60276d1938f4: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
