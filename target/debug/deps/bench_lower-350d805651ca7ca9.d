/root/repo/target/debug/deps/bench_lower-350d805651ca7ca9.d: crates/bench/benches/bench_lower.rs

/root/repo/target/debug/deps/bench_lower-350d805651ca7ca9: crates/bench/benches/bench_lower.rs

crates/bench/benches/bench_lower.rs:
