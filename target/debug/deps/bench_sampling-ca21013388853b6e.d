/root/repo/target/debug/deps/bench_sampling-ca21013388853b6e.d: crates/bench/benches/bench_sampling.rs

/root/repo/target/debug/deps/libbench_sampling-ca21013388853b6e.rmeta: crates/bench/benches/bench_sampling.rs

crates/bench/benches/bench_sampling.rs:
