/root/repo/target/debug/deps/robustness-2a4c6df36d068534.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-2a4c6df36d068534.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
