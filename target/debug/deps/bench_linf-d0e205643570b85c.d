/root/repo/target/debug/deps/bench_linf-d0e205643570b85c.d: crates/bench/benches/bench_linf.rs

/root/repo/target/debug/deps/bench_linf-d0e205643570b85c: crates/bench/benches/bench_linf.rs

crates/bench/benches/bench_linf.rs:
