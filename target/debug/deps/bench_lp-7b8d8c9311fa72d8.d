/root/repo/target/debug/deps/bench_lp-7b8d8c9311fa72d8.d: crates/bench/benches/bench_lp.rs

/root/repo/target/debug/deps/bench_lp-7b8d8c9311fa72d8: crates/bench/benches/bench_lp.rs

crates/bench/benches/bench_lp.rs:
