/root/repo/target/debug/deps/mpest-c00743fc7be94095.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpest-c00743fc7be94095.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
