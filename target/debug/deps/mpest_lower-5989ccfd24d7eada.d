/root/repo/target/debug/deps/mpest_lower-5989ccfd24d7eada.d: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

/root/repo/target/debug/deps/libmpest_lower-5989ccfd24d7eada.rmeta: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

crates/lower/src/lib.rs:
crates/lower/src/disj.rs:
crates/lower/src/gap_linf.rs:
crates/lower/src/sum_problem.rs:
