/root/repo/target/debug/deps/lower_bounds-ab72d882d74f4d79.d: tests/lower_bounds.rs

/root/repo/target/debug/deps/lower_bounds-ab72d882d74f4d79: tests/lower_bounds.rs

tests/lower_bounds.rs:
