/root/repo/target/debug/deps/rect_shapes-28c52fbbededbcf9.d: tests/rect_shapes.rs Cargo.toml

/root/repo/target/debug/deps/librect_shapes-28c52fbbededbcf9.rmeta: tests/rect_shapes.rs Cargo.toml

tests/rect_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
