/root/repo/target/debug/deps/proptest-d37973ecccc22fe9.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-d37973ecccc22fe9.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
