/root/repo/target/debug/deps/parking_lot-53641308a9d9d8b6.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-53641308a9d9d8b6.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
