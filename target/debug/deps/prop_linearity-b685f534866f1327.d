/root/repo/target/debug/deps/prop_linearity-b685f534866f1327.d: crates/sketch/tests/prop_linearity.rs Cargo.toml

/root/repo/target/debug/deps/libprop_linearity-b685f534866f1327.rmeta: crates/sketch/tests/prop_linearity.rs Cargo.toml

crates/sketch/tests/prop_linearity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
