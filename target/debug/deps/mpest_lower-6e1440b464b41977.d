/root/repo/target/debug/deps/mpest_lower-6e1440b464b41977.d: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

/root/repo/target/debug/deps/mpest_lower-6e1440b464b41977: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

crates/lower/src/lib.rs:
crates/lower/src/disj.rs:
crates/lower/src/gap_linf.rs:
crates/lower/src/sum_problem.rs:
