/root/repo/target/debug/deps/proptest-62ea0b1a1d1dab28.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-62ea0b1a1d1dab28.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
