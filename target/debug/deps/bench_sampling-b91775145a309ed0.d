/root/repo/target/debug/deps/bench_sampling-b91775145a309ed0.d: crates/bench/benches/bench_sampling.rs

/root/repo/target/debug/deps/bench_sampling-b91775145a309ed0: crates/bench/benches/bench_sampling.rs

crates/bench/benches/bench_sampling.rs:
