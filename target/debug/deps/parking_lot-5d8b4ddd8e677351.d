/root/repo/target/debug/deps/parking_lot-5d8b4ddd8e677351.d: crates/shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparking_lot-5d8b4ddd8e677351.rmeta: crates/shims/parking_lot/src/lib.rs Cargo.toml

crates/shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
