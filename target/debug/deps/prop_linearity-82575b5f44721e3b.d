/root/repo/target/debug/deps/prop_linearity-82575b5f44721e3b.d: crates/sketch/tests/prop_linearity.rs

/root/repo/target/debug/deps/prop_linearity-82575b5f44721e3b: crates/sketch/tests/prop_linearity.rs

crates/sketch/tests/prop_linearity.rs:
