/root/repo/target/debug/deps/robustness-bed7b24795172c74.d: tests/robustness.rs

/root/repo/target/debug/deps/librobustness-bed7b24795172c74.rmeta: tests/robustness.rs

tests/robustness.rs:
