/root/repo/target/debug/deps/parking_lot-75158a5d55810b6b.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-75158a5d55810b6b.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-75158a5d55810b6b.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
