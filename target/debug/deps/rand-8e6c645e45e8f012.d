/root/repo/target/debug/deps/rand-8e6c645e45e8f012.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-8e6c645e45e8f012.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
