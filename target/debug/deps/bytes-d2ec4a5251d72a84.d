/root/repo/target/debug/deps/bytes-d2ec4a5251d72a84.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-d2ec4a5251d72a84.rlib: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-d2ec4a5251d72a84.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
