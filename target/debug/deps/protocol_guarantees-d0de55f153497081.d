/root/repo/target/debug/deps/protocol_guarantees-d0de55f153497081.d: tests/protocol_guarantees.rs

/root/repo/target/debug/deps/libprotocol_guarantees-d0de55f153497081.rmeta: tests/protocol_guarantees.rs

tests/protocol_guarantees.rs:
