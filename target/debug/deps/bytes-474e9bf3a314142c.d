/root/repo/target/debug/deps/bytes-474e9bf3a314142c.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbytes-474e9bf3a314142c.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
