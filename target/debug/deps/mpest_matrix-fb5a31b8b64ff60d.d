/root/repo/target/debug/deps/mpest_matrix-fb5a31b8b64ff60d.d: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs

/root/repo/target/debug/deps/mpest_matrix-fb5a31b8b64ff60d: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs

crates/matrix/src/lib.rs:
crates/matrix/src/accumulate.rs:
crates/matrix/src/bitmat.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/gen.rs:
crates/matrix/src/hashx.rs:
crates/matrix/src/io.rs:
crates/matrix/src/joins.rs:
crates/matrix/src/norms.rs:
crates/matrix/src/ring.rs:
crates/matrix/src/sparse.rs:
crates/matrix/src/stats.rs:
