/root/repo/target/debug/deps/crossbeam-2810da96050530c7.d: crates/shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-2810da96050530c7.rmeta: crates/shims/crossbeam/src/lib.rs Cargo.toml

crates/shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
