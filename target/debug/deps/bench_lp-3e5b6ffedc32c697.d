/root/repo/target/debug/deps/bench_lp-3e5b6ffedc32c697.d: crates/bench/benches/bench_lp.rs

/root/repo/target/debug/deps/libbench_lp-3e5b6ffedc32c697.rmeta: crates/bench/benches/bench_lp.rs

crates/bench/benches/bench_lp.rs:
