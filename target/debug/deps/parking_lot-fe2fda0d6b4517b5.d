/root/repo/target/debug/deps/parking_lot-fe2fda0d6b4517b5.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-fe2fda0d6b4517b5: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
