/root/repo/target/debug/deps/criterion-910da4ba4255aecf.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-910da4ba4255aecf.rlib: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-910da4ba4255aecf.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
