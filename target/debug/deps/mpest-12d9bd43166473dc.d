/root/repo/target/debug/deps/mpest-12d9bd43166473dc.d: src/bin/mpest.rs Cargo.toml

/root/repo/target/debug/deps/libmpest-12d9bd43166473dc.rmeta: src/bin/mpest.rs Cargo.toml

src/bin/mpest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
