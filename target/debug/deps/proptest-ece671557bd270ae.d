/root/repo/target/debug/deps/proptest-ece671557bd270ae.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ece671557bd270ae.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ece671557bd270ae.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
