/root/repo/target/debug/deps/mpest_lower-43f97a0567515d8e.d: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

/root/repo/target/debug/deps/libmpest_lower-43f97a0567515d8e.rlib: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

/root/repo/target/debug/deps/libmpest_lower-43f97a0567515d8e.rmeta: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

crates/lower/src/lib.rs:
crates/lower/src/disj.rs:
crates/lower/src/gap_linf.rs:
crates/lower/src/sum_problem.rs:
