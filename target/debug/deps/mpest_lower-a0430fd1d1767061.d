/root/repo/target/debug/deps/mpest_lower-a0430fd1d1767061.d: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs Cargo.toml

/root/repo/target/debug/deps/libmpest_lower-a0430fd1d1767061.rmeta: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs Cargo.toml

crates/lower/src/lib.rs:
crates/lower/src/disj.rs:
crates/lower/src/gap_linf.rs:
crates/lower/src/sum_problem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
