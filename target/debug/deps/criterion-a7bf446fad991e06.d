/root/repo/target/debug/deps/criterion-a7bf446fad991e06.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/criterion-a7bf446fad991e06: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
