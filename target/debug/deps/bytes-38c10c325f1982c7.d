/root/repo/target/debug/deps/bytes-38c10c325f1982c7.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/bytes-38c10c325f1982c7: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
