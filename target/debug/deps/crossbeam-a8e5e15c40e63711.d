/root/repo/target/debug/deps/crossbeam-a8e5e15c40e63711.d: crates/shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a8e5e15c40e63711.rlib: crates/shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-a8e5e15c40e63711.rmeta: crates/shims/crossbeam/src/lib.rs

crates/shims/crossbeam/src/lib.rs:
