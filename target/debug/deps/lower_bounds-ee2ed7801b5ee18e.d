/root/repo/target/debug/deps/lower_bounds-ee2ed7801b5ee18e.d: tests/lower_bounds.rs Cargo.toml

/root/repo/target/debug/deps/liblower_bounds-ee2ed7801b5ee18e.rmeta: tests/lower_bounds.rs Cargo.toml

tests/lower_bounds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
