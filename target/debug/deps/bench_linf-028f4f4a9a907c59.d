/root/repo/target/debug/deps/bench_linf-028f4f4a9a907c59.d: crates/bench/benches/bench_linf.rs Cargo.toml

/root/repo/target/debug/deps/libbench_linf-028f4f4a9a907c59.rmeta: crates/bench/benches/bench_linf.rs Cargo.toml

crates/bench/benches/bench_linf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
