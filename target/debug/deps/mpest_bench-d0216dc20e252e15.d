/root/repo/target/debug/deps/mpest_bench-d0216dc20e252e15.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/mpest_bench-d0216dc20e252e15: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fit.rs:
crates/bench/src/report.rs:
