/root/repo/target/debug/deps/mpest-d536441f9d5c1555.d: src/bin/mpest.rs

/root/repo/target/debug/deps/mpest-d536441f9d5c1555: src/bin/mpest.rs

src/bin/mpest.rs:
