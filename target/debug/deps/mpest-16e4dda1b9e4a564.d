/root/repo/target/debug/deps/mpest-16e4dda1b9e4a564.d: src/bin/mpest.rs

/root/repo/target/debug/deps/mpest-16e4dda1b9e4a564: src/bin/mpest.rs

src/bin/mpest.rs:
