/root/repo/target/debug/deps/rand-cc43cd81f3202381.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-cc43cd81f3202381.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
