/root/repo/target/debug/deps/prop_invariants-b5c657a8a097fee5.d: crates/matrix/tests/prop_invariants.rs Cargo.toml

/root/repo/target/debug/deps/libprop_invariants-b5c657a8a097fee5.rmeta: crates/matrix/tests/prop_invariants.rs Cargo.toml

crates/matrix/tests/prop_invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
