/root/repo/target/debug/deps/mpest_comm-774ced784dc77338.d: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

/root/repo/target/debug/deps/libmpest_comm-774ced784dc77338.rmeta: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

crates/comm/src/lib.rs:
crates/comm/src/bits.rs:
crates/comm/src/channel.rs:
crates/comm/src/cost.rs:
crates/comm/src/error.rs:
crates/comm/src/seed.rs:
crates/comm/src/transcript.rs:
crates/comm/src/wire.rs:
