/root/repo/target/debug/deps/prop_roundtrip-0a6ae4f72389914b.d: crates/comm/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/prop_roundtrip-0a6ae4f72389914b: crates/comm/tests/prop_roundtrip.rs

crates/comm/tests/prop_roundtrip.rs:
