/root/repo/target/debug/deps/mpest_sketch-573104a9ef994779.d: crates/sketch/src/lib.rs crates/sketch/src/ams.rs crates/sketch/src/blockams.rs crates/sketch/src/countsketch.rs crates/sketch/src/field.rs crates/sketch/src/hash.rs crates/sketch/src/inner.rs crates/sketch/src/l0.rs crates/sketch/src/l0sampler.rs crates/sketch/src/linear.rs crates/sketch/src/lp.rs crates/sketch/src/normsketch.rs crates/sketch/src/stable.rs Cargo.toml

/root/repo/target/debug/deps/libmpest_sketch-573104a9ef994779.rmeta: crates/sketch/src/lib.rs crates/sketch/src/ams.rs crates/sketch/src/blockams.rs crates/sketch/src/countsketch.rs crates/sketch/src/field.rs crates/sketch/src/hash.rs crates/sketch/src/inner.rs crates/sketch/src/l0.rs crates/sketch/src/l0sampler.rs crates/sketch/src/linear.rs crates/sketch/src/lp.rs crates/sketch/src/normsketch.rs crates/sketch/src/stable.rs Cargo.toml

crates/sketch/src/lib.rs:
crates/sketch/src/ams.rs:
crates/sketch/src/blockams.rs:
crates/sketch/src/countsketch.rs:
crates/sketch/src/field.rs:
crates/sketch/src/hash.rs:
crates/sketch/src/inner.rs:
crates/sketch/src/l0.rs:
crates/sketch/src/l0sampler.rs:
crates/sketch/src/linear.rs:
crates/sketch/src/lp.rs:
crates/sketch/src/normsketch.rs:
crates/sketch/src/stable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
