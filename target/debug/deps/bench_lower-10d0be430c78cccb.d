/root/repo/target/debug/deps/bench_lower-10d0be430c78cccb.d: crates/bench/benches/bench_lower.rs

/root/repo/target/debug/deps/libbench_lower-10d0be430c78cccb.rmeta: crates/bench/benches/bench_lower.rs

crates/bench/benches/bench_lower.rs:
