/root/repo/target/debug/deps/comm_budgets-e005be0fc1c6196f.d: tests/comm_budgets.rs

/root/repo/target/debug/deps/comm_budgets-e005be0fc1c6196f: tests/comm_budgets.rs

tests/comm_budgets.rs:
