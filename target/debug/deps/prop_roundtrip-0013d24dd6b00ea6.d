/root/repo/target/debug/deps/prop_roundtrip-0013d24dd6b00ea6.d: crates/comm/tests/prop_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libprop_roundtrip-0013d24dd6b00ea6.rmeta: crates/comm/tests/prop_roundtrip.rs Cargo.toml

crates/comm/tests/prop_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
