/root/repo/target/debug/deps/bench_lower-68370e32c8a6dd9f.d: crates/bench/benches/bench_lower.rs Cargo.toml

/root/repo/target/debug/deps/libbench_lower-68370e32c8a6dd9f.rmeta: crates/bench/benches/bench_lower.rs Cargo.toml

crates/bench/benches/bench_lower.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
