/root/repo/target/debug/deps/mpest_bench-8f7d9f3668f7d7f2.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libmpest_bench-8f7d9f3668f7d7f2.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fit.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
