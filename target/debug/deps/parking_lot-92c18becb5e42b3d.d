/root/repo/target/debug/deps/parking_lot-92c18becb5e42b3d.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-92c18becb5e42b3d.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
