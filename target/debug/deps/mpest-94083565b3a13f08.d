/root/repo/target/debug/deps/mpest-94083565b3a13f08.d: src/lib.rs

/root/repo/target/debug/deps/libmpest-94083565b3a13f08.rmeta: src/lib.rs

src/lib.rs:
