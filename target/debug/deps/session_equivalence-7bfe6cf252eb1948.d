/root/repo/target/debug/deps/session_equivalence-7bfe6cf252eb1948.d: tests/session_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libsession_equivalence-7bfe6cf252eb1948.rmeta: tests/session_equivalence.rs Cargo.toml

tests/session_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
