/root/repo/target/debug/deps/bench_hh-3c78e3257eb94776.d: crates/bench/benches/bench_hh.rs

/root/repo/target/debug/deps/bench_hh-3c78e3257eb94776: crates/bench/benches/bench_hh.rs

crates/bench/benches/bench_hh.rs:
