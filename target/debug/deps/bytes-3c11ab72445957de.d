/root/repo/target/debug/deps/bytes-3c11ab72445957de.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3c11ab72445957de.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
