/root/repo/target/debug/deps/end_to_end-a33e13aa98d75002.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a33e13aa98d75002: tests/end_to_end.rs

tests/end_to_end.rs:
