/root/repo/target/debug/deps/experiments-b46258ca0b87a472.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-b46258ca0b87a472: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
