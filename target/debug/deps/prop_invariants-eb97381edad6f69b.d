/root/repo/target/debug/deps/prop_invariants-eb97381edad6f69b.d: crates/matrix/tests/prop_invariants.rs

/root/repo/target/debug/deps/prop_invariants-eb97381edad6f69b: crates/matrix/tests/prop_invariants.rs

crates/matrix/tests/prop_invariants.rs:
