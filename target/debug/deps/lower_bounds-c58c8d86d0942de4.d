/root/repo/target/debug/deps/lower_bounds-c58c8d86d0942de4.d: tests/lower_bounds.rs

/root/repo/target/debug/deps/liblower_bounds-c58c8d86d0942de4.rmeta: tests/lower_bounds.rs

tests/lower_bounds.rs:
