/root/repo/target/debug/deps/proptest-bda3dcfccd79e2a0.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-bda3dcfccd79e2a0.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
