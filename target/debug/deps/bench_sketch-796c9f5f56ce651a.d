/root/repo/target/debug/deps/bench_sketch-796c9f5f56ce651a.d: crates/bench/benches/bench_sketch.rs

/root/repo/target/debug/deps/bench_sketch-796c9f5f56ce651a: crates/bench/benches/bench_sketch.rs

crates/bench/benches/bench_sketch.rs:
