/root/repo/target/debug/deps/crossbeam-9e9ac53c1e616dda.d: crates/shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcrossbeam-9e9ac53c1e616dda.rmeta: crates/shims/crossbeam/src/lib.rs Cargo.toml

crates/shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
