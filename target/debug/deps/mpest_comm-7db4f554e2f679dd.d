/root/repo/target/debug/deps/mpest_comm-7db4f554e2f679dd.d: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

/root/repo/target/debug/deps/mpest_comm-7db4f554e2f679dd: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

crates/comm/src/lib.rs:
crates/comm/src/bits.rs:
crates/comm/src/channel.rs:
crates/comm/src/cost.rs:
crates/comm/src/error.rs:
crates/comm/src/seed.rs:
crates/comm/src/transcript.rs:
crates/comm/src/wire.rs:
