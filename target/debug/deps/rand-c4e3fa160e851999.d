/root/repo/target/debug/deps/rand-c4e3fa160e851999.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librand-c4e3fa160e851999.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
