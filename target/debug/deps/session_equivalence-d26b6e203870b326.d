/root/repo/target/debug/deps/session_equivalence-d26b6e203870b326.d: tests/session_equivalence.rs

/root/repo/target/debug/deps/session_equivalence-d26b6e203870b326: tests/session_equivalence.rs

tests/session_equivalence.rs:
