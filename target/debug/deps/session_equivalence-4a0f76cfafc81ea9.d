/root/repo/target/debug/deps/session_equivalence-4a0f76cfafc81ea9.d: tests/session_equivalence.rs

/root/repo/target/debug/deps/libsession_equivalence-4a0f76cfafc81ea9.rmeta: tests/session_equivalence.rs

tests/session_equivalence.rs:
