/root/repo/target/debug/deps/bench_lp-94ea87e728c1af03.d: crates/bench/benches/bench_lp.rs Cargo.toml

/root/repo/target/debug/deps/libbench_lp-94ea87e728c1af03.rmeta: crates/bench/benches/bench_lp.rs Cargo.toml

crates/bench/benches/bench_lp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
