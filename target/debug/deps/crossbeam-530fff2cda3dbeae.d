/root/repo/target/debug/deps/crossbeam-530fff2cda3dbeae.d: crates/shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-530fff2cda3dbeae.rmeta: crates/shims/crossbeam/src/lib.rs

crates/shims/crossbeam/src/lib.rs:
