/root/repo/target/debug/deps/crossbeam-e0a82968431a6e97.d: crates/shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-e0a82968431a6e97.rmeta: crates/shims/crossbeam/src/lib.rs

crates/shims/crossbeam/src/lib.rs:
