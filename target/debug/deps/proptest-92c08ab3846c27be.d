/root/repo/target/debug/deps/proptest-92c08ab3846c27be.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-92c08ab3846c27be.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
