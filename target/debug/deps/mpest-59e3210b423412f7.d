/root/repo/target/debug/deps/mpest-59e3210b423412f7.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmpest-59e3210b423412f7.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
