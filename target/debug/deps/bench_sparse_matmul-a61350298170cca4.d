/root/repo/target/debug/deps/bench_sparse_matmul-a61350298170cca4.d: crates/bench/benches/bench_sparse_matmul.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sparse_matmul-a61350298170cca4.rmeta: crates/bench/benches/bench_sparse_matmul.rs Cargo.toml

crates/bench/benches/bench_sparse_matmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
