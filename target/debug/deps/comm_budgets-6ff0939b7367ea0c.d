/root/repo/target/debug/deps/comm_budgets-6ff0939b7367ea0c.d: tests/comm_budgets.rs

/root/repo/target/debug/deps/libcomm_budgets-6ff0939b7367ea0c.rmeta: tests/comm_budgets.rs

tests/comm_budgets.rs:
