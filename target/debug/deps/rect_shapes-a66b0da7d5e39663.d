/root/repo/target/debug/deps/rect_shapes-a66b0da7d5e39663.d: tests/rect_shapes.rs

/root/repo/target/debug/deps/librect_shapes-a66b0da7d5e39663.rmeta: tests/rect_shapes.rs

tests/rect_shapes.rs:
