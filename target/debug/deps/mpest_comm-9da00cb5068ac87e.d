/root/repo/target/debug/deps/mpest_comm-9da00cb5068ac87e.d: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

/root/repo/target/debug/deps/libmpest_comm-9da00cb5068ac87e.rlib: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

/root/repo/target/debug/deps/libmpest_comm-9da00cb5068ac87e.rmeta: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

crates/comm/src/lib.rs:
crates/comm/src/bits.rs:
crates/comm/src/channel.rs:
crates/comm/src/cost.rs:
crates/comm/src/error.rs:
crates/comm/src/seed.rs:
crates/comm/src/transcript.rs:
crates/comm/src/wire.rs:
