/root/repo/target/debug/deps/crossbeam-fb365c0a093bf2db.d: crates/shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/crossbeam-fb365c0a093bf2db: crates/shims/crossbeam/src/lib.rs

crates/shims/crossbeam/src/lib.rs:
