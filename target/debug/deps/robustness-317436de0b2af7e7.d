/root/repo/target/debug/deps/robustness-317436de0b2af7e7.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-317436de0b2af7e7: tests/robustness.rs

tests/robustness.rs:
