/root/repo/target/debug/deps/mpest_matrix-93f0b25696620a00.d: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libmpest_matrix-93f0b25696620a00.rmeta: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs Cargo.toml

crates/matrix/src/lib.rs:
crates/matrix/src/accumulate.rs:
crates/matrix/src/bitmat.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/gen.rs:
crates/matrix/src/hashx.rs:
crates/matrix/src/io.rs:
crates/matrix/src/joins.rs:
crates/matrix/src/norms.rs:
crates/matrix/src/ring.rs:
crates/matrix/src/sparse.rs:
crates/matrix/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
