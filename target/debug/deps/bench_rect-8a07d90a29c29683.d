/root/repo/target/debug/deps/bench_rect-8a07d90a29c29683.d: crates/bench/benches/bench_rect.rs

/root/repo/target/debug/deps/bench_rect-8a07d90a29c29683: crates/bench/benches/bench_rect.rs

crates/bench/benches/bench_rect.rs:
