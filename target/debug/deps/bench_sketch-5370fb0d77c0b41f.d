/root/repo/target/debug/deps/bench_sketch-5370fb0d77c0b41f.d: crates/bench/benches/bench_sketch.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sketch-5370fb0d77c0b41f.rmeta: crates/bench/benches/bench_sketch.rs Cargo.toml

crates/bench/benches/bench_sketch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
