/root/repo/target/debug/deps/bench_hh-95884958a0865f24.d: crates/bench/benches/bench_hh.rs Cargo.toml

/root/repo/target/debug/deps/libbench_hh-95884958a0865f24.rmeta: crates/bench/benches/bench_hh.rs Cargo.toml

crates/bench/benches/bench_hh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
