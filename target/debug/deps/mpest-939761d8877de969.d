/root/repo/target/debug/deps/mpest-939761d8877de969.d: src/lib.rs

/root/repo/target/debug/deps/libmpest-939761d8877de969.rmeta: src/lib.rs

src/lib.rs:
