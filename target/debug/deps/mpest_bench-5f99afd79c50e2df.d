/root/repo/target/debug/deps/mpest_bench-5f99afd79c50e2df.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libmpest_bench-5f99afd79c50e2df.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fit.rs:
crates/bench/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
