/root/repo/target/debug/deps/prop_roundtrip-5a6df7c04bec4a17.d: crates/comm/tests/prop_roundtrip.rs

/root/repo/target/debug/deps/libprop_roundtrip-5a6df7c04bec4a17.rmeta: crates/comm/tests/prop_roundtrip.rs

crates/comm/tests/prop_roundtrip.rs:
