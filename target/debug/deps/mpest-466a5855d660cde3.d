/root/repo/target/debug/deps/mpest-466a5855d660cde3.d: src/bin/mpest.rs

/root/repo/target/debug/deps/libmpest-466a5855d660cde3.rmeta: src/bin/mpest.rs

src/bin/mpest.rs:
