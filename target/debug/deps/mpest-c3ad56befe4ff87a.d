/root/repo/target/debug/deps/mpest-c3ad56befe4ff87a.d: src/bin/mpest.rs Cargo.toml

/root/repo/target/debug/deps/libmpest-c3ad56befe4ff87a.rmeta: src/bin/mpest.rs Cargo.toml

src/bin/mpest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
