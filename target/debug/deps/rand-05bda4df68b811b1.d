/root/repo/target/debug/deps/rand-05bda4df68b811b1.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-05bda4df68b811b1.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
