/root/repo/target/debug/deps/bytes-f22a391ec009b6f5.d: crates/shims/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-f22a391ec009b6f5.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
