/root/repo/target/debug/deps/bench_sketch-2720cd9f79187762.d: crates/bench/benches/bench_sketch.rs

/root/repo/target/debug/deps/libbench_sketch-2720cd9f79187762.rmeta: crates/bench/benches/bench_sketch.rs

crates/bench/benches/bench_sketch.rs:
