/root/repo/target/debug/deps/bench_sparse_matmul-22ae5bb96371bb64.d: crates/bench/benches/bench_sparse_matmul.rs

/root/repo/target/debug/deps/libbench_sparse_matmul-22ae5bb96371bb64.rmeta: crates/bench/benches/bench_sparse_matmul.rs

crates/bench/benches/bench_sparse_matmul.rs:
