/root/repo/target/debug/deps/rect_shapes-02e7a7ae5b80d2f4.d: tests/rect_shapes.rs

/root/repo/target/debug/deps/rect_shapes-02e7a7ae5b80d2f4: tests/rect_shapes.rs

tests/rect_shapes.rs:
