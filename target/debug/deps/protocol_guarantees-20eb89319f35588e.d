/root/repo/target/debug/deps/protocol_guarantees-20eb89319f35588e.d: tests/protocol_guarantees.rs Cargo.toml

/root/repo/target/debug/deps/libprotocol_guarantees-20eb89319f35588e.rmeta: tests/protocol_guarantees.rs Cargo.toml

tests/protocol_guarantees.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
