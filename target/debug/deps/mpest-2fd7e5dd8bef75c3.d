/root/repo/target/debug/deps/mpest-2fd7e5dd8bef75c3.d: src/lib.rs

/root/repo/target/debug/deps/mpest-2fd7e5dd8bef75c3: src/lib.rs

src/lib.rs:
