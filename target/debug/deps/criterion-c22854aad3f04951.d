/root/repo/target/debug/deps/criterion-c22854aad3f04951.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-c22854aad3f04951.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
