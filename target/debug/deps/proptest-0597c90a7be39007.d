/root/repo/target/debug/deps/proptest-0597c90a7be39007.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-0597c90a7be39007: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
