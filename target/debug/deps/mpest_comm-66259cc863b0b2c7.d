/root/repo/target/debug/deps/mpest_comm-66259cc863b0b2c7.d: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libmpest_comm-66259cc863b0b2c7.rmeta: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs Cargo.toml

crates/comm/src/lib.rs:
crates/comm/src/bits.rs:
crates/comm/src/channel.rs:
crates/comm/src/cost.rs:
crates/comm/src/error.rs:
crates/comm/src/seed.rs:
crates/comm/src/transcript.rs:
crates/comm/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
