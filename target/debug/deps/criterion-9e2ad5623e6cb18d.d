/root/repo/target/debug/deps/criterion-9e2ad5623e6cb18d.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcriterion-9e2ad5623e6cb18d.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
