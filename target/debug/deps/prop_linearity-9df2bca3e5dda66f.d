/root/repo/target/debug/deps/prop_linearity-9df2bca3e5dda66f.d: crates/sketch/tests/prop_linearity.rs

/root/repo/target/debug/deps/libprop_linearity-9df2bca3e5dda66f.rmeta: crates/sketch/tests/prop_linearity.rs

crates/sketch/tests/prop_linearity.rs:
