/root/repo/target/debug/deps/mpest_bench-b92116062df87c20.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmpest_bench-b92116062df87c20.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fit.rs:
crates/bench/src/report.rs:
