/root/repo/target/debug/deps/rand-61c1b3785a792dcd.d: crates/shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-61c1b3785a792dcd: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
