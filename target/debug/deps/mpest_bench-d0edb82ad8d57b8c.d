/root/repo/target/debug/deps/mpest_bench-d0edb82ad8d57b8c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmpest_bench-d0edb82ad8d57b8c.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmpest_bench-d0edb82ad8d57b8c.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fit.rs:
crates/bench/src/report.rs:
