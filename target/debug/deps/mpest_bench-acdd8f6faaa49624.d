/root/repo/target/debug/deps/mpest_bench-acdd8f6faaa49624.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmpest_bench-acdd8f6faaa49624.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmpest_bench-acdd8f6faaa49624.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fit.rs:
crates/bench/src/report.rs:
