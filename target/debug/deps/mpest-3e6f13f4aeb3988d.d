/root/repo/target/debug/deps/mpest-3e6f13f4aeb3988d.d: src/lib.rs

/root/repo/target/debug/deps/libmpest-3e6f13f4aeb3988d.rlib: src/lib.rs

/root/repo/target/debug/deps/libmpest-3e6f13f4aeb3988d.rmeta: src/lib.rs

src/lib.rs:
