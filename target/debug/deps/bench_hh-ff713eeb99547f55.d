/root/repo/target/debug/deps/bench_hh-ff713eeb99547f55.d: crates/bench/benches/bench_hh.rs

/root/repo/target/debug/deps/libbench_hh-ff713eeb99547f55.rmeta: crates/bench/benches/bench_hh.rs

crates/bench/benches/bench_hh.rs:
