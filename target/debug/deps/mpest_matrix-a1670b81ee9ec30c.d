/root/repo/target/debug/deps/mpest_matrix-a1670b81ee9ec30c.d: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs

/root/repo/target/debug/deps/libmpest_matrix-a1670b81ee9ec30c.rmeta: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs

crates/matrix/src/lib.rs:
crates/matrix/src/accumulate.rs:
crates/matrix/src/bitmat.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/gen.rs:
crates/matrix/src/hashx.rs:
crates/matrix/src/io.rs:
crates/matrix/src/joins.rs:
crates/matrix/src/norms.rs:
crates/matrix/src/ring.rs:
crates/matrix/src/sparse.rs:
crates/matrix/src/stats.rs:
