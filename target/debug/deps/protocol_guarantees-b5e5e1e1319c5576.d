/root/repo/target/debug/deps/protocol_guarantees-b5e5e1e1319c5576.d: tests/protocol_guarantees.rs

/root/repo/target/debug/deps/protocol_guarantees-b5e5e1e1319c5576: tests/protocol_guarantees.rs

tests/protocol_guarantees.rs:
