/root/repo/target/debug/deps/criterion-b1f21698aaceb4d6.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-b1f21698aaceb4d6.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
