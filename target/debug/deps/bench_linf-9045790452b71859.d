/root/repo/target/debug/deps/bench_linf-9045790452b71859.d: crates/bench/benches/bench_linf.rs

/root/repo/target/debug/deps/libbench_linf-9045790452b71859.rmeta: crates/bench/benches/bench_linf.rs

crates/bench/benches/bench_linf.rs:
