/root/repo/target/debug/deps/experiments-ba636b0056658370.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-ba636b0056658370.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
