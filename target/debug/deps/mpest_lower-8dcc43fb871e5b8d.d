/root/repo/target/debug/deps/mpest_lower-8dcc43fb871e5b8d.d: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

/root/repo/target/debug/deps/libmpest_lower-8dcc43fb871e5b8d.rmeta: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

crates/lower/src/lib.rs:
crates/lower/src/disj.rs:
crates/lower/src/gap_linf.rs:
crates/lower/src/sum_problem.rs:
