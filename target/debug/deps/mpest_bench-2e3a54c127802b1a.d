/root/repo/target/debug/deps/mpest_bench-2e3a54c127802b1a.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/debug/deps/libmpest_bench-2e3a54c127802b1a.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fit.rs:
crates/bench/src/report.rs:
