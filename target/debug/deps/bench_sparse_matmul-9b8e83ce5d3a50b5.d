/root/repo/target/debug/deps/bench_sparse_matmul-9b8e83ce5d3a50b5.d: crates/bench/benches/bench_sparse_matmul.rs

/root/repo/target/debug/deps/bench_sparse_matmul-9b8e83ce5d3a50b5: crates/bench/benches/bench_sparse_matmul.rs

crates/bench/benches/bench_sparse_matmul.rs:
