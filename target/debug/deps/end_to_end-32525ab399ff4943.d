/root/repo/target/debug/deps/end_to_end-32525ab399ff4943.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-32525ab399ff4943.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
