/root/repo/target/debug/deps/bench_sampling-5fa1eddb6b926cab.d: crates/bench/benches/bench_sampling.rs Cargo.toml

/root/repo/target/debug/deps/libbench_sampling-5fa1eddb6b926cab.rmeta: crates/bench/benches/bench_sampling.rs Cargo.toml

crates/bench/benches/bench_sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
