/root/repo/target/debug/deps/criterion-ac9c4dc58bfb0533.d: crates/shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-ac9c4dc58bfb0533.rmeta: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
