/root/repo/target/debug/deps/experiments-a68a78431d650477.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-a68a78431d650477.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
