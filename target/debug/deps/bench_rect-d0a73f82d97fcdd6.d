/root/repo/target/debug/deps/bench_rect-d0a73f82d97fcdd6.d: crates/bench/benches/bench_rect.rs

/root/repo/target/debug/deps/libbench_rect-d0a73f82d97fcdd6.rmeta: crates/bench/benches/bench_rect.rs

crates/bench/benches/bench_rect.rs:
