/root/repo/target/debug/deps/bench_rect-bac3f58c31f45c4d.d: crates/bench/benches/bench_rect.rs Cargo.toml

/root/repo/target/debug/deps/libbench_rect-bac3f58c31f45c4d.rmeta: crates/bench/benches/bench_rect.rs Cargo.toml

crates/bench/benches/bench_rect.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
