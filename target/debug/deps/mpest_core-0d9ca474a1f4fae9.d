/root/repo/target/debug/deps/mpest_core-0d9ca474a1f4fae9.d: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/config.rs crates/core/src/exact_l1.rs crates/core/src/exchange.rs crates/core/src/hh_binary.rs crates/core/src/hh_general.rs crates/core/src/l0_sample.rs crates/core/src/l1_sample.rs crates/core/src/linf_binary.rs crates/core/src/linf_general.rs crates/core/src/linf_kappa.rs crates/core/src/lp_baseline.rs crates/core/src/lp_norm.rs crates/core/src/protocol.rs crates/core/src/rect.rs crates/core/src/request.rs crates/core/src/result.rs crates/core/src/session.rs crates/core/src/sparse_matmul.rs crates/core/src/trivial.rs crates/core/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libmpest_core-0d9ca474a1f4fae9.rmeta: crates/core/src/lib.rs crates/core/src/boost.rs crates/core/src/config.rs crates/core/src/exact_l1.rs crates/core/src/exchange.rs crates/core/src/hh_binary.rs crates/core/src/hh_general.rs crates/core/src/l0_sample.rs crates/core/src/l1_sample.rs crates/core/src/linf_binary.rs crates/core/src/linf_general.rs crates/core/src/linf_kappa.rs crates/core/src/lp_baseline.rs crates/core/src/lp_norm.rs crates/core/src/protocol.rs crates/core/src/rect.rs crates/core/src/request.rs crates/core/src/result.rs crates/core/src/session.rs crates/core/src/sparse_matmul.rs crates/core/src/trivial.rs crates/core/src/wire.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/boost.rs:
crates/core/src/config.rs:
crates/core/src/exact_l1.rs:
crates/core/src/exchange.rs:
crates/core/src/hh_binary.rs:
crates/core/src/hh_general.rs:
crates/core/src/l0_sample.rs:
crates/core/src/l1_sample.rs:
crates/core/src/linf_binary.rs:
crates/core/src/linf_general.rs:
crates/core/src/linf_kappa.rs:
crates/core/src/lp_baseline.rs:
crates/core/src/lp_norm.rs:
crates/core/src/protocol.rs:
crates/core/src/rect.rs:
crates/core/src/request.rs:
crates/core/src/result.rs:
crates/core/src/session.rs:
crates/core/src/sparse_matmul.rs:
crates/core/src/trivial.rs:
crates/core/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
