/root/repo/target/release/deps/mpest-37dbf6cbaff1066b.d: src/lib.rs

/root/repo/target/release/deps/libmpest-37dbf6cbaff1066b.rlib: src/lib.rs

/root/repo/target/release/deps/libmpest-37dbf6cbaff1066b.rmeta: src/lib.rs

src/lib.rs:
