/root/repo/target/release/deps/experiments-36dbd21c3830a10f.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-36dbd21c3830a10f: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
