/root/repo/target/release/deps/rand-2a83443ff269c59d.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-2a83443ff269c59d.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-2a83443ff269c59d.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
