/root/repo/target/release/deps/bytes-e8c6298eb22e0de4.d: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-e8c6298eb22e0de4.rlib: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-e8c6298eb22e0de4.rmeta: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
