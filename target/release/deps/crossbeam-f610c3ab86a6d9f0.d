/root/repo/target/release/deps/crossbeam-f610c3ab86a6d9f0.d: crates/shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f610c3ab86a6d9f0.rlib: crates/shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f610c3ab86a6d9f0.rmeta: crates/shims/crossbeam/src/lib.rs

crates/shims/crossbeam/src/lib.rs:
