/root/repo/target/release/deps/mpest_matrix-b6e297987c4e9110.d: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs

/root/repo/target/release/deps/libmpest_matrix-b6e297987c4e9110.rlib: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs

/root/repo/target/release/deps/libmpest_matrix-b6e297987c4e9110.rmeta: crates/matrix/src/lib.rs crates/matrix/src/accumulate.rs crates/matrix/src/bitmat.rs crates/matrix/src/dense.rs crates/matrix/src/gen.rs crates/matrix/src/hashx.rs crates/matrix/src/io.rs crates/matrix/src/joins.rs crates/matrix/src/norms.rs crates/matrix/src/ring.rs crates/matrix/src/sparse.rs crates/matrix/src/stats.rs

crates/matrix/src/lib.rs:
crates/matrix/src/accumulate.rs:
crates/matrix/src/bitmat.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/gen.rs:
crates/matrix/src/hashx.rs:
crates/matrix/src/io.rs:
crates/matrix/src/joins.rs:
crates/matrix/src/norms.rs:
crates/matrix/src/ring.rs:
crates/matrix/src/sparse.rs:
crates/matrix/src/stats.rs:
