/root/repo/target/release/deps/mpest_bench-4ff75293e0b285d5.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libmpest_bench-4ff75293e0b285d5.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

/root/repo/target/release/deps/libmpest_bench-4ff75293e0b285d5.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/fit.rs crates/bench/src/report.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/fit.rs:
crates/bench/src/report.rs:
