/root/repo/target/release/deps/mpest-c2f824fd1e8ef806.d: src/bin/mpest.rs

/root/repo/target/release/deps/mpest-c2f824fd1e8ef806: src/bin/mpest.rs

src/bin/mpest.rs:
