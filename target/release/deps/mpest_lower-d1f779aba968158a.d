/root/repo/target/release/deps/mpest_lower-d1f779aba968158a.d: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

/root/repo/target/release/deps/libmpest_lower-d1f779aba968158a.rlib: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

/root/repo/target/release/deps/libmpest_lower-d1f779aba968158a.rmeta: crates/lower/src/lib.rs crates/lower/src/disj.rs crates/lower/src/gap_linf.rs crates/lower/src/sum_problem.rs

crates/lower/src/lib.rs:
crates/lower/src/disj.rs:
crates/lower/src/gap_linf.rs:
crates/lower/src/sum_problem.rs:
