/root/repo/target/release/deps/parking_lot-17f5f4454873d291.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-17f5f4454873d291.rlib: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-17f5f4454873d291.rmeta: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
