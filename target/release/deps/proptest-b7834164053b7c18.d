/root/repo/target/release/deps/proptest-b7834164053b7c18.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-b7834164053b7c18.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-b7834164053b7c18.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
