/root/repo/target/release/deps/mpest_comm-42dbcfbc2638fc18.d: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

/root/repo/target/release/deps/libmpest_comm-42dbcfbc2638fc18.rlib: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

/root/repo/target/release/deps/libmpest_comm-42dbcfbc2638fc18.rmeta: crates/comm/src/lib.rs crates/comm/src/bits.rs crates/comm/src/channel.rs crates/comm/src/cost.rs crates/comm/src/error.rs crates/comm/src/seed.rs crates/comm/src/transcript.rs crates/comm/src/wire.rs

crates/comm/src/lib.rs:
crates/comm/src/bits.rs:
crates/comm/src/channel.rs:
crates/comm/src/cost.rs:
crates/comm/src/error.rs:
crates/comm/src/seed.rs:
crates/comm/src/transcript.rs:
crates/comm/src/wire.rs:
