/root/repo/target/release/examples/job_matching-3760aaa4ba09927e.d: examples/job_matching.rs

/root/repo/target/release/examples/job_matching-3760aaa4ba09927e: examples/job_matching.rs

examples/job_matching.rs:
