/root/repo/target/release/examples/similarity_join-9cf357d94c2cf0a1.d: examples/similarity_join.rs

/root/repo/target/release/examples/similarity_join-9cf357d94c2cf0a1: examples/similarity_join.rs

examples/similarity_join.rs:
