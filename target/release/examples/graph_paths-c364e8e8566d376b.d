/root/repo/target/release/examples/graph_paths-c364e8e8566d376b.d: examples/graph_paths.rs

/root/repo/target/release/examples/graph_paths-c364e8e8566d376b: examples/graph_paths.rs

examples/graph_paths.rs:
