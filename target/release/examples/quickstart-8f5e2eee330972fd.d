/root/repo/target/release/examples/quickstart-8f5e2eee330972fd.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-8f5e2eee330972fd: examples/quickstart.rs

examples/quickstart.rs:
