/root/repo/target/release/examples/query_optimizer-580bb672692e41b0.d: examples/query_optimizer.rs

/root/repo/target/release/examples/query_optimizer-580bb672692e41b0: examples/query_optimizer.rs

examples/query_optimizer.rs:
