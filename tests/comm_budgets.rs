//! Communication- and round-budget regression tests.
//!
//! Each protocol's transcript is checked against an explicit bit formula
//! derived from its construction (sketch words × width + payload terms).
//! These are regression guards: if an implementation change silently
//! inflates a message, these fail before the bench harness ever runs.
//! All queries go through one [`Session`] per workload — the budgets
//! must hold on the cached path too.

use mpest::prelude::*;

fn workload(n: usize) -> (Session, CsrMatrix, CsrMatrix) {
    let a = Workloads::bernoulli_bits(n, n, 0.1, 11);
    let b = Workloads::bernoulli_bits(n, n, 0.1, 12);
    let (ac, bc) = (a.to_csr(), b.to_csr());
    (Session::new(a, b), ac, bc)
}

#[test]
fn exact_l1_budget() {
    let (session, _, _) = workload(128);
    let run = session.run_seeded(&ExactL1, &(), Seed(1)).unwrap();
    // n varints of small counts: at most 16 bits each plus header.
    assert!(run.bits() <= 128 * 16 + 64, "l1 bits {}", run.bits());
    assert_eq!(run.rounds(), 1);
}

#[test]
fn l1_sample_budget() {
    let (session, _, _) = workload(128);
    let run = session.run_seeded(&L1Sampling, &(), Seed(2)).unwrap();
    // n * (mass varint + index) <= n * (16 + 7) plus header.
    assert!(run.bits() <= 128 * 24 + 64, "l1-sample bits {}", run.bits());
    assert_eq!(run.rounds(), 1);
}

#[test]
fn lp_norm_budget_matches_sketch_size() {
    let (session, _, _) = workload(96);
    let params = LpParams::new(PNorm::TWO, 0.2);
    let run = session.run_seeded(&LpNorm, &params, Seed(3)).unwrap();
    // Round 1: n rows x sketch words x 64 bits; round 2: sampled rows.
    // With beta = sqrt(0.2) the AMS sketch has 5 groups x ceil(4/0.2)=20
    // counters = 100 words.
    let sketch_bits = 96 * 100 * 64;
    assert!(
        run.bits() >= sketch_bits as u64,
        "round-1 sketch must dominate: {} < {sketch_bits}",
        run.bits()
    );
    assert!(
        run.bits() <= (sketch_bits as f64 * 1.6) as u64,
        "lp bits {} far above sketch budget {sketch_bits}",
        run.bits()
    );
}

#[test]
fn baseline_pays_the_eps_factor() {
    let (session, _, _) = workload(64);
    for (eps, min_ratio) in [(0.2, 2.0), (0.1, 5.0)] {
        let two = session
            .run_seeded(&LpNorm, &LpParams::new(PNorm::TWO, eps), Seed(4))
            .unwrap();
        let one = session
            .run_seeded(&LpBaseline, &BaselineParams::new(PNorm::TWO, eps), Seed(4))
            .unwrap();
        let ratio = one.bits() as f64 / two.bits() as f64;
        assert!(
            ratio >= min_ratio,
            "eps={eps}: baseline/alg1 ratio {ratio:.1} below {min_ratio}"
        );
    }
}

#[test]
fn sparse_matmul_budget() {
    let (session, ac, bc) = workload(128);
    let run = session.run_seeded(&SparseMatmul, &(), Seed(5)).unwrap();
    // Weights: 2n varints; lists: min-side entries at ~(16+7+8) bits.
    let min_side: u64 = ac
        .col_nnz()
        .iter()
        .zip(bc.row_nnz().iter())
        .map(|(&u, &v)| u64::from(u.min(v)))
        .sum();
    let budget = 2 * 128 * 16 + min_side * 40 + 4096;
    assert!(
        run.bits() <= budget,
        "sparse matmul bits {} above budget {budget}",
        run.bits()
    );
    assert_eq!(run.rounds(), 2);
}

#[test]
fn round_counts_match_paper() {
    let (session, _, _) = workload(64);
    let seeded = |req: &EstimateRequest| session.estimate_seeded(req, Seed(6)).unwrap().rounds();
    assert_eq!(
        seeded(&EstimateRequest::LpNorm {
            p: PNorm::Zero,
            eps: 0.3
        }),
        2,
        "Algorithm 1: 2 rounds"
    );
    assert_eq!(
        seeded(&EstimateRequest::LpBaseline {
            p: PNorm::Zero,
            eps: 0.3
        }),
        1,
        "baseline: 1 round"
    );
    assert_eq!(
        seeded(&EstimateRequest::L0Sample { eps: 0.4 }),
        1,
        "Theorem 3.2: 1 round"
    );
    assert_eq!(
        seeded(&EstimateRequest::LinfBinary { eps: 0.3 }),
        3,
        "Algorithm 2: 3 rounds"
    );
    assert!(
        seeded(&EstimateRequest::LinfKappa { kappa: 8.0 }) <= 3,
        "Algorithm 3: O(1) rounds"
    );
    assert_eq!(
        seeded(&EstimateRequest::LinfGeneral { kappa: 4 }),
        1,
        "Theorem 4.8: 1 round"
    );
    assert!(
        seeded(&EstimateRequest::HhGeneral {
            p: 1.0,
            phi: 0.2,
            eps: 0.1
        }) <= 4,
        "Algorithm 4: O(1) rounds"
    );
    assert!(
        seeded(&EstimateRequest::HhBinary {
            p: 1.0,
            phi: 0.2,
            eps: 0.1
        }) <= 6,
        "Theorem 5.3: O(1) rounds"
    );
}

#[test]
fn linf_general_quadratic_in_inverse_kappa() {
    let (session, _, _) = workload(128);
    let bits_at = |kappa: usize| {
        session
            .run_seeded(&LinfGeneral, &LinfGeneralParams::new(kappa), Seed(7))
            .unwrap()
            .bits()
    };
    let b2 = bits_at(2);
    let b4 = bits_at(4);
    let b8 = bits_at(8);
    // Block count shrinks ~4x per kappa doubling.
    assert!(b4 * 3 <= b2, "kappa 2->4: {b2} -> {b4}");
    assert!(b8 * 3 <= b4, "kappa 4->8: {b4} -> {b8}");
}

#[test]
fn kappa_linf_decreases_in_kappa() {
    let n = 96;
    let (a, b, _) = Workloads::planted_pairs(n, n, 0.25, &[(2, 3)], 64, 17);
    let session = Session::new(a, b);
    let bits: Vec<u64> = [4.0, 8.0, 16.0]
        .iter()
        .map(|&k| {
            session
                .run_seeded(&LinfKappa, &LinfKappaParams::new(k), Seed(8))
                .unwrap()
                .bits()
        })
        .collect();
    assert!(
        bits[0] > bits[1] && bits[1] > bits[2],
        "kappa sweep bits not decreasing: {bits:?}"
    );
}
