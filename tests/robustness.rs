//! Robustness: malformed inputs, degenerate instances, error paths, and
//! the paper-faithful constants preset.

use mpest::comm::{execute, BitReader, BitWriter, CommError, Wire};
use mpest::prelude::*;

#[test]
fn protocols_reject_mismatched_dimensions() {
    let a = CsrMatrix::zeros(8, 9);
    let b = CsrMatrix::zeros(8, 8); // inner mismatch: 9 vs 8
    let ab = BitMatrix::zeros(8, 9);
    let bb = BitMatrix::zeros(8, 8);
    assert!(lp_norm::run(&a, &b, &LpParams::new(PNorm::ONE, 0.5), Seed(0)).is_err());
    assert!(lp_baseline::run(&a, &b, &BaselineParams::new(PNorm::ONE, 0.5), Seed(0)).is_err());
    assert!(exact_l1::run(&a, &b, Seed(0)).is_err());
    assert!(l1_sample::run(&a, &b, Seed(0)).is_err());
    assert!(l0_sample::run(&a, &b, &L0SampleParams::new(0.5), Seed(0)).is_err());
    assert!(sparse_matmul::run(&a, &b, Seed(0)).is_err());
    assert!(linf_binary::run(&ab, &bb, &LinfBinaryParams::new(0.5), Seed(0)).is_err());
    assert!(linf_kappa::run(&ab, &bb, &LinfKappaParams::new(4.0), Seed(0)).is_err());
    assert!(linf_general::run(&a, &b, &LinfGeneralParams::new(4), Seed(0)).is_err());
    assert!(hh_general::run(&a, &b, &HhGeneralParams::new(1.0, 0.5, 0.25), Seed(0)).is_err());
    assert!(hh_binary::run(&ab, &bb, &HhBinaryParams::new(1.0, 0.5, 0.25), Seed(0)).is_err());
    assert!(trivial::run_binary(&ab, &bb, Seed(0)).is_err());
}

#[test]
fn corrupted_payloads_fail_to_decode_not_panic() {
    // Take a legitimate encoded message, truncate or bit-flip it, and
    // verify decoding returns an error instead of panicking or looping.
    let v: Vec<(u32, i64)> = (0..50).map(|i| (i, i64::from(i) * 3 - 20)).collect();
    let mut w = BitWriter::new();
    v.encode(&mut w);
    let (bytes, _) = w.finish();

    // Truncations at every byte boundary.
    for cut in 0..bytes.len() {
        let mut r = BitReader::new(&bytes[..cut]);
        // Must return (Ok with fewer items is impossible — length prefix) or Err.
        match Vec::<(u32, i64)>::decode(&mut r) {
            Ok(decoded) => assert_eq!(decoded, v, "only the full buffer can decode"),
            Err(CommError::Decode(_)) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    // Bit flips in the length prefix region must not cause unbounded
    // allocation (decode caps reservations) or panics.
    for flip in 0..16usize {
        let mut corrupted = bytes.to_vec();
        corrupted[flip / 8] ^= 1 << (flip % 8);
        let mut r = BitReader::new(&corrupted);
        let _ = Vec::<(u32, i64)>::decode(&mut r); // any Result is fine; no panic
    }
}

#[test]
fn out_of_sync_parties_detect_label_mismatch() {
    let res = execute(
        (),
        (),
        |link, ()| link.send(0, "phase-one", &7u64),
        |link, ()| link.recv::<u64>("phase-two").map(|_| ()),
    );
    assert!(matches!(res, Err(CommError::LabelMismatch { .. })));
}

#[test]
fn early_party_abort_surfaces_protocol_error() {
    let res: Result<_, _> = execute(
        (),
        (),
        |_link, ()| -> Result<(), CommError> { Err(CommError::protocol("alice gave up")) },
        |link, ()| link.recv::<u64>("never"),
    );
    assert_eq!(res.unwrap_err(), CommError::protocol("alice gave up"));
}

#[test]
fn degenerate_shapes_run_clean() {
    // 1x1 everything.
    let a = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 3)]);
    let b = CsrMatrix::from_triplets(1, 1, vec![(0, 0, 2)]);
    assert_eq!(exact_l1::run(&a, &b, Seed(0)).unwrap().output, 6);
    let run = sparse_matmul::run(&a, &b, Seed(0)).unwrap();
    assert_eq!(run.output.reconstruct(1, 1).get(0, 0), 6);
    // Empty (all-zero) matrices through every estimator.
    let z = CsrMatrix::zeros(4, 4);
    assert_eq!(exact_l1::run(&z, &z, Seed(0)).unwrap().output, 0);
    assert_eq!(l1_sample::run(&z, &z, Seed(0)).unwrap().output, None);
    let run = lp_norm::run(&z, &z, &LpParams::new(PNorm::Zero, 0.5), Seed(0)).unwrap();
    assert!(run.output.abs() < 1.0);
}

#[test]
fn extreme_value_magnitudes() {
    // Poly-bounded but large entries: products up to ~2^40 must survive
    // varint encoding and exact accounting.
    let big = 1i64 << 20;
    let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, big), (1, 1, big)]);
    let b = CsrMatrix::from_triplets(2, 2, vec![(0, 0, big), (1, 0, 1)]);
    let run = exact_l1::run(&a, &b, Seed(0)).unwrap();
    assert_eq!(run.output, i128::from(big) * i128::from(big) + i128::from(big));
    let shares = sparse_matmul::run(&a, &b, Seed(0)).unwrap();
    assert_eq!(shares.output.reconstruct(2, 2), a.matmul(&b));
}

#[test]
fn paper_faithful_constants_still_correct() {
    // With the paper's 10^4-scale constants nothing subsamples at this
    // size — protocols must degrade to their exact paths and still meet
    // every guarantee (just with more communication).
    let consts = Constants::paper_faithful();
    let (a_bits, b_bits, _) = Workloads::planted_pairs(40, 48, 0.1, &[(3, 5)], 24, 1);
    let (a, b) = (a_bits.to_csr(), b_bits.to_csr());
    let c = a.matmul(&b);

    // Algorithm 2: with a huge gamma, lstar = 0 and the output is the
    // deterministic half-split bound.
    let truth = norms::csr_linf(&c).0 as f64;
    let params = LinfBinaryParams { eps: 0.3, consts };
    let run = linf_binary::run(&a_bits, &b_bits, &params, Seed(2)).unwrap();
    assert_eq!(run.output.level, Some(0));
    assert!(run.output.estimate >= truth / 2.0 - 1e-9 && run.output.estimate <= truth + 1e-9);

    // Algorithm 4: beta = 1 (no thinning) -> exact recovery + threshold.
    let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
    let phi = ((c.get(3, 5) as f64 - 4.0) / l1).min(0.9);
    let hh = hh_general::run(
        &a,
        &b,
        &HhGeneralParams {
            p: 1.0,
            phi,
            eps: (phi / 2.0).min(0.4),
            consts,
        },
        Seed(3),
    )
    .unwrap();
    assert!(hh.output.contains(3, 5));

    // Algorithm 1 with paper reps: heavier sketches, accuracy holds.
    let lp = lp_norm::run(
        &a,
        &b,
        &LpParams {
            p: PNorm::ONE,
            eps: 0.3,
            consts,
            beta_override: None,
        },
        Seed(4),
    )
    .unwrap();
    assert!((lp.output - l1).abs() <= 0.3 * l1);
}

#[test]
fn transcript_cost_model_consistency() {
    use mpest::comm::NetworkModel;
    let a = Workloads::bernoulli_bits(32, 32, 0.2, 9).to_csr();
    let b = Workloads::bernoulli_bits(32, 32, 0.2, 10).to_csr();
    let one_round = lp_baseline::run(&a, &b, &BaselineParams::new(PNorm::TWO, 0.3), Seed(1))
        .unwrap();
    let two_round = lp_norm::run(&a, &b, &LpParams::new(PNorm::TWO, 0.3), Seed(1)).unwrap();
    // On an (absurd) pure-latency link, fewer rounds must win.
    let latency_only = NetworkModel {
        round_latency_s: 1.0,
        bits_per_second: 1e15,
    };
    assert!(
        latency_only.seconds(&one_round.transcript) < latency_only.seconds(&two_round.transcript)
    );
    // On a pure-bandwidth link, fewer bits must win.
    let bandwidth_only = NetworkModel {
        round_latency_s: 0.0,
        bits_per_second: 1e6,
    };
    let cheaper = if one_round.bits() < two_round.bits() {
        &one_round
    } else {
        &two_round
    };
    assert_eq!(
        bandwidth_only.seconds(&cheaper.transcript),
        bandwidth_only
            .seconds(&one_round.transcript)
            .min(bandwidth_only.seconds(&two_round.transcript))
    );
}
