//! Robustness: malformed inputs, degenerate instances, error paths, and
//! the paper-faithful constants preset — all through the Session API.

use mpest::comm::{execute, BitReader, BitWriter, CommError, Wire};
use mpest::prelude::*;

#[test]
fn protocols_reject_mismatched_dimensions() {
    // One mismatched session; every protocol must surface the dimension
    // error the session recorded at construction.
    let session = Session::new(CsrMatrix::zeros(8, 9), CsrMatrix::zeros(8, 8));
    let requests = [
        EstimateRequest::LpNorm {
            p: PNorm::ONE,
            eps: 0.5,
        },
        EstimateRequest::LpBaseline {
            p: PNorm::ONE,
            eps: 0.5,
        },
        EstimateRequest::ExactL1,
        EstimateRequest::L1Sample,
        EstimateRequest::L0Sample { eps: 0.5 },
        EstimateRequest::SparseMatmul,
        EstimateRequest::LinfBinary { eps: 0.5 },
        EstimateRequest::LinfKappa { kappa: 4.0 },
        EstimateRequest::LinfGeneral { kappa: 4 },
        EstimateRequest::HhGeneral {
            p: 1.0,
            phi: 0.5,
            eps: 0.25,
        },
        EstimateRequest::HhBinary {
            p: 1.0,
            phi: 0.5,
            eps: 0.25,
        },
        EstimateRequest::AtLeastTJoin { t: 1, slack: 0.5 },
        EstimateRequest::TrivialBinary,
        EstimateRequest::TrivialCsr,
    ];
    for req in &requests {
        let err = session.estimate(req).unwrap_err();
        assert!(
            matches!(err, CommError::Protocol(_)),
            "{}: expected protocol error, got {err:?}",
            req.name()
        );
    }
    // The typed interface surfaces the same construction-time error.
    let err = session
        .run_seeded(&LpNorm, &LpParams::new(PNorm::ONE, 0.5), Seed(0))
        .unwrap_err();
    assert!(matches!(err, CommError::Protocol(_)));
    // A storage-split view records the same mismatch at construction.
    let view = session.party_view(Role::Alice);
    assert!(view.warm_views().is_err());
}

#[test]
fn invalid_parameters_are_rejected_per_query() {
    let a = Workloads::bernoulli_bits(8, 8, 0.4, 1);
    let b = Workloads::bernoulli_bits(8, 8, 0.4, 2);
    let session = Session::new(a, b);
    for req in [
        EstimateRequest::LpNorm {
            p: PNorm::ONE,
            eps: 0.0,
        },
        EstimateRequest::L0Sample { eps: 1.5 },
        EstimateRequest::LinfKappa { kappa: 0.5 },
        EstimateRequest::LinfGeneral { kappa: 0 },
        EstimateRequest::HhBinary {
            p: 1.0,
            phi: 0.1,
            eps: 0.5,
        },
        EstimateRequest::AtLeastTJoin { t: 0, slack: 0.5 },
    ] {
        assert!(
            session.estimate(&req).is_err(),
            "{}: invalid parameters must be rejected",
            req.name()
        );
    }
    // A bad query must not poison the session for good queries.
    assert!(session.estimate(&EstimateRequest::ExactL1).is_ok());
}

#[test]
fn corrupted_payloads_fail_to_decode_not_panic() {
    // Take a legitimate encoded message, truncate or bit-flip it, and
    // verify decoding returns an error instead of panicking or looping.
    let v: Vec<(u32, i64)> = (0..50).map(|i| (i, i64::from(i) * 3 - 20)).collect();
    let mut w = BitWriter::new();
    v.encode(&mut w);
    let (bytes, _) = w.finish();

    // Truncations at every byte boundary.
    for cut in 0..bytes.len() {
        let mut r = BitReader::new(&bytes[..cut]);
        // Must return (Ok with fewer items is impossible — length prefix) or Err.
        match Vec::<(u32, i64)>::decode(&mut r) {
            Ok(decoded) => assert_eq!(decoded, v, "only the full buffer can decode"),
            Err(CommError::Decode(_)) => {}
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    // Bit flips in the length prefix region must not cause unbounded
    // allocation (decode caps reservations) or panics.
    for flip in 0..16usize {
        let mut corrupted = bytes.to_vec();
        corrupted[flip / 8] ^= 1 << (flip % 8);
        let mut r = BitReader::new(&corrupted);
        let _ = Vec::<(u32, i64)>::decode(&mut r); // any Result is fine; no panic
    }
}

#[test]
fn out_of_sync_parties_detect_label_mismatch() {
    let res = execute(
        (),
        (),
        |link, ()| link.send(0, "phase-one", &7u64),
        |link, ()| link.recv::<u64>("phase-two").map(|_| ()),
    );
    assert!(matches!(res, Err(CommError::LabelMismatch { .. })));
}

#[test]
fn early_party_abort_surfaces_protocol_error() {
    let res: Result<_, _> = execute(
        (),
        (),
        |_link, ()| -> Result<(), CommError> { Err(CommError::protocol("alice gave up")) },
        |link, ()| link.recv::<u64>("never"),
    );
    assert_eq!(res.unwrap_err(), CommError::protocol("alice gave up"));
}

#[test]
fn degenerate_shapes_run_clean() {
    // 1x1 everything.
    let session = Session::new(
        CsrMatrix::from_triplets(1, 1, vec![(0, 0, 3)]),
        CsrMatrix::from_triplets(1, 1, vec![(0, 0, 2)]),
    );
    assert_eq!(
        session.run_seeded(&ExactL1, &(), Seed(0)).unwrap().output,
        6
    );
    let run = session.run_seeded(&SparseMatmul, &(), Seed(0)).unwrap();
    assert_eq!(run.output.reconstruct(1, 1).get(0, 0), 6);
    // Empty (all-zero) matrices through every estimator.
    let zeros = Session::new(CsrMatrix::zeros(4, 4), CsrMatrix::zeros(4, 4));
    assert_eq!(zeros.run_seeded(&ExactL1, &(), Seed(0)).unwrap().output, 0);
    assert_eq!(
        zeros.run_seeded(&L1Sampling, &(), Seed(0)).unwrap().output,
        None
    );
    let run = zeros
        .run_seeded(&LpNorm, &LpParams::new(PNorm::Zero, 0.5), Seed(0))
        .unwrap();
    assert!(run.output.abs() < 1.0);
}

#[test]
fn extreme_value_magnitudes() {
    // Poly-bounded but large entries: products up to ~2^40 must survive
    // varint encoding and exact accounting.
    let big = 1i64 << 20;
    let a = CsrMatrix::from_triplets(2, 2, vec![(0, 0, big), (1, 1, big)]);
    let b = CsrMatrix::from_triplets(2, 2, vec![(0, 0, big), (1, 0, 1)]);
    let session = Session::new(a.clone(), b.clone());
    let run = session.run_seeded(&ExactL1, &(), Seed(0)).unwrap();
    assert_eq!(
        run.output,
        i128::from(big) * i128::from(big) + i128::from(big)
    );
    let shares = session.run_seeded(&SparseMatmul, &(), Seed(0)).unwrap();
    assert_eq!(shares.output.reconstruct(2, 2), a.matmul(&b));
}

#[test]
fn paper_faithful_constants_still_correct() {
    // With the paper's 10^4-scale constants nothing subsamples at this
    // size — protocols must degrade to their exact paths and still meet
    // every guarantee (just with more communication). Custom constants
    // travel through the typed params, so the Session path covers them.
    let consts = Constants::paper_faithful();
    let (a_bits, b_bits, _) = Workloads::planted_pairs(40, 48, 0.1, &[(3, 5)], 24, 1);
    let session = Session::new(a_bits.clone(), b_bits.clone());
    let c = a_bits.to_csr().matmul(&b_bits.to_csr());

    // Algorithm 2: with a huge gamma, lstar = 0 and the output is the
    // deterministic half-split bound.
    let truth = norms::csr_linf(&c).0 as f64;
    let params = LinfBinaryParams { eps: 0.3, consts };
    let run = session.run_seeded(&LinfBinary, &params, Seed(2)).unwrap();
    assert_eq!(run.output.level, Some(0));
    assert!(run.output.estimate >= truth / 2.0 - 1e-9 && run.output.estimate <= truth + 1e-9);

    // Algorithm 4: beta = 1 (no thinning) -> exact recovery + threshold.
    let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
    let phi = ((c.get(3, 5) as f64 - 4.0) / l1).min(0.9);
    let hh = session
        .run_seeded(
            &HhGeneral,
            &HhGeneralParams {
                p: 1.0,
                phi,
                eps: (phi / 2.0).min(0.4),
                consts,
            },
            Seed(3),
        )
        .unwrap();
    assert!(hh.output.contains(3, 5));

    // Algorithm 1 with paper reps: heavier sketches, accuracy holds.
    let lp = session
        .run_seeded(
            &LpNorm,
            &LpParams {
                p: PNorm::ONE,
                eps: 0.3,
                consts,
                beta_override: None,
            },
            Seed(4),
        )
        .unwrap();
    assert!((lp.output - l1).abs() <= 0.3 * l1);
}

#[test]
fn transcript_cost_model_consistency() {
    use mpest::comm::NetworkModel;
    let a = Workloads::bernoulli_bits(32, 32, 0.2, 9).to_csr();
    let b = Workloads::bernoulli_bits(32, 32, 0.2, 10).to_csr();
    let session = Session::new(a, b);
    let one_round = session
        .run_seeded(&LpBaseline, &BaselineParams::new(PNorm::TWO, 0.3), Seed(1))
        .unwrap();
    let two_round = session
        .run_seeded(&LpNorm, &LpParams::new(PNorm::TWO, 0.3), Seed(1))
        .unwrap();
    // On an (absurd) pure-latency link, fewer rounds must win.
    let latency_only = NetworkModel {
        round_latency_s: 1.0,
        bits_per_second: 1e15,
    };
    assert!(
        latency_only.seconds(&one_round.transcript) < latency_only.seconds(&two_round.transcript)
    );
    // On a pure-bandwidth link, fewer bits must win.
    let bandwidth_only = NetworkModel {
        round_latency_s: 0.0,
        bits_per_second: 1e6,
    };
    let cheaper = if one_round.bits() < two_round.bits() {
        &one_round
    } else {
        &two_round
    };
    assert_eq!(
        bandwidth_only.seconds(&cheaper.transcript),
        bandwidth_only
            .seconds(&one_round.transcript)
            .min(bandwidth_only.seconds(&two_round.transcript))
    );
}
