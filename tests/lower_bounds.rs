//! The upper-bound protocols meet the lower-bound instances.
//!
//! The constructions of Section 4.2 are executable: we verify the
//! reduction identities at integration level and run the actual
//! protocols on the hard instances to observe the behaviour the theory
//! predicts (a `(2+ε)`-approximation cannot decide DISJ; the trivial
//! protocol can; the Gap-`ℓ∞` embedding carries the κ gap).

use mpest::lower::{DisjInstance, GapLinfInstance, SumInstance, SumParams};
use mpest::prelude::*;

#[test]
fn disj_embedding_runs_through_linf_binary() {
    // The (2+eps) protocol's output ranges on yes/no instances overlap —
    // exactly why it cannot decide DISJ (Theorem 4.4): yes instances
    // (linf = 2) may legitimately estimate as low as 2/(2+eps) < 2, and
    // no instances (linf = 1) as high as 1. The protocol must still obey
    // its own guarantee on both.
    let params = LinfBinaryParams::new(0.2);
    for seed in 0..6 {
        let yes = DisjInstance::intersecting(16, 0.15, seed);
        let no = DisjInstance::disjoint(16, 0.15, seed + 100);
        let run_yes = Session::new(yes.matrix_a(), yes.matrix_b())
            .run_seeded(&LinfBinary, &params, Seed(seed))
            .unwrap();
        let run_no = Session::new(no.matrix_a(), no.matrix_b())
            .run_seeded(&LinfBinary, &params, Seed(seed))
            .unwrap();
        assert!(
            run_yes.output.estimate >= 2.0 / 2.5 && run_yes.output.estimate <= 2.5,
            "yes-instance estimate {} outside (2+eps) band",
            run_yes.output.estimate
        );
        assert!(
            run_no.output.estimate >= 1.0 / 2.5 && run_no.output.estimate <= 1.3,
            "no-instance estimate {} outside (2+eps) band",
            run_no.output.estimate
        );
    }
}

#[test]
fn trivial_protocol_decides_disj_exactly() {
    // With n^2 bits you CAN decide DISJ — the content of the Omega(n^2)
    // lower bound is that you cannot do better.
    for seed in 0..6 {
        let yes = DisjInstance::intersecting(12, 0.2, seed);
        let no = DisjInstance::disjoint(12, 0.2, seed + 50);
        let run_yes = Session::new(yes.matrix_a(), yes.matrix_b())
            .run_seeded(&TrivialBinary, &(), Seed(0))
            .unwrap();
        let run_no = Session::new(no.matrix_a(), no.matrix_b())
            .run_seeded(&TrivialBinary, &(), Seed(0))
            .unwrap();
        assert_eq!(run_yes.output.linf.0, 2);
        assert!(run_no.output.linf.0 <= 1);
        assert!(DisjInstance::decide(run_yes.output.linf.0 as f64));
        assert!(!DisjInstance::decide(run_no.output.linf.0 as f64));
    }
}

#[test]
fn gap_linf_embedding_through_block_ams() {
    // Theorem 4.8's upper bound meets its own lower-bound instance: with
    // approximation factor below the gap kappa, the block-AMS protocol
    // separates far from close instances.
    let kappa_gap = 24i64;
    let mut far_ests = Vec::new();
    let mut close_ests = Vec::new();
    for seed in 0..8 {
        let far = GapLinfInstance::far(12, kappa_gap, seed);
        let close = GapLinfInstance::close(12, kappa_gap, seed + 30);
        // kappa=2 approximation: factor-2 uncertainty, gap is 24.
        let pf = Session::new(far.matrix_a(), far.matrix_b())
            .run_seeded(&LinfGeneral, &LinfGeneralParams::new(2), Seed(seed))
            .unwrap();
        let pc = Session::new(close.matrix_a(), close.matrix_b())
            .run_seeded(&LinfGeneral, &LinfGeneralParams::new(2), Seed(seed))
            .unwrap();
        far_ests.push(pf.output);
        close_ests.push(pc.output);
    }
    let min_far = far_ests.iter().copied().fold(f64::INFINITY, f64::min);
    let max_close = close_ests.iter().copied().fold(0.0, f64::max);
    assert!(
        min_far > max_close,
        "factor-2 estimates must separate the kappa=24 gap: far {far_ests:?} vs close {close_ests:?}"
    );
}

#[test]
fn sum_construction_diagonal_gap_and_linf_protocol() {
    let params = SumParams::practical(96, 2.0);
    let mut saw_one = false;
    for seed in 0..12 {
        let inst = SumInstance::sample(&params, seed);
        let a = inst.matrix_a();
        let b = inst.matrix_b();
        if inst.sum() == 1 {
            saw_one = true;
            // The planted signal is real: linf >= replication, and the
            // (2+eps) protocol sees a value of that order.
            let truth = stats::linf_of_product_binary(&a, &b).0 as f64;
            assert!(truth >= inst.replication() as f64);
            let run = Session::new(a.clone(), b.clone())
                .run_seeded(&LinfBinary, &LinfBinaryParams::new(0.3), Seed(seed))
                .unwrap();
            assert!(
                run.output.estimate >= truth / 3.0,
                "protocol lost the planted signal: {} vs {truth}",
                run.output.estimate
            );
        } else {
            assert_eq!(inst.diag_max(), 0);
        }
    }
    assert!(saw_one, "never drew a SUM=1 instance");
}
