//! The storage-split contract: a party process holding **only its own
//! matrix** (a [`PartyView`]) runs every protocol over a real socket
//! **bit-identically** — outputs *and* transcripts — to an in-process
//! [`Session`] over the assembled pair. The peer is known by its public
//! metadata alone ([`PeerInfo`]); the compile-level guarantee that a
//! split party cannot reach the peer's entries is the `compile_fail`
//! doctest on [`PeerInfo`] in `mpest-core` (there is no accessor for
//! the peer's matrix, only dimensions and a binariness flag).

use mpest::net::{party_info, run_with_party_view, PartyHost};
use mpest::prelude::*;

fn pair() -> (BitMatrix, BitMatrix) {
    (
        Workloads::bernoulli_bits(20, 28, 0.3, 1),
        Workloads::bernoulli_bits(28, 20, 0.3, 2),
    )
}

/// Storage-split remote == fused in-process for all 14 protocols × 2
/// session seeds: identical type-erased outputs and identical
/// transcripts (record by record — sender, round, label, and exact bit
/// count), plus the physical-dominance invariant that the real socket
/// moved at least `⌈bits/8⌉` bytes. The host process holds only `B`,
/// the initiator only `A`.
#[test]
fn split_remote_matches_in_process_for_every_protocol_and_seed() {
    let (a, b) = pair();
    let requests = EstimateRequest::catalog();
    assert_eq!(requests.len(), 14, "one request per protocol");
    let reference = Session::new(a.clone(), b.clone());
    let host = PartyHost::spawn_split("127.0.0.1:0", reference.party_view(Role::Bob))
        .expect("bind loopback split host");
    let addr = host.addr().to_string();
    for session_seed in [3u64, 77] {
        let session = Session::builder(a.clone(), b.clone())
            .seed(Seed(session_seed))
            .build();
        let view = session.party_view(Role::Alice);
        for (i, request) in requests.iter().enumerate() {
            let seed = session.query_seed(i as u64);
            let local = session
                .estimate_seeded(request, seed)
                .unwrap_or_else(|e| panic!("{} (local, seed {session_seed}): {e}", request.name()));
            let (remote, out, inn) = run_with_party_view(&addr, &view, request, seed)
                .unwrap_or_else(|e| {
                    panic!(
                        "{} (split remote, seed {session_seed}): {e}",
                        request.name()
                    )
                });
            assert_eq!(
                remote.output,
                local.output,
                "{} output diverged under seed {session_seed}",
                request.name()
            );
            assert_eq!(
                remote.transcript.records,
                local.transcript.records,
                "{} transcript diverged under seed {session_seed}",
                request.name()
            );
            assert!(
                out + inn >= local.bits().div_ceil(8),
                "{}: {} wire bytes cannot carry {} logical bits",
                request.name(),
                out + inn,
                local.bits()
            );
        }
    }
    host.shutdown();
}

/// Both host-side roles work storage-split: a host holding only `A`
/// serves an initiator holding only `B` with identical results.
#[test]
fn split_roles_are_symmetric() {
    let (a, b) = pair();
    let reference = Session::new(a, b);
    let host =
        PartyHost::spawn_split("127.0.0.1:0", reference.party_view(Role::Alice)).expect("bind");
    let view = reference.party_view(Role::Bob);
    for request in [
        EstimateRequest::ExactL1,
        EstimateRequest::SparseMatmul,
        EstimateRequest::LpBaseline {
            p: PNorm::ONE,
            eps: 0.4,
        },
        EstimateRequest::AtLeastTJoin { t: 2, slack: 0.5 },
    ] {
        let local = reference.estimate_seeded(&request, Seed(11)).unwrap();
        let (remote, _, _) =
            run_with_party_view(&host.addr().to_string(), &view, &request, Seed(11))
                .unwrap_or_else(|e| panic!("{}: {e}", request.name()));
        assert_eq!(remote, local, "{}", request.name());
    }
    host.shutdown();
}

/// What crosses the wire before a run is metadata only: the
/// `party-hello` a view announces carries its side, shape, binariness,
/// content fingerprint, and epoch — never entries. (That a `PartyView`
/// cannot even *express* access to the peer's entries is enforced at
/// compile time; see the `compile_fail` doctest on `PeerInfo`.)
#[test]
fn party_hello_announces_public_metadata_only() {
    let (a, b) = pair();
    let session = Session::new(a, b);
    let alice = session.party_view(Role::Alice);
    let info = party_info(&alice);
    assert_eq!(info.side, Role::Alice);
    assert_eq!((info.rows, info.cols), (20, 28));
    assert!(info.binary);
    assert_ne!(info.fp, 0, "content fingerprint pins the own half");
    assert_eq!(info.epoch, 0);
    // The view's public peer knowledge is exactly the three metadata
    // fields the handshake cross-checks.
    let peer = alice.peer();
    assert_eq!((peer.rows(), peer.cols(), peer.binary()), (28, 20, true));
    // Both views assemble the same public product dimensions.
    let bob = session.party_view(Role::Bob);
    assert_eq!(alice.product_dims(), bob.product_dims());
}
