//! End-to-end integration: every protocol on one shared workload through
//! one reusable [`Session`], with cross-protocol consistency checks.

use mpest::prelude::*;

/// One workload shared by all the tests below: a pair of relations with
/// a planted heavy pair, a session over it, plus its exact product
/// statistics.
struct World {
    session: Session,
    a_bits: BitMatrix,
    b_bits: BitMatrix,
    a: CsrMatrix,
    b: CsrMatrix,
    c: CsrMatrix,
}

fn world() -> World {
    let (a_bits, b_bits, _) = Workloads::planted_pairs(96, 128, 0.08, &[(5, 9)], 56, 404);
    let a = a_bits.to_csr();
    let b = b_bits.to_csr();
    let c = a.matmul(&b);
    World {
        session: Session::builder(a_bits.clone(), b_bits.clone())
            .seed(Seed(404))
            .build(),
        a_bits,
        b_bits,
        a,
        b,
        c,
    }
}

#[test]
fn lp_norm_all_p_agree_with_ground_truth() {
    let w = world();
    for p in [PNorm::Zero, PNorm::ONE, PNorm::TWO, PNorm::P(0.5)] {
        let truth = norms::csr_lp_pow(&w.c, p);
        let mut ok = 0;
        for t in 0..9 {
            let run = w
                .session
                .run_seeded(&LpNorm, &LpParams::new(p, 0.25), Seed(t))
                .unwrap();
            assert_eq!(run.rounds(), 2);
            if (run.output - truth).abs() <= 0.3 * truth {
                ok += 1;
            }
        }
        assert!(ok >= 6, "p={p:?}: {ok}/9 within tolerance");
    }
}

#[test]
fn exact_l1_matches_lp_protocol_in_expectation() {
    let w = world();
    let exact = w.session.run_seeded(&ExactL1, &(), Seed(0)).unwrap().output as f64;
    assert_eq!(exact, norms::csr_lp_pow(&w.c, PNorm::ONE));
    // Algorithm 1 at p=1 should bracket the exact value.
    let mut sum = 0.0;
    for t in 0..12 {
        sum += w
            .session
            .run_seeded(&LpNorm, &LpParams::new(PNorm::ONE, 0.3), Seed(100 + t))
            .unwrap()
            .output;
    }
    let mean = sum / 12.0;
    assert!(
        (mean - exact).abs() < 0.2 * exact,
        "mean {mean} vs exact {exact}"
    );
}

#[test]
fn trivial_protocol_is_the_exact_reference() {
    let w = world();
    let run = w.session.run_seeded(&TrivialBinary, &(), Seed(0)).unwrap();
    assert_eq!(run.output.l0, norms::csr_lp_pow(&w.c, PNorm::Zero));
    assert_eq!(run.output.l1, norms::csr_lp_pow(&w.c, PNorm::ONE));
    assert_eq!(run.output.l2_sq, norms::csr_lp_pow(&w.c, PNorm::TWO));
    assert_eq!(run.output.linf.0, norms::csr_linf(&w.c).0);
}

#[test]
fn sparse_matmul_reconstructs_product() {
    let w = world();
    let run = w.session.run_seeded(&SparseMatmul, &(), Seed(3)).unwrap();
    assert_eq!(run.output.reconstruct(w.a.rows(), w.b.cols()), w.c);
    assert_eq!(run.rounds(), 2);
}

#[test]
fn linf_protocols_bracket_truth() {
    let w = world();
    let truth = norms::csr_linf(&w.c).0 as f64;
    // Algorithm 2: 2+eps.
    let run = w
        .session
        .run_seeded(&LinfBinary, &LinfBinaryParams::new(0.25), Seed(4))
        .unwrap();
    assert!(run.output.estimate >= truth / 3.0 && run.output.estimate <= 1.8 * truth);
    // Algorithm 3: kappa.
    let kappa = 6.0;
    let run = w
        .session
        .run_seeded(&LinfKappa, &LinfKappaParams::new(kappa), Seed(5))
        .unwrap();
    assert!(
        run.output.estimate >= truth / (3.0 * kappa) && run.output.estimate <= 3.0 * kappa * truth,
        "kappa estimate {} vs truth {truth}",
        run.output.estimate
    );
    // Theorem 4.8 on the integer view.
    let run = w
        .session
        .run_seeded(&LinfGeneral, &LinfGeneralParams::new(4), Seed(6))
        .unwrap();
    assert!(run.output >= 0.4 * truth && run.output <= 8.0 * truth);
}

#[test]
fn heavy_hitter_protocols_find_planted_pair() {
    let w = world();
    let l1 = norms::csr_lp_pow(&w.c, PNorm::ONE);
    let heavy = w.c.get(5, 9) as f64;
    let phi = ((heavy - 6.0) / l1).min(0.9);
    let eps = (phi / 2.0).min(0.4);
    let mut bin_hits = 0;
    let mut gen_hits = 0;
    for t in 0..7 {
        let run = w
            .session
            .run_seeded(&HhBinary, &HhBinaryParams::new(1.0, phi, eps), Seed(70 + t))
            .unwrap();
        if run.output.contains(5, 9) {
            bin_hits += 1;
        }
        let run = w
            .session
            .run_seeded(
                &HhGeneral,
                &HhGeneralParams::new(1.0, phi, eps),
                Seed(70 + t),
            )
            .unwrap();
        if run.output.contains(5, 9) {
            gen_hits += 1;
        }
    }
    assert!(bin_hits >= 5, "binary HH missed planted pair: {bin_hits}/7");
    assert!(
        gen_hits >= 5,
        "general HH missed planted pair: {gen_hits}/7"
    );
}

#[test]
fn samples_come_from_the_support() {
    let w = world();
    for t in 0..10 {
        match w
            .session
            .run_seeded(&L0Sample, &L0SampleParams::new(0.3), Seed(200 + t))
            .unwrap()
            .output
        {
            MatrixSample::Sampled { row, col, value } => {
                assert_eq!(w.c.get(row as usize, col), value);
                assert!(value > 0);
            }
            MatrixSample::Failed => {}
            MatrixSample::ZeroMatrix => panic!("product is not zero"),
        }
        if let Some(s) = w
            .session
            .run_seeded(&L1Sampling, &(), Seed(300 + t))
            .unwrap()
            .output
        {
            assert_eq!(w.a.get(s.row as usize, s.witness), 1);
            assert_eq!(w.b.get(s.witness as usize, s.col), 1);
        }
    }
}

#[test]
fn join_view_matches_matrix_view() {
    // The database story of Section 1.1: composition and natural join
    // sizes computed via set families equal the matrix norms protocols
    // estimate.
    let w = world();
    let alice_sets = SetFamily::from_row_matrix(&w.a_bits);
    let bob_sets = SetFamily::from_row_matrix(&w.b_bits.transpose());
    let stats = joins::join_stats(&alice_sets, &bob_sets);
    assert_eq!(
        stats.composition_size as f64,
        norms::csr_lp_pow(&w.c, PNorm::Zero)
    );
    assert_eq!(
        stats.natural_join_size as f64,
        norms::csr_lp_pow(&w.c, PNorm::ONE)
    );
    assert_eq!(stats.max_overlap.0 as i64, norms::csr_linf(&w.c).0);
}

#[test]
fn runs_are_reproducible_from_seeds() {
    // Same seed => identical output AND identical transcript, despite the
    // two parties running on real threads. This is the determinism
    // contract every experiment in EXPERIMENTS.md relies on.
    let w = world();
    let params = LpParams::new(PNorm::ONE, 0.3);
    let r1 = w.session.run_seeded(&LpNorm, &params, Seed(777)).unwrap();
    let r2 = w.session.run_seeded(&LpNorm, &params, Seed(777)).unwrap();
    assert_eq!(r1.output.to_bits(), r2.output.to_bits());
    assert_eq!(r1.transcript, r2.transcript);

    let hh_params = HhBinaryParams::new(1.0, 0.01, 0.005);
    let h1 = w
        .session
        .run_seeded(&HhBinary, &hh_params, Seed(88))
        .unwrap();
    let h2 = w
        .session
        .run_seeded(&HhBinary, &hh_params, Seed(88))
        .unwrap();
    assert_eq!(h1.output.positions(), h2.output.positions());
    assert_eq!(h1.bits(), h2.bits());
}

#[test]
fn baseline_vs_algorithm1_separation() {
    // The paper's headline: at equal accuracy, 2 rounds beat 1 round by
    // a factor ~1/eps in bits.
    let w = world();
    let eps = 0.05;
    let two = w
        .session
        .run_seeded(&LpNorm, &LpParams::new(PNorm::Zero, eps), Seed(1))
        .unwrap();
    let one = w
        .session
        .run_seeded(&LpBaseline, &BaselineParams::new(PNorm::Zero, eps), Seed(1))
        .unwrap();
    assert!(
        one.bits() > 3 * two.bits(),
        "{} vs {}",
        one.bits(),
        two.bits()
    );
    assert_eq!(one.rounds(), 1);
    assert_eq!(two.rounds(), 2);
}
