//! The Session/Protocol API contract: for every protocol, running
//! through a warm, cached [`Session`] is *bit-identical* — same output,
//! same transcript bits and rounds — to a cold one-shot session built
//! fresh for that single query, because every cached derived view
//! (CSR/bit conversions, transposes, norm and support tables) is a pure
//! function of the pair. Also checks that the dynamic
//! [`EstimateRequest`] layer matches both, and that distinct queries
//! through one session never alias seeds.

use mpest::prelude::*;
use proptest::prelude::*;

/// A cold one-shot run: a fresh session for exactly this query (all
/// derived views recomputed from scratch).
fn one_shot<P: Protocol>(
    a: impl SessionInput,
    b: impl SessionInput,
    protocol: &P,
    params: &P::Params,
    seed: Seed,
) -> Result<ProtocolRun<P::Output>, mpest::comm::CommError> {
    Session::new(a, b).run_seeded(protocol, params, seed)
}

/// Strategy: a compatible binary pair (as bit matrices) whose product is
/// usually nonzero.
fn bit_pair() -> impl Strategy<Value = (BitMatrix, BitMatrix)> {
    (4usize..=14, 4usize..=16, 4usize..=14, 1u64..1000).prop_map(|(m1, n, m2, seed)| {
        (
            Workloads::bernoulli_bits(m1, n, 0.35, seed),
            Workloads::bernoulli_bits(n, m2, 0.35, seed + 7),
        )
    })
}

/// Strategy: a compatible non-negative integer pair.
fn csr_pair() -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (1usize..=12, 1usize..=14, 1usize..=12).prop_flat_map(|(m1, n, m2)| {
        let a = proptest::collection::vec(((0..m1 as u32), (0..n as u32), 1i64..=5), 0..=50)
            .prop_map(move |t| CsrMatrix::from_triplets(m1, n, t));
        let b = proptest::collection::vec(((0..n as u32), (0..m2 as u32), 1i64..=5), 0..=50)
            .prop_map(move |t| CsrMatrix::from_triplets(n, m2, t));
        (a, b)
    })
}

/// Asserts that a cached-session run and a cold one-shot run agree
/// exactly: output and full transcript (hence bits and rounds).
#[track_caller]
fn assert_same<T: PartialEq + std::fmt::Debug>(
    name: &str,
    session_run: &ProtocolRun<T>,
    cold_run: &ProtocolRun<T>,
) {
    assert_eq!(
        session_run.output, cold_run.output,
        "{name}: outputs differ between cached session and cold run"
    );
    assert_eq!(
        session_run.transcript, cold_run.transcript,
        "{name}: transcripts differ between cached session and cold run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every CSR protocol: cached session == cold one-shot, and the
    /// dynamic layer agrees with both (same outputs, same bits/rounds).
    #[test]
    fn csr_protocols_bit_identical((a, b) in csr_pair(), seed in 0u64..1000) {
        let seed = Seed(seed);
        let session = Session::builder(a.clone(), b.clone()).seed(Seed(99)).build();

        let s = session.run_seeded(&LpNorm, &LpParams::new(PNorm::ONE, 0.3), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &LpNorm, &LpParams::new(PNorm::ONE, 0.3), seed).unwrap();
        assert_same("lp", &s, &l);
        let d = session
            .estimate_seeded(&EstimateRequest::LpNorm { p: PNorm::ONE, eps: 0.3 }, seed)
            .unwrap();
        prop_assert_eq!(d.output.as_scalar().unwrap(), l.output);
        prop_assert_eq!(d.transcript, l.transcript);

        let s = session.run_seeded(&LpBaseline, &BaselineParams::new(PNorm::TWO, 0.4), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &LpBaseline, &BaselineParams::new(PNorm::TWO, 0.4), seed).unwrap();
        assert_same("lp-baseline", &s, &l);

        let s = session.run_seeded(&ExactL1, &(), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &ExactL1, &(), seed).unwrap();
        assert_same("exact-l1", &s, &l);
        let d = session.estimate_seeded(&EstimateRequest::ExactL1, seed).unwrap();
        prop_assert_eq!(d.output, AnyOutput::Count(l.output));
        prop_assert_eq!((d.bits(), d.rounds()), (l.bits(), l.rounds()));

        let s = session.run_seeded(&L1Sampling, &(), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &L1Sampling, &(), seed).unwrap();
        assert_same("l1-sample", &s, &l);

        let s = session.run_seeded(&L0Sample, &L0SampleParams::new(0.3), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &L0Sample, &L0SampleParams::new(0.3), seed).unwrap();
        assert_same("l0-sample", &s, &l);

        let s = session.run_seeded(&SparseMatmul, &(), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &SparseMatmul, &(), seed).unwrap();
        assert_same("sparse-matmul", &s, &l);

        let s = session.run_seeded(&LinfGeneral, &LinfGeneralParams::new(4), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &LinfGeneral, &LinfGeneralParams::new(4), seed).unwrap();
        assert_same("linf-general", &s, &l);

        let s = session.run_seeded(&HhGeneral, &HhGeneralParams::new(1.0, 0.1, 0.05), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &HhGeneral, &HhGeneralParams::new(1.0, 0.1, 0.05), seed).unwrap();
        assert_same("hh-general", &s, &l);

        let s = session.run_seeded(&TrivialCsr, &(), seed).unwrap();
        let l = one_shot(a.clone(), b.clone(), &TrivialCsr, &(), seed).unwrap();
        assert_same("trivial-csr", &s, &l);
    }

    /// Every binary protocol: cached session == cold one-shot over the
    /// bit matrices — including sessions built from *CSR* inputs, whose
    /// bit views come from the session cache rather than the caller.
    #[test]
    fn binary_protocols_bit_identical((a, b) in bit_pair(), seed in 0u64..1000) {
        let seed = Seed(seed);
        // One session holds bit matrices, the other the CSR views; both
        // must agree with the legacy bit-matrix runs.
        let from_bits = Session::new(a.clone(), b.clone());
        let from_csr = Session::new(a.to_csr(), b.to_csr());

        for session in [&from_bits, &from_csr] {
            let s = session.run_seeded(&LinfBinary, &LinfBinaryParams::new(0.3), seed).unwrap();
            let l = one_shot(a.clone(), b.clone(), &LinfBinary, &LinfBinaryParams::new(0.3), seed).unwrap();
            assert_same("linf-binary", &s, &l);

            let s = session.run_seeded(&LinfKappa, &LinfKappaParams::new(4.0), seed).unwrap();
            let l = one_shot(a.clone(), b.clone(), &LinfKappa, &LinfKappaParams::new(4.0), seed).unwrap();
            assert_same("linf-kappa", &s, &l);

            let s = session.run_seeded(&HhBinary, &HhBinaryParams::new(1.0, 0.2, 0.1), seed).unwrap();
            let l = one_shot(a.clone(), b.clone(), &HhBinary, &HhBinaryParams::new(1.0, 0.2, 0.1), seed).unwrap();
            assert_same("hh-binary", &s, &l);

            let s = session.run_seeded(&AtLeastTJoin, &AtLeastTParams { t: 2, slack: 0.5 }, seed).unwrap();
            let l = one_shot(a.clone(), b.clone(), &AtLeastTJoin, &AtLeastTParams { t: 2, slack: 0.5 }, seed).unwrap();
            assert_same("at-least-t-join", &s, &l);

            let s = session.run_seeded(&TrivialBinary, &(), seed).unwrap();
            let l = one_shot(a.clone(), b.clone(), &TrivialBinary, &(), seed).unwrap();
            assert_same("trivial-binary", &s, &l);
        }
    }

    /// Caching is warm after the first query: a *repeat* of the same
    /// seeded query on a session that has already materialized its
    /// derived views is still bit-identical to the cold one-shot run.
    #[test]
    fn warm_cache_matches_cold_run((a, b) in csr_pair(), seed in 0u64..500) {
        let seed = Seed(seed);
        let session = Session::new(a.clone(), b.clone());
        // Warm every cache with unrelated queries.
        let _ = session.run(&SparseMatmul, &());
        let _ = session.run(&ExactL1, &());
        let warm = session.run_seeded(&L0Sample, &L0SampleParams::new(0.4), seed).unwrap();
        let cold = one_shot(a.clone(), b.clone(), &L0Sample, &L0SampleParams::new(0.4), seed).unwrap();
        assert_same("l0-sample (warm)", &warm, &cold);
    }
}

#[test]
fn two_session_queries_use_distinct_derived_seeds() {
    let a = Workloads::bernoulli_bits(24, 32, 0.3, 5).to_csr();
    let b = Workloads::bernoulli_bits(32, 24, 0.3, 6).to_csr();
    let session = Session::builder(a.clone(), b.clone())
        .seed(Seed(42))
        .build();

    // The derived seed schedule is deterministic, query-indexed, and
    // collision-free over a long horizon.
    let schedule: Vec<Seed> = (0..1000).map(|i| session.query_seed(i)).collect();
    let distinct: std::collections::HashSet<u64> = schedule.iter().map(|s| s.0).collect();
    assert_eq!(distinct.len(), schedule.len(), "derived seeds collide");

    // Two identical sampling queries must not alias: they run under
    // different derived seeds, and those seeds match the schedule.
    let q0 = session.run(&L1Sampling, &()).unwrap();
    let q1 = session.run(&L1Sampling, &()).unwrap();
    let r0 = one_shot(a.clone(), b.clone(), &L1Sampling, &(), schedule[0]).unwrap();
    let r1 = one_shot(a.clone(), b.clone(), &L1Sampling, &(), schedule[1]).unwrap();
    assert_eq!(q0.output, r0.output, "query 0 did not use derived seed 0");
    assert_eq!(q1.output, r1.output, "query 1 did not use derived seed 1");
    assert_eq!(session.queries_issued(), 2);

    // Different session seeds produce different schedules.
    let other = Session::builder(a, b).seed(Seed(43)).build();
    assert_ne!(other.query_seed(0), session.query_seed(0));
}

#[test]
fn session_reports_errors_consistently() {
    // Dimension mismatch surfaces identically through the typed run and
    // a fresh one-shot session.
    let a = CsrMatrix::zeros(4, 5);
    let b = CsrMatrix::zeros(6, 4);
    let session = Session::new(a.clone(), b.clone());
    let via_session = session.run(&ExactL1, &()).unwrap_err();
    let via_one_shot = one_shot(a, b, &ExactL1, &(), Seed(0)).unwrap_err();
    assert_eq!(via_session, via_one_shot);

    // Binary-only protocols reject non-binary sessions.
    let a = CsrMatrix::from_triplets(3, 3, vec![(0, 0, 2)]);
    let b = CsrMatrix::from_triplets(3, 3, vec![(1, 1, 1)]);
    let session = Session::new(a, b);
    let err = session
        .estimate(&EstimateRequest::LinfBinary { eps: 0.3 })
        .unwrap_err();
    assert!(err.to_string().contains("non-binary"), "got: {err}");
}
