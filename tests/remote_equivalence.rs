//! The distributed contract: running a protocol with Alice and Bob in
//! separate processes over a real socket is **bit-identical** — outputs
//! *and* transcripts — to the fused in-process executor, for every
//! protocol; and the `mpest serve` daemon round-trip returns exactly the
//! report a local `Session::estimate_seeded` call produces. These tests
//! drive the loopback network stack of `mpest-net` (framed codec,
//! remote link, party host, serve daemon) end to end.

use mpest::net::{run_with_party, PartyHost, ServeClient, Server};
use mpest::prelude::*;
use std::sync::Arc;

fn pair() -> (BitMatrix, BitMatrix) {
    (
        Workloads::bernoulli_bits(20, 28, 0.3, 1),
        Workloads::bernoulli_bits(28, 20, 0.3, 2),
    )
}

/// Remote (loopback `RemoteLink`) == fused in-process for all 14
/// protocols × 2 session seeds: identical type-erased outputs and
/// identical transcripts (record by record — sender, round, label, and
/// exact bit count), plus the physical-dominance invariant that the
/// real socket moved at least `⌈bits/8⌉` bytes.
#[test]
fn remote_matches_local_for_every_protocol_and_seed() {
    let (a, b) = pair();
    let requests = EstimateRequest::catalog();
    assert_eq!(requests.len(), 14, "one request per protocol");
    let host = PartyHost::spawn(
        "127.0.0.1:0",
        Arc::new(Session::new(a.clone(), b.clone())),
        Party::Bob,
    )
    .expect("bind loopback party host");
    let addr = host.addr().to_string();
    for session_seed in [3u64, 77] {
        let session = Session::builder(a.clone(), b.clone())
            .seed(Seed(session_seed))
            .build();
        for (i, request) in requests.iter().enumerate() {
            let seed = session.query_seed(i as u64);
            let local = session
                .estimate_seeded(request, seed)
                .unwrap_or_else(|e| panic!("{} (local, seed {session_seed}): {e}", request.name()));
            let (remote, out, inn) = run_with_party(&addr, &session, Party::Alice, request, seed)
                .unwrap_or_else(|e| {
                    panic!("{} (remote, seed {session_seed}): {e}", request.name())
                });
            assert_eq!(
                remote.output,
                local.output,
                "{} output diverged under seed {session_seed}",
                request.name()
            );
            assert_eq!(
                remote.transcript.records,
                local.transcript.records,
                "{} transcript diverged under seed {session_seed}",
                request.name()
            );
            assert!(
                out + inn >= local.bits().div_ceil(8),
                "{}: {} wire bytes cannot carry {} logical bits",
                request.name(),
                out + inn,
                local.bits()
            );
        }
    }
    host.shutdown();
}

/// The serve-daemon round-trip: every protocol's served report equals
/// the local run, the fingerprint cache hits after the one-time upload,
/// and the daemon's ledger accounts every served query.
#[test]
fn serve_round_trip_matches_local_for_every_protocol() {
    let (a, b) = pair();
    let (a_csr, b_csr) = (a.to_csr(), b.to_csr());
    let session = Session::new(a_csr.clone(), b_csr.clone());
    let server = Server::spawn("127.0.0.1:0", 1).expect("bind loopback server");
    let mut client = ServeClient::connect(&server.addr().to_string()).expect("connect");

    let queries: Vec<(u64, EstimateRequest)> = EstimateRequest::catalog()
        .into_iter()
        .enumerate()
        .map(|(i, request)| (500 + i as u64, request))
        .collect();

    // One multi-request query: uploads the pair once, runs through the
    // daemon's engine.
    let outcome = client.query(&a_csr, &b_csr, &queries).expect("first query");
    assert!(outcome.uploaded, "first query uploads the pair");
    assert!(!outcome.reports.cache_hit);
    assert_eq!(outcome.reports.reports.len(), queries.len());
    for ((seed, request), served) in queries.iter().zip(&outcome.reports.reports) {
        let local = session
            .estimate_seeded(request, Seed(*seed))
            .unwrap_or_else(|e| panic!("{} local: {e}", request.name()));
        assert_eq!(served, &local, "{} served != local", request.name());
    }

    // Second pass, reversed order, one request at a time: cache hits,
    // no upload, still bit-identical.
    for (seed, request) in queries.iter().rev() {
        let outcome = client
            .query(
                &a_csr,
                &b_csr,
                std::slice::from_ref(&(*seed, request.clone())),
            )
            .expect("cached query");
        assert!(outcome.reports.cache_hit, "{}", request.name());
        assert!(!outcome.uploaded);
        let local = session.estimate_seeded(request, Seed(*seed)).unwrap();
        assert_eq!(outcome.reports.reports[0], local);
    }

    // The daemon's global ledger saw every request; its real wire bytes
    // dwarf nothing — they at least cover the uploaded pair.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.queries, 2 * queries.len() as u64);
    assert_eq!(stats.sessions, 1);
    assert!(stats.accounting.total_bits > 0);
    server.shutdown();
}

/// Both host-side roles work: a host playing Alice serves an initiator
/// playing Bob with identical results.
#[test]
fn remote_roles_are_symmetric() {
    let (a, b) = pair();
    let host = PartyHost::spawn(
        "127.0.0.1:0",
        Arc::new(Session::new(a.clone(), b.clone())),
        Party::Alice,
    )
    .expect("bind");
    let session = Session::new(a, b);
    for request in [
        EstimateRequest::ExactL1,
        EstimateRequest::SparseMatmul,
        EstimateRequest::LpBaseline {
            p: PNorm::ONE,
            eps: 0.4,
        },
        EstimateRequest::AtLeastTJoin { t: 2, slack: 0.5 },
    ] {
        let local = session.estimate_seeded(&request, Seed(11)).unwrap();
        let (remote, _, _) = run_with_party(
            &host.addr().to_string(),
            &session,
            Party::Bob,
            &request,
            Seed(11),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", request.name()));
        assert_eq!(remote, local, "{}", request.name());
    }
    host.shutdown();
}

/// Errors cross the wire as typed errors, not hangs: a request invalid
/// for the pair fails identically on the remote path.
#[test]
fn remote_errors_match_local_errors() {
    // Non-binary integer pair: binary-only protocols must fail.
    let a = Workloads::integer_csr(8, 10, 0.4, 5, false, 1);
    let b = Workloads::integer_csr(10, 8, 0.4, 5, false, 2);
    let host = PartyHost::spawn(
        "127.0.0.1:0",
        Arc::new(Session::new(a.clone(), b.clone())),
        Party::Bob,
    )
    .expect("bind");
    let session = Session::new(a, b);
    let request = EstimateRequest::TrivialBinary;
    let local_err = session.estimate_seeded(&request, Seed(3)).unwrap_err();
    let remote_err = run_with_party(
        &host.addr().to_string(),
        &session,
        Party::Alice,
        &request,
        Seed(3),
    )
    .unwrap_err();
    assert_eq!(remote_err, local_err, "validation errors are identical");
    // The connection (and host) survive for a follow-up valid run.
    let ok = run_with_party(
        &host.addr().to_string(),
        &session,
        Party::Alice,
        &EstimateRequest::ExactL1,
        Seed(3),
    )
    .unwrap();
    assert_eq!(
        ok.0,
        session
            .estimate_seeded(&EstimateRequest::ExactL1, Seed(3))
            .unwrap()
    );
    host.shutdown();
}

/// The serving trajectory's deterministic fields: re-running the same
/// remote query moves exactly the same number of real bytes (frames are
/// a pure function of the pair and seed), wire bytes dominate logical
/// bits for every protocol, and `BENCH_serve.json` is emitted with the
/// gate satisfied.
#[test]
fn bench_serve_trajectory_is_deterministic_and_dominant() {
    let (a, b) = pair();
    let session = Session::new(a.clone(), b.clone());
    let host =
        PartyHost::spawn("127.0.0.1:0", Arc::new(Session::new(a, b)), Party::Bob).expect("bind");
    let addr = host.addr().to_string();
    for request in EstimateRequest::catalog() {
        let (r1, out1, in1) = run_with_party(&addr, &session, Party::Alice, &request, Seed(9))
            .unwrap_or_else(|e| panic!("{}: {e}", request.name()));
        let (r2, out2, in2) = run_with_party(&addr, &session, Party::Alice, &request, Seed(9))
            .unwrap_or_else(|e| panic!("{}: {e}", request.name()));
        assert_eq!(r1, r2, "{} reports differ across reruns", request.name());
        assert_eq!(
            (out1, in1),
            (out2, in2),
            "{} wire bytes differ across reruns",
            request.name()
        );
        assert!(
            out1 + in1 >= r1.bits().div_ceil(8),
            "{}: wire bytes below logical bits/8",
            request.name()
        );
    }
    host.shutdown();

    // The full quick trajectory (its own loopback daemons) passes its
    // gate and serializes with the per-protocol invariants intact.
    let bench = mpest_bench::serve::run(true);
    assert!(bench.all_match, "serve trajectory gate failed");
    assert_eq!(bench.per_protocol.len(), 14);
    for p in &bench.per_protocol {
        assert!(p.wire_covers_logical, "{}", p.protocol);
        assert!(p.matches_local, "{}", p.protocol);
    }
    let dir = std::env::temp_dir().join(format!("mpest-serve-bench-{}", std::process::id()));
    let path = dir.join("BENCH_serve.json");
    bench.save_json(&path).expect("write BENCH_serve.json");
    let written = std::fs::read_to_string(&path).unwrap();
    assert!(written.contains("\"all_match\": true"));
    let _ = std::fs::remove_dir_all(&dir);
}
