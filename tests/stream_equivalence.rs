//! The streaming contract: a session maintained *incrementally* through
//! [`Session::apply_update`] answers every protocol bit-identically to a
//! session rebuilt from scratch over the mutated matrices — across
//! randomized update schedules (append / overwrite / delete), on binary
//! and integer pairs, for all 14 protocols; `KIND_UPDATE` batches pushed
//! over a real socket leave the served daemon session and a local mirror
//! bit-identical (and the party host's live session in lockstep with an
//! initiator's); and a v2-era client — one built before the update
//! family existed — still completes a query against the v3 daemon via
//! codec-version negotiation.

use mpest::net::codec::MAGIC;
use mpest::net::{
    fingerprint, run_with_party, update_party, FramedConn, PartyHost, QueryMsg, ServeClient,
    Server, ServiceMsg, UpdateMsg, WCsr, MIN_VERSION, VERSION,
};
use mpest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Runs the full 14-protocol catalog on both sessions under identical
/// explicit seeds and asserts report-level bit-identity — `Ok` reports
/// (output, transcript, accounting) and `Err`s alike must match.
fn assert_catalog_identical(inc: &Session, cold: &Session, seed_base: u64, ctx: &str) {
    for (i, request) in EstimateRequest::catalog().iter().enumerate() {
        let seed = Seed(seed_base + i as u64);
        let from_inc = inc.estimate_seeded(request, seed);
        let from_cold = cold.estimate_seeded(request, seed);
        assert_eq!(
            from_inc,
            from_cold,
            "{} diverged between incremental and rebuild ({ctx})",
            request.name()
        );
    }
}

/// Decodes one raw proptest tuple into a valid op against the session's
/// *current* dimensions (appends shift them mid-schedule, which is the
/// point). Alice appends grow her row count; Bob appends grow his
/// column count; the inner dimension is fixed, so entry indices are
/// reduced modulo whatever is live right now.
fn push_op(
    batch: UpdateBatch,
    session: &Session,
    inner: u32,
    raw: (u8, u8, u32, u32, u8),
    binary: bool,
) -> UpdateBatch {
    let (kind, side_bit, row, col, v) = raw;
    let side = if side_bit % 2 == 0 {
        UpdateSide::Alice
    } else {
        UpdateSide::Bob
    };
    let (out_rows, out_cols) = session.output_shape();
    let (rows, cols) = match side {
        UpdateSide::Alice => (out_rows as u32, inner),
        UpdateSide::Bob => (inner, out_cols as u32),
    };
    let val = if binary {
        i64::from(v % 2)
    } else {
        [-3, -1, 2, 5][usize::from(v % 4)]
    };
    match kind % 3 {
        0 => batch.set_entry(side, row % rows, col % cols, val),
        1 => batch.delete_entry(side, row % rows, col % cols),
        _ => {
            // An append's entries index the *inner* dimension on both
            // sides (Alice appends an output row, Bob an output column).
            let e0 = (row % inner, if binary { 1 } else { val.max(1) });
            let e1 = ((col % inner).min(inner - 1), 1);
            let entries = if e0.0 == e1.0 { vec![e0] } else { vec![e0, e1] };
            batch.append_row(side, entries)
        }
    }
}

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(8))]

    /// Binary pair, randomized schedules: a warmed session maintained
    /// through `apply_update` (so every derived view takes the
    /// incremental path) matches a from-scratch rebuild over its own
    /// `csr_halves`, protocol by protocol.
    #[test]
    fn incremental_matches_rebuild_on_binary_pairs(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..2, 0u32..64, 0u32..64, 0u8..4),
            1..18,
        ),
    ) {
        let a = Workloads::bernoulli_bits(10, 14, 0.3, 41);
        let b = Workloads::bernoulli_bits(14, 10, 0.3, 42);
        let inner = 14u32;
        let mut inc = Session::new(a, b);
        inc.warm_views().expect("warm base views");
        let mut applied = 0u64;
        for chunk in ops.chunks(3) {
            let mut batch = UpdateBatch::new();
            for &raw in chunk {
                batch = push_op(batch, &inc, inner, raw, true);
            }
            let epoch = inc.apply_update(&batch).expect("valid batch applies");
            applied += 1;
            proptest::prop_assert_eq!(epoch, applied);
        }
        proptest::prop_assert_eq!(inc.epoch(), applied);
        let (ca, cb) = inc.csr_halves().expect("mutated halves");
        let cold = Session::new(ca.clone(), cb.clone());
        assert_catalog_identical(&inc, &cold, 0xA11C_E000, "binary schedule");
    }

    /// Integer pair, randomized schedules: signed overwrites and
    /// deletes, with binary-only protocols required to fail with the
    /// *identical* typed error on both paths.
    #[test]
    fn incremental_matches_rebuild_on_integer_pairs(
        ops in proptest::collection::vec(
            (0u8..3, 0u8..2, 0u32..64, 0u32..64, 0u8..4),
            1..14,
        ),
    ) {
        let a = Workloads::integer_csr(9, 7, 0.4, 4, true, 43);
        let b = Workloads::integer_csr(7, 9, 0.4, 4, true, 44);
        let inner = 7u32;
        let mut inc = Session::new(a, b);
        inc.warm_views().expect("warm base views");
        for chunk in ops.chunks(2) {
            let mut batch = UpdateBatch::new();
            for &raw in chunk {
                batch = push_op(batch, &inc, inner, raw, false);
            }
            inc.apply_update(&batch).expect("valid batch applies");
        }
        let (ca, cb) = inc.csr_halves().expect("mutated halves");
        let cold = Session::new(ca.clone(), cb.clone());
        assert_catalog_identical(&inc, &cold, 0xB0B_0000, "integer schedule");
    }
}

/// A rejected batch is atomic: the session keeps its epoch, content,
/// and incrementally maintained views, and still matches a rebuild.
#[test]
fn failed_batch_leaves_session_and_views_untouched() {
    let a = Workloads::bernoulli_bits(8, 12, 0.3, 45);
    let b = Workloads::bernoulli_bits(12, 8, 0.3, 46);
    let mut inc = Session::new(a, b);
    inc.warm_views().unwrap();
    inc.apply_update(&UpdateBatch::new().set_entry(UpdateSide::Alice, 2, 3, 1))
        .unwrap();
    // Valid op first, then an out-of-range column: the whole batch must
    // be rejected without applying the first op.
    let bad = UpdateBatch::new()
        .set_entry(UpdateSide::Bob, 1, 1, 1)
        .set_entry(UpdateSide::Alice, 0, 99, 1);
    let err = inc.apply_update(&bad).unwrap_err();
    assert!(
        err.to_string().contains("op 1"),
        "error names the offending op position: {err}"
    );
    assert_eq!(inc.epoch(), 1, "failed batch must not bump the epoch");
    let (ca, cb) = inc.csr_halves().unwrap();
    let cold = Session::new(ca.clone(), cb.clone());
    assert_catalog_identical(&inc, &cold, 0xFA11_ED00, "after rejected batch");
}

/// Deterministic per-step batch for the socket tests: flips one entry
/// per side to the opposite binary value (so both fingerprints change
/// every step and the pair *stays* binary — the full catalog must keep
/// serving), plus churn that exercises delete and append paths.
fn step_batch(mirror: &Session, step: u64) -> UpdateBatch {
    let (a, b) = mirror.csr_halves().expect("mirror halves");
    let (ar, ac) = (a.rows() as u32, a.cols() as u32);
    let (br, bc) = (b.rows() as u32, b.cols() as u32);
    let (fr, fc) = (step % u64::from(ar), (step * 3) % u64::from(ac));
    let (gr, gc) = ((step * 5) % u64::from(br), step % u64::from(bc));
    let flip = |cur: i64| if cur == 1 { 0 } else { 1 };
    let mut batch = UpdateBatch::new()
        .set_entry(
            UpdateSide::Alice,
            fr as u32,
            fc as u32,
            flip(a.get(fr as usize, fc as u32)),
        )
        .set_entry(
            UpdateSide::Bob,
            gr as u32,
            gc as u32,
            flip(b.get(gr as usize, gc as u32)),
        );
    batch = if step.is_multiple_of(2) {
        batch.delete_entry(UpdateSide::Alice, (step * 7 % u64::from(ar)) as u32, 0)
    } else {
        batch.append_row(UpdateSide::Alice, vec![((step % u64::from(ac)) as u32, 1)])
    };
    batch
}

/// The daemon path: `KIND_UPDATE` batches pushed through `ServeClient`
/// keep the served session and a local mirror bit-identical at every
/// epoch — reports match under epoch-pinned queries, acks carry the
/// mirror's exact fingerprints and epoch, stale addresses fail typed
/// without corrupting the live session, and the superseded counter
/// accounts every retired epoch.
#[test]
fn daemon_updates_leave_served_and_local_bit_identical() {
    let a = Workloads::bernoulli_bits(16, 12, 0.35, 47).to_csr();
    let b = Workloads::bernoulli_bits(12, 16, 0.35, 48).to_csr();
    let mut mirror = Session::new(a.clone(), b.clone());
    mirror.warm_views().unwrap();
    let server = Server::spawn("127.0.0.1:0", 0).expect("bind loopback daemon");
    let mut client = ServeClient::connect(&server.addr().to_string()).expect("connect");

    // Upload at epoch 0 and check one report against the mirror.
    let probe = [(900u64, EstimateRequest::ExactL1)];
    let outcome = client.query(&a, &b, &probe).expect("upload query");
    assert!(outcome.uploaded);
    assert_eq!(outcome.reports.epoch, 0);
    assert_eq!(
        outcome.reports.reports[0],
        mirror
            .estimate_seeded(&probe[0].1, Seed(probe[0].0))
            .unwrap()
    );

    let spot_checks = [
        EstimateRequest::ExactL1,
        EstimateRequest::LpNorm {
            p: PNorm::ONE,
            eps: 0.3,
        },
        EstimateRequest::SparseMatmul,
    ];
    let steps = 4u64;
    for step in 0..steps {
        let batch = step_batch(&mirror, step);
        let (pre_a, pre_b) = {
            let (x, y) = mirror.csr_halves().unwrap();
            (x.clone(), y.clone())
        };
        let ack = client
            .update(&pre_a, &pre_b, mirror.epoch(), &batch)
            .unwrap_or_else(|e| panic!("update step {step}: {e}"));
        mirror.apply_update(&batch).expect("mirror applies");
        let (now_a, now_b) = {
            let (x, y) = mirror.csr_halves().unwrap();
            (x.clone(), y.clone())
        };
        assert_eq!(ack.epoch, mirror.epoch(), "ack epoch (step {step})");
        assert_eq!(ack.fp_a, fingerprint(&now_a), "ack fp_a (step {step})");
        assert_eq!(ack.fp_b, fingerprint(&now_b), "ack fp_b (step {step})");

        // Epoch-pinned queries against the updated session match the
        // mirror bit-for-bit.
        let queries: Vec<(u64, EstimateRequest)> = spot_checks
            .iter()
            .enumerate()
            .map(|(i, r)| (7000 + step * 16 + i as u64, r.clone()))
            .collect();
        let outcome = client
            .query_at_epoch(&now_a, &now_b, &queries, ack.epoch)
            .unwrap_or_else(|e| panic!("pinned query step {step}: {e}"));
        assert_eq!(outcome.reports.epoch, ack.epoch);
        assert!(!outcome.uploaded, "updates keep the session cached");
        for ((seed, request), served) in queries.iter().zip(&outcome.reports.reports) {
            let local = mirror.estimate_seeded(request, Seed(*seed)).unwrap();
            assert_eq!(served, &local, "{} (step {step})", request.name());
        }

        // Stale addresses fail typed: yesterday's fingerprints, a
        // wrong expected epoch, and a pin on a retired epoch all name
        // where the session is *now* — and none of them corrupt it.
        let stale_q = client.query(&pre_a, &pre_b, &probe).unwrap_err();
        assert!(
            stale_q.to_string().contains("stale epoch:"),
            "stale query: {stale_q}"
        );
        let stale_u = client
            .update(&now_a, &now_b, mirror.epoch() + 1, &batch)
            .unwrap_err();
        assert!(
            stale_u.to_string().contains("stale epoch:"),
            "stale update: {stale_u}"
        );
        if ack.epoch > 0 {
            let stale_pin = client
                .query_at_epoch(&now_a, &now_b, &queries, ack.epoch - 1)
                .unwrap_err();
            assert!(
                stale_pin.to_string().contains("stale epoch:"),
                "stale pin: {stale_pin}"
            );
        }
    }

    // Full catalog at the final epoch: all 14 protocols bit-identical.
    let (fa, fb) = {
        let (x, y) = mirror.csr_halves().unwrap();
        (x.clone(), y.clone())
    };
    let catalog: Vec<(u64, EstimateRequest)> = EstimateRequest::catalog()
        .into_iter()
        .enumerate()
        .map(|(i, r)| (9100 + i as u64, r))
        .collect();
    let outcome = client
        .query_at_epoch(&fa, &fb, &catalog, mirror.epoch())
        .expect("final catalog query");
    assert_eq!(outcome.reports.reports.len(), 14);
    for ((seed, request), served) in catalog.iter().zip(&outcome.reports.reports) {
        let local = mirror.estimate_seeded(request, Seed(*seed)).unwrap();
        assert_eq!(served, &local, "{} at final epoch", request.name());
    }

    // One live session, every superseded epoch accounted.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.sessions, 1, "updates rekey, never duplicate");
    assert_eq!(stats.superseded, steps, "every update retires one epoch");
    server.shutdown();
}

/// The party path: an updatable host accepts `KIND_UPDATE` between
/// runs, `update_party` keeps the initiator's mirror in lockstep, and
/// remote runs after each mutation stay bit-identical to local ones.
#[test]
fn party_updates_keep_remote_runs_bit_identical() {
    let a = Workloads::bernoulli_bits(12, 16, 0.3, 51);
    let b = Workloads::bernoulli_bits(16, 12, 0.3, 52);
    let host = PartyHost::spawn_updatable(
        "127.0.0.1:0",
        Session::new(a.clone(), b.clone()),
        Party::Bob,
    )
    .expect("bind updatable host");
    let addr = host.addr().to_string();
    let mut mirror = Session::new(a, b);

    let spot_checks = [
        EstimateRequest::ExactL1,
        EstimateRequest::TrivialBinary,
        EstimateRequest::LpNorm {
            p: PNorm::Zero,
            eps: 0.3,
        },
    ];
    for step in 0..3u64 {
        let batch = UpdateBatch::new()
            .set_entry(
                UpdateSide::Alice,
                (step % 12) as u32,
                (step * 3 % 16) as u32,
                1,
            )
            .delete_entry(UpdateSide::Bob, (step * 5 % 16) as u32, (step % 12) as u32)
            .append_row(UpdateSide::Bob, vec![((step % 16) as u32, 1)]);
        let epoch = update_party(&addr, &mut mirror, &batch, None)
            .unwrap_or_else(|e| panic!("update step {step}: {e}"));
        assert_eq!(epoch, mirror.epoch(), "remote and mirror epochs agree");
        for (i, request) in spot_checks.iter().enumerate() {
            let seed = Seed(3000 + step * 16 + i as u64);
            let local = mirror.estimate_seeded(request, seed).unwrap();
            let (remote, _, _) = run_with_party(&addr, &mirror, Party::Alice, request, seed)
                .unwrap_or_else(|e| panic!("{} step {step}: {e}", request.name()));
            assert_eq!(remote.output, local.output, "{} output", request.name());
            assert_eq!(
                remote.transcript.records,
                local.transcript.records,
                "{} transcript",
                request.name()
            );
        }
    }

    // A stale mirror (out-of-date epoch) is rejected typed and leaves
    // the host's session untouched for the next valid run.
    let mut stale = {
        let (x, y) = mirror.csr_halves().unwrap();
        Session::new(x.clone(), y.clone())
    };
    let err = update_party(
        &addr,
        &mut stale,
        &UpdateBatch::new().set_entry(UpdateSide::Alice, 0, 0, 1),
        None,
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("stale epoch:"),
        "stale party update: {err}"
    );
    assert_eq!(
        stale.epoch(),
        0,
        "rejected update must not touch the mirror"
    );
    let request = EstimateRequest::ExactL1;
    let local = mirror.estimate_seeded(&request, Seed(4001)).unwrap();
    let (remote, _, _) = run_with_party(&addr, &mirror, Party::Alice, &request, Seed(4001))
        .expect("host survives a stale update");
    assert_eq!(remote.output, local.output);
    host.shutdown();
}

/// Codec-version negotiation, end to end: a client that only speaks v2
/// — hand-rolled preamble advertising `2..=2`, exactly what a binary
/// built before the update family would send — completes a full query
/// round-trip (query → need-matrices → upload → reports) against the
/// current daemon, with reports bit-identical to a local run. The same
/// connection then refuses to *send* v3-only messages locally, typed.
#[test]
fn v2_client_completes_a_query_against_a_v3_daemon() {
    assert_eq!(MIN_VERSION, 2, "test models a v2 peer");
    let a = Workloads::integer_csr(10, 8, 0.4, 4, false, 53);
    let b = Workloads::integer_csr(8, 10, 0.4, 4, false, 54);
    let local = Session::new(a.clone(), b.clone());
    let server = Server::spawn("127.0.0.1:0", 0).expect("bind loopback daemon");

    // Hand-rolled handshake: same magic, but min and max both 2.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut preamble = [0u8; 8];
    preamble[..4].copy_from_slice(&MAGIC);
    preamble[4..6].copy_from_slice(&2u16.to_be_bytes());
    preamble[6..8].copy_from_slice(&2u16.to_be_bytes());
    stream.write_all(&preamble).expect("send v2 preamble");
    let mut reply = [0u8; 8];
    stream.read_exact(&mut reply).expect("daemon preamble");
    assert_eq!(&reply[..4], &MAGIC, "daemon magic");
    assert_eq!(
        u16::from_be_bytes([reply[4], reply[5]]),
        MIN_VERSION,
        "daemon still offers v2"
    );
    assert_eq!(
        u16::from_be_bytes([reply[6], reply[7]]),
        VERSION,
        "daemon tops out at the current version"
    );

    // Speak v2 on the wire; the daemon negotiated down to meet us.
    let mut conn = FramedConn::new(stream).with_version(2);
    conn.set_timeouts(Some(Duration::from_secs(30)))
        .expect("socket deadlines");
    let queries = vec![
        (7700u64, EstimateRequest::ExactL1),
        (
            7701,
            EstimateRequest::LpNorm {
                p: PNorm::ONE,
                eps: 0.3,
            },
        ),
    ];
    conn.send_msg(&ServiceMsg::Query(QueryMsg {
        fp_a: fingerprint(&a),
        fp_b: fingerprint(&b),
        queries: queries.clone(),
        at_epoch: None,
        id: 0,
    }))
    .expect("v2 query sends");
    assert!(
        matches!(conn.recv_msg_required(), Ok(ServiceMsg::NeedMatrices)),
        "fresh daemon asks for the pair"
    );
    conn.send_msg(&ServiceMsg::Matrices {
        a: WCsr(a.clone()),
        b: WCsr(b.clone()),
    })
    .expect("v2 upload sends");
    let reports = match conn.recv_msg_required().expect("reply") {
        ServiceMsg::Reports(r) => r,
        other => panic!("expected reports, got {}", other.name()),
    };
    assert_eq!(reports.reports.len(), 2);
    assert_eq!(reports.epoch, 0, "v2 wire carries no epoch field");
    for ((seed, request), served) in queries.iter().zip(&reports.reports) {
        let expected = local.estimate_seeded(request, Seed(*seed)).unwrap();
        assert_eq!(served, &expected, "{} over v2", request.name());
    }

    // v3-only traffic is refused before it touches the wire.
    let err = conn
        .send_msg(&ServiceMsg::Update(UpdateMsg {
            fp_a: fingerprint(&a),
            fp_b: fingerprint(&b),
            expect_epoch: 0,
            batch: UpdateBatch::new().set_entry(UpdateSide::Alice, 0, 0, 1),
        }))
        .unwrap_err();
    assert!(
        err.to_string().contains("requires codec v3"),
        "update gated on v2 connection: {err}"
    );
    server.shutdown();
}
