//! The batch-engine contract: executing a `Vec<EstimateRequest>`
//! through [`Engine::run_batch`] is **bit-identical** — outputs *and*
//! transcripts — to the equivalent sequence of seeded `Session` runs,
//! for every protocol and every worker count, and the per-query seed
//! schedule is exactly [`Session::query_seed`].

use mpest::prelude::*;

fn pair() -> (BitMatrix, BitMatrix) {
    (
        Workloads::bernoulli_bits(20, 28, 0.3, 1),
        Workloads::bernoulli_bits(28, 20, 0.3, 2),
    )
}

/// (a) Batch == sequential `run_seeded`-equivalent execution,
/// bit-for-bit, for every protocol: the report of batch query `i` must
/// equal the report of `estimate_seeded(request, query_seed(i))` —
/// which `tests/session_equivalence.rs` already ties to the typed
/// `run_seeded` path and the legacy one-shot runs.
#[test]
fn batch_matches_sequential_seeded_runs_for_every_protocol() {
    let (a, b) = pair();
    let requests = EstimateRequest::catalog();
    assert_eq!(requests.len(), 14, "one request per protocol");

    let session = Session::builder(a.clone(), b.clone())
        .seed(Seed(42))
        .build();
    let sequential: Vec<EstimateReport> = requests
        .iter()
        .enumerate()
        .map(|(i, req)| {
            session
                .estimate_seeded(req, session.query_seed(i as u64))
                .unwrap_or_else(|e| panic!("{} failed: {e}", req.name()))
        })
        .collect();

    let engine = Engine::new(Session::builder(a, b).seed(Seed(42)).build());
    let batch = engine
        .run_batch(&requests, &BatchPlan::default().with_workers(4).at_index(0))
        .unwrap();

    assert_eq!(batch.reports.len(), sequential.len());
    for ((req, batched), sequential) in requests.iter().zip(&batch.reports).zip(&sequential) {
        assert_eq!(
            batched.output,
            sequential.output,
            "{}: batch output differs from sequential seeded run",
            req.name()
        );
        assert_eq!(
            batched.transcript,
            sequential.transcript,
            "{}: batch transcript differs from sequential seeded run",
            req.name()
        );
    }
    // Aggregate accounting is exactly the fold of the per-query
    // transcripts.
    let mut expected = BatchAccounting::new();
    for report in &sequential {
        expected.absorb(&report.transcript);
    }
    assert_eq!(batch.accounting, expected);
}

/// (a') The typed path too: a batch report carries the very same
/// transcript as `Session::run_seeded` with the matching params.
#[test]
fn batch_matches_typed_run_seeded() {
    let (a, b) = pair();
    let session = Session::builder(a.clone(), b.clone()).seed(Seed(9)).build();
    let engine = Engine::new(Session::builder(a, b).seed(Seed(9)).build());
    let requests = vec![
        EstimateRequest::LpNorm {
            p: PNorm::ONE,
            eps: 0.25,
        },
        EstimateRequest::ExactL1,
        EstimateRequest::LinfBinary { eps: 0.3 },
    ];
    let batch = engine
        .run_batch(&requests, &BatchPlan::default().with_workers(2).at_index(0))
        .unwrap();

    let lp = session
        .run_seeded(
            &LpNorm,
            &LpParams::new(PNorm::ONE, 0.25),
            session.query_seed(0),
        )
        .unwrap();
    assert_eq!(batch.reports[0].output, AnyOutput::Scalar(lp.output));
    assert_eq!(batch.reports[0].transcript, lp.transcript);

    let l1 = session
        .run_seeded(&ExactL1, &(), session.query_seed(1))
        .unwrap();
    assert_eq!(batch.reports[1].output, AnyOutput::Count(l1.output));
    assert_eq!(batch.reports[1].transcript, l1.transcript);

    let linf = session
        .run_seeded(
            &LinfBinary,
            &LinfBinaryParams::new(0.3),
            session.query_seed(2),
        )
        .unwrap();
    assert_eq!(batch.reports[2].output, AnyOutput::Linf(linf.output));
    assert_eq!(batch.reports[2].transcript, linf.transcript);
}

/// (b) Worker-count invariance: 1, 2, and 8 workers (and prewarm
/// on/off) produce identical `BatchReport`s.
#[test]
fn batch_results_are_invariant_under_worker_count() {
    let (a, b) = pair();
    let engine = Engine::new(Session::builder(a, b).seed(Seed(1234)).build());
    // A batch longer than the protocol list, so workers interleave.
    let requests: Vec<EstimateRequest> = EstimateRequest::catalog()
        .into_iter()
        .cycle()
        .take(30)
        .collect();

    let baseline = engine
        .run_batch(&requests, &BatchPlan::default().with_workers(1).at_index(0))
        .unwrap();
    for workers in [2usize, 8] {
        let run = engine
            .run_batch(
                &requests,
                &BatchPlan::default().with_workers(workers).at_index(0),
            )
            .unwrap();
        assert_eq!(
            run, baseline,
            "batch with {workers} workers diverged from 1-worker run"
        );
    }
    let cold = engine
        .run_batch(
            &requests,
            &BatchPlan::default()
                .with_workers(8)
                .with_prewarm(false)
                .at_index(0),
        )
        .unwrap();
    assert_eq!(cold, baseline, "prewarm=false changed batch results");
}

/// (c) Seed derivation: batches consume the session's query counter in
/// file order, so batch query `i` runs under exactly
/// `Session::query_seed(first + i)` — interleaving single queries and
/// batches never aliases or skips seeds.
#[test]
fn batch_seed_derivation_matches_session_query_seed() {
    let (a, b) = pair();
    let requests = vec![
        EstimateRequest::L1Sample,
        EstimateRequest::L0Sample { eps: 0.3 },
        EstimateRequest::LpNorm {
            p: PNorm::Zero,
            eps: 0.3,
        },
    ];

    // Reference: a pure-session interleaving — one single query, then
    // the three "batch" queries sequentially, then another single.
    let reference = Session::builder(a.clone(), b.clone()).seed(Seed(5)).build();
    let single_before = reference.estimate(&EstimateRequest::ExactL1).unwrap();
    let sequential: Vec<EstimateReport> = requests
        .iter()
        .map(|req| reference.estimate(req).unwrap())
        .collect();
    let single_after = reference.estimate(&EstimateRequest::ExactL1).unwrap();

    // Same schedule through the engine.
    let engine = Engine::new(Session::builder(a, b).seed(Seed(5)).build());
    let before = engine
        .session()
        .estimate(&EstimateRequest::ExactL1)
        .unwrap();
    let batch = engine
        .run_batch(&requests, &BatchPlan::default().with_workers(2))
        .unwrap();
    let after = engine
        .session()
        .estimate(&EstimateRequest::ExactL1)
        .unwrap();

    assert_eq!(before, single_before);
    assert_eq!(batch.reports, sequential);
    assert_eq!(after, single_after, "batch skipped or aliased seed indices");
    assert_eq!(batch.first_query_index, 1);
    assert_eq!(engine.session().queries_issued(), 5);

    // And the indices map to query_seed exactly: replaying with
    // explicit seeds reproduces the batch bit-for-bit.
    for (i, report) in batch.reports.iter().enumerate() {
        let replay = engine
            .session()
            .estimate_seeded(
                &requests[i],
                engine
                    .session()
                    .query_seed(batch.first_query_index + i as u64),
            )
            .unwrap();
        assert_eq!(&replay, report, "query {i} ran off-schedule");
    }
}
