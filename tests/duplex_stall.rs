//! The full-duplex write stall, pinned from both sides: with the kernel
//! socket buffers shrunk below the payload size, a simultaneous round —
//! here the post-protocol output exchange of `sparse-matmul`, where both
//! parties ship ~150 KiB of product shares at once — deadlocks the
//! blocking *reference* transport into a typed write-timeout, while the
//! default readiness-driven duplex transport spools the same frames,
//! drains them incrementally, and stays bit-identical to the in-process
//! run on **both** roles.
//!
//! `setsockopt` is declared by hand (std-only crate: no libc dependency)
//! and the test is Linux-only — the `SO_*` constants and the buffer
//! minimum-clamping behavior are Linux's.
#![cfg(target_os = "linux")]

use mpest::comm::CommError;
use mpest::net::{DuplexConn, FramedConn};
use mpest::prelude::*;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const SOL_SOCKET: i32 = 1;
const SO_SNDBUF: i32 = 7;
const SO_RCVBUF: i32 = 8;

extern "C" {
    fn setsockopt(
        fd: i32,
        level: i32,
        optname: i32,
        optval: *const std::ffi::c_void,
        optlen: u32,
    ) -> i32;
}

/// Shrinks both kernel buffers toward the floor (Linux clamps the
/// request to a few KiB) so the in-flight capacity per direction is far
/// below the output-exchange payload.
fn shrink_buffers(stream: &TcpStream) {
    let val: i32 = 4096;
    for opt in [SO_SNDBUF, SO_RCVBUF] {
        let rc = unsafe {
            setsockopt(
                stream.as_raw_fd(),
                SOL_SOCKET,
                opt,
                (&val as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        assert_eq!(rc, 0, "setsockopt(SOL_SOCKET, {opt}) failed");
    }
}

/// A loopback pair with both ends' buffers shrunk *before* any protocol
/// byte moves.
fn shrunken_pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let a = TcpStream::connect(addr).expect("connect");
    let (b, _) = listener.accept().expect("accept");
    for s in [&a, &b] {
        s.set_nodelay(true).expect("nodelay");
        shrink_buffers(s);
    }
    (a, b)
}

/// Shapes chosen so the sparse-matmul output (200 × 200 product shares,
/// ~150 KiB encoded) is roughly ten times the shrunken in-flight
/// capacity — guaranteed to wedge the blocking path — while staying
/// small enough that the duplex transfer's many tiny-window round-trips
/// keep the test quick.
fn big_session() -> Session {
    let a = Workloads::bernoulli_bits(200, 96, 0.3, 1);
    let b = Workloads::bernoulli_bits(96, 200, 0.3, 2);
    Session::new(a, b)
}

/// Runs one party of the remote round on its own thread, over either the
/// blocking reference transport or the default duplex one.
fn run_side(
    session: Arc<Session>,
    stream: TcpStream,
    side: Party,
    duplex: bool,
) -> thread::JoinHandle<Result<EstimateReport, CommError>> {
    thread::spawn(move || {
        let request = EstimateRequest::SparseMatmul;
        let seed = Seed(9);
        if duplex {
            let conn = FramedConn::establish(stream)?;
            let mut conn = DuplexConn::from_framed(conn, Some(Duration::from_secs(30)))?;
            let report = session.estimate_remote(&request, seed, side, &mut conn)?;
            // A completed recv does not order this side's spooled sends:
            // flush them so the peer's own output read can finish (the
            // party/serve layers drain the same way after every run).
            conn.drain()?;
            Ok(report)
        } else {
            // The blocking path relies on socket deadlines to surface the
            // stall; without them both processes would hang forever.
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(2))))
                .map_err(|e| CommError::frame("socket", format!("timeouts: {e}")))?;
            let mut conn = FramedConn::establish(stream)?;
            session.estimate_remote(&request, seed, side, &mut conn)
        }
    })
}

/// The bug: both parties enter the output exchange *writing* a payload
/// larger than the socket buffers, neither is reading, and the blocking
/// transport wedges until the write deadline converts the deadlock into
/// a typed timeout. Neither role may complete.
#[test]
fn blocking_reference_path_stalls_into_a_write_timeout() {
    let session = Arc::new(big_session());
    let (sa, sb) = shrunken_pair();
    let alice = run_side(Arc::clone(&session), sa, Party::Alice, false);
    let bob = run_side(session, sb, Party::Bob, false);
    let ea = alice
        .join()
        .expect("alice thread")
        .expect_err("alice must stall");
    let eb = bob.join().expect("bob thread").expect_err("bob must stall");
    // Whichever side's deadline fires first reports the timeout; the
    // other may instead see the resulting hangup (broken pipe / reset).
    let (ea, eb) = (ea.to_string(), eb.to_string());
    assert!(
        ea.contains("timed out") || eb.contains("timed out"),
        "expected a typed write-timeout, got alice={ea:?} bob={eb:?}"
    );
}

/// The fix: the identical round over the default duplex transport —
/// same shrunken buffers, same simultaneous oversized payloads — drains
/// incrementally on kernel readiness and both roles' reports (output,
/// transcript, everything) are bit-identical to the in-process run.
#[test]
fn duplex_default_path_completes_bit_identically_where_blocking_stalls() {
    let session = Arc::new(big_session());
    let local = session
        .estimate_seeded(&EstimateRequest::SparseMatmul, Seed(9))
        .expect("local run");
    let (sa, sb) = shrunken_pair();
    let alice = run_side(Arc::clone(&session), sa, Party::Alice, true);
    let bob = run_side(Arc::clone(&session), sb, Party::Bob, true);
    let ra = alice
        .join()
        .expect("alice thread")
        .expect("alice remote run");
    let rb = bob.join().expect("bob thread").expect("bob remote run");
    assert_eq!(ra, local, "alice's duplex report diverged from local");
    assert_eq!(rb, local, "bob's duplex report diverged from local");
}
