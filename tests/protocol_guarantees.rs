//! Property-based tests: protocol invariants over randomized instances.
//!
//! These complement the per-module unit tests with adversarially-shaped
//! random inputs (arbitrary shapes, densities, values) checking the
//! *unconditional* invariants: exactness of exact protocols, membership
//! of samples, reconstruction of shares, validity of transcripts. Every
//! query runs through a [`Session`] over the generated pair.

use mpest::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random CSR matrix with the given shape bounds.
fn csr(max_rows: usize, max_cols: usize, max_val: i64) -> impl Strategy<Value = CsrMatrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(move |(r, c)| {
        proptest::collection::vec(
            ((0..r as u32), (0..c as u32), 1..=max_val),
            0..=(r * c / 2).max(1),
        )
        .prop_map(move |triplets| CsrMatrix::from_triplets(r, c, triplets))
    })
}

/// Strategy: a compatible (A, B) pair.
fn csr_pair() -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (1..=20usize, 1..=24usize, 1..=20usize).prop_flat_map(|(m1, n, m2)| {
        let a = proptest::collection::vec(((0..m1 as u32), (0..n as u32), 1i64..=5), 0..=60)
            .prop_map(move |t| CsrMatrix::from_triplets(m1, n, t));
        let b = proptest::collection::vec(((0..n as u32), (0..m2 as u32), 1i64..=5), 0..=60)
            .prop_map(move |t| CsrMatrix::from_triplets(n, m2, t));
        (a, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_l1_is_exact((a, b) in csr_pair()) {
        let session = Session::new(a.clone(), b.clone());
        let run = session.run_seeded(&ExactL1, &(), Seed(1)).unwrap();
        let truth = norms::csr_lp_pow(&a.matmul(&b), PNorm::ONE);
        prop_assert_eq!(run.output as f64, truth);
        prop_assert_eq!(run.rounds(), 1);
    }

    #[test]
    fn sparse_matmul_exact_for_any_inputs((a, b) in csr_pair()) {
        let session = Session::new(a.clone(), b.clone());
        let run = session.run_seeded(&SparseMatmul, &(), Seed(2)).unwrap();
        prop_assert_eq!(run.output.reconstruct(a.rows(), b.cols()), a.matmul(&b));
        prop_assert!(run.rounds() <= 2);
    }

    #[test]
    fn l1_sample_is_a_join_witness((a, b) in csr_pair()) {
        let session = Session::new(a.clone(), b.clone());
        let run = session.run_seeded(&L1Sampling, &(), Seed(3)).unwrap();
        let c = a.matmul(&b);
        match run.output {
            Some(s) => {
                prop_assert!(a.get(s.row as usize, s.witness) > 0);
                prop_assert!(b.get(s.witness as usize, s.col) > 0);
                prop_assert!(c.get(s.row as usize, s.col) > 0);
            }
            None => prop_assert_eq!(c.l1(), 0),
        }
    }

    #[test]
    fn l0_sample_value_matches_product((a, b) in csr_pair()) {
        let session = Session::new(a.clone(), b.clone());
        let run = session
            .run_seeded(&L0Sample, &L0SampleParams::new(0.5), Seed(4))
            .unwrap();
        let c = a.matmul(&b);
        match run.output {
            MatrixSample::Sampled { row, col, value } => {
                prop_assert_eq!(c.get(row as usize, col), value);
                prop_assert!(value != 0);
            }
            MatrixSample::ZeroMatrix => prop_assert_eq!(c.nnz(), 0),
            MatrixSample::Failed => {} // bounded-probability event
        }
    }

    #[test]
    fn lp_estimates_are_nonnegative_and_zero_on_zero(a in csr(16, 16, 4)) {
        let zero = CsrMatrix::zeros(a.cols(), 8);
        let session = Session::new(a, zero);
        for p in [PNorm::Zero, PNorm::ONE, PNorm::TWO] {
            let run = session
                .run_seeded(&LpNorm, &LpParams::new(p, 0.5), Seed(5))
                .unwrap();
            prop_assert!(run.output.abs() < 2.0, "zero product estimated {}", run.output);
        }
    }

    #[test]
    fn transcripts_are_well_formed((a, b) in csr_pair()) {
        let run = Session::new(a, b).run_seeded(&SparseMatmul, &(), Seed(6)).unwrap();
        let t = &run.transcript;
        // Bits by direction partition the total.
        prop_assert_eq!(t.total_bits(), t.bits_from(Party::Alice) + t.bits_from(Party::Bob));
        // Every message has a round below the round count.
        for rec in &t.records {
            prop_assert!(u32::from(rec.round) < t.rounds());
        }
        // Label aggregation preserves the total.
        let sum: u64 = t.bits_by_label().values().sum();
        prop_assert_eq!(sum, t.total_bits());
    }

    #[test]
    fn trivial_csr_recovers_all_stats((a, b) in csr_pair()) {
        let session = Session::new(a.clone(), b.clone());
        let run = session.run_seeded(&TrivialCsr, &(), Seed(7)).unwrap();
        let c = a.matmul(&b);
        prop_assert_eq!(run.output.l0, norms::csr_lp_pow(&c, PNorm::Zero));
        prop_assert_eq!(run.output.l1, norms::csr_lp_pow(&c, PNorm::ONE));
        prop_assert_eq!(run.output.linf.0, norms::csr_linf(&c).0);
    }

    #[test]
    fn linf_general_never_underestimates_badly((a, b) in csr_pair()) {
        let truth = norms::csr_linf(&a.matmul(&b)).0 as f64;
        let run = Session::new(a, b)
            .run_seeded(&LinfGeneral, &LinfGeneralParams::new(3), Seed(8))
            .unwrap();
        if truth == 0.0 {
            prop_assert!(run.output < 1.0);
        } else {
            // Sandwich with generous slack (random small instances).
            prop_assert!(run.output <= 10.0 * 3.0 * truth);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hh_general_reports_only_nonzero_entries((a, b) in csr_pair()) {
        let params = HhGeneralParams::new(1.0, 0.3, 0.15);
        let session = Session::new(a.clone(), b.clone());
        let run = session.run_seeded(&HhGeneral, &params, Seed(9)).unwrap();
        let c = a.matmul(&b);
        for p in &run.output.pairs {
            prop_assert!(
                c.get(p.row as usize, p.col) > 0,
                "reported ({}, {}) is zero in C",
                p.row,
                p.col
            );
        }
    }
}
