//! Section 6: every protocol family on rectangular shapes
//! (`A ∈ {0,1}^{m1×n}`, `B ∈ {0,1}^{n×m2}`), including degenerate ones,
//! each shape served by one multi-query [`Session`].

use mpest::prelude::*;

fn rect_pair(m1: usize, n: usize, m2: usize, d: f64, seed: u64) -> (BitMatrix, BitMatrix) {
    (
        Workloads::bernoulli_bits(m1, n, d, seed),
        Workloads::bernoulli_bits(n, m2, d, seed + 1),
    )
}

#[test]
fn wide_inner_dimension() {
    // Few sets over a huge universe: m << n.
    let (a, b) = rect_pair(12, 300, 16, 0.1, 1);
    let (ac, bc) = (a.to_csr(), b.to_csr());
    let c = ac.matmul(&bc);
    let session = Session::new(a, b);
    let truth = norms::csr_lp_pow(&c, PNorm::Zero);
    let run = session
        .run_seeded(&LpNorm, &LpParams::new(PNorm::Zero, 0.3), Seed(2))
        .unwrap();
    assert!((run.output - truth).abs() <= 0.5 * truth.max(4.0));
    let run = session.run_seeded(&ExactL1, &(), Seed(2)).unwrap();
    assert_eq!(run.output as f64, norms::csr_lp_pow(&c, PNorm::ONE));
}

#[test]
fn narrow_inner_dimension() {
    // Many sets over a tiny universe: m >> n, dense product.
    let (a, b) = rect_pair(200, 12, 180, 0.3, 3);
    let c = a.to_csr().matmul(&b.to_csr());
    let session = Session::new(a, b);
    let run = session.run_seeded(&SparseMatmul, &(), Seed(4)).unwrap();
    assert_eq!(run.output.reconstruct(200, 180), c);
    let (truth, _) = norms::csr_linf(&c);
    let run = session
        .run_seeded(&LinfBinary, &LinfBinaryParams::new(0.3), Seed(5))
        .unwrap();
    assert!(run.output.estimate >= truth as f64 / 3.0 && run.output.estimate <= 1.8 * truth as f64);
}

#[test]
fn single_row_and_column() {
    // Vector-matrix edge cases.
    let a = Workloads::bernoulli_bits(1, 64, 0.4, 6).to_csr();
    let b = Workloads::bernoulli_bits(64, 1, 0.4, 7).to_csr();
    let c = a.matmul(&b);
    let session = Session::new(a, b);
    let run = session.run_seeded(&ExactL1, &(), Seed(8)).unwrap();
    assert_eq!(run.output as f64, norms::csr_lp_pow(&c, PNorm::ONE));
    let run = session.run_seeded(&SparseMatmul, &(), Seed(9)).unwrap();
    assert_eq!(run.output.reconstruct(1, 1), c);
}

#[test]
fn heavy_hitters_on_rectangles() {
    let m1 = 40;
    let n = 120;
    let m2 = 28;
    let mut a = Workloads::bernoulli_bits(m1, n, 0.05, 10);
    let mut bt = Workloads::bernoulli_bits(m2, n, 0.05, 11);
    for k in 0..50 {
        a.set(7, k, true);
        bt.set(3, k, true);
    }
    let b = bt.transpose();
    let c = a.to_csr().matmul(&b.to_csr());
    let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
    let phi = ((c.get(7, 3) - 5) as f64 / l1).min(0.9);
    let session = Session::new(a, b);
    let mut hits = 0;
    for t in 0..7 {
        let run = session
            .run_seeded(
                &HhBinary,
                &HhBinaryParams::new(1.0, phi, (phi / 2.0).min(0.4)),
                Seed(100 + t),
            )
            .unwrap();
        if run.output.contains(7, 3) {
            hits += 1;
        }
    }
    assert!(hits >= 5, "rect HH planted recovery {hits}/7");
}

#[test]
fn sampling_on_rectangles() {
    let (a, b) = rect_pair(30, 90, 24, 0.12, 20);
    let c = a.to_csr().matmul(&b.to_csr());
    let session = Session::new(a, b);
    for t in 0..6 {
        if let MatrixSample::Sampled { row, col, value } = session
            .run_seeded(&L0Sample, &L0SampleParams::new(0.4), Seed(30 + t))
            .unwrap()
            .output
        {
            assert!(row < 30 && col < 24);
            assert_eq!(c.get(row as usize, col), value);
        }
        if let Some(s) = session
            .run_seeded(&L1Sampling, &(), Seed(40 + t))
            .unwrap()
            .output
        {
            assert!(s.row < 30 && s.col < 24 && s.witness < 90);
        }
    }
}

#[test]
fn kappa_protocols_on_rectangles() {
    let (a, b) = rect_pair(64, 150, 48, 0.15, 50);
    let truth = norms::csr_linf(&a.to_csr().matmul(&b.to_csr())).0 as f64;
    if truth == 0.0 {
        return;
    }
    let session = Session::new(a, b);
    let run = session
        .run_seeded(&LinfKappa, &LinfKappaParams::new(6.0), Seed(51))
        .unwrap();
    assert!(
        run.output.estimate <= 3.0 * 6.0 * truth,
        "kappa rect overshoot: {} vs {truth}",
        run.output.estimate
    );
    let run = session
        .run_seeded(&LinfGeneral, &LinfGeneralParams::new(4), Seed(52))
        .unwrap();
    assert!(run.output <= 8.0 * truth && run.output >= 0.3 * truth);
}
