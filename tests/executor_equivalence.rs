//! The executor contract: the fused single-thread backend and the
//! reference threaded backend are **bit-identical** — outputs *and*
//! transcripts — for every protocol, every seed, and every way of
//! selecting a backend (session default, per-query override, batch
//! plan). The fused executor re-runs yielded parties from scratch
//! (restart-based cooperative scheduling), so these tests are also the
//! determinism proof for that replay machinery over the real protocols.

use mpest::prelude::*;

fn pair() -> (BitMatrix, BitMatrix) {
    (
        Workloads::bernoulli_bits(20, 28, 0.3, 1),
        Workloads::bernoulli_bits(28, 20, 0.3, 2),
    )
}

/// Fused == threaded for all 14 protocols across 3 session seeds:
/// identical type-erased outputs and identical transcripts (record by
/// record — sender, round, label, and exact bit count).
#[test]
fn fused_matches_threaded_for_every_protocol_and_seed() {
    let (a, b) = pair();
    let requests = EstimateRequest::catalog();
    assert_eq!(requests.len(), 14, "one request per protocol");
    for session_seed in [3u64, 77, 1_000_003] {
        let session = Session::builder(a.clone(), b.clone())
            .seed(Seed(session_seed))
            .build();
        for (i, request) in requests.iter().enumerate() {
            let seed = session.query_seed(i as u64);
            let fused = session
                .estimate_seeded_on(request, seed, ExecBackend::Fused)
                .unwrap_or_else(|e| panic!("{} (fused, seed {session_seed}): {e}", request.name()));
            let threaded = session
                .estimate_seeded_on(request, seed, ExecBackend::Threaded)
                .unwrap_or_else(|e| {
                    panic!("{} (threaded, seed {session_seed}): {e}", request.name())
                });
            assert_eq!(
                fused.output,
                threaded.output,
                "{} output diverged under seed {session_seed}",
                request.name()
            );
            assert_eq!(
                fused.transcript.records,
                threaded.transcript.records,
                "{} transcript diverged under seed {session_seed}",
                request.name()
            );
        }
    }
}

/// The session-level default (fused) answers exactly like an explicitly
/// threaded session for the typed `run_seeded` path too.
#[test]
fn session_executor_choice_never_changes_results() {
    let (a, b) = pair();
    let fused_session = Session::builder(a.clone(), b.clone()).seed(Seed(9)).build();
    assert_eq!(fused_session.executor(), ExecBackend::Fused);
    let threaded_session = Session::builder(a, b)
        .seed(Seed(9))
        .executor(ExecBackend::Threaded)
        .build();
    assert_eq!(threaded_session.executor(), ExecBackend::Threaded);
    let params = LpParams::new(PNorm::Zero, 0.25);
    let fused = fused_session.run_seeded(&LpNorm, &params, Seed(5)).unwrap();
    let threaded = threaded_session
        .run_seeded(&LpNorm, &params, Seed(5))
        .unwrap();
    assert_eq!(fused.output.to_bits(), threaded.output.to_bits());
    assert_eq!(fused.transcript, threaded.transcript);
}

/// Fused under the engine: a batch pinned to a fused plan is
/// bit-identical at 1, 2, and 8 workers, and also identical to the
/// threaded engine run — per-query executors and cross-query
/// parallelism compose without touching determinism.
#[test]
fn fused_engine_is_deterministic_across_worker_counts() {
    let (a, b) = pair();
    let engine = Engine::new(Session::builder(a, b).seed(Seed(41)).build());
    // Two rounds of the full mix so workers genuinely interleave.
    let requests: Vec<EstimateRequest> = EstimateRequest::catalog()
        .into_iter()
        .cycle()
        .take(28)
        .collect();
    let reference = engine
        .run_batch(
            &requests,
            &BatchPlan::default()
                .with_workers(1)
                .with_executor(ExecBackend::Fused)
                .at_index(0),
        )
        .unwrap();
    for workers in [2usize, 8] {
        let batch = engine
            .run_batch(
                &requests,
                &BatchPlan::default()
                    .with_workers(workers)
                    .with_executor(ExecBackend::Fused)
                    .at_index(0),
            )
            .unwrap();
        assert_eq!(
            batch, reference,
            "fused batch diverged at {workers} workers"
        );
    }
    let threaded = engine
        .run_batch(
            &requests,
            &BatchPlan::default()
                .with_workers(2)
                .with_executor(ExecBackend::Threaded)
                .at_index(0),
        )
        .unwrap();
    assert_eq!(threaded, reference, "threaded batch diverged from fused");
}

/// A plan without an explicit executor inherits the session's choice.
#[test]
fn batch_plan_inherits_session_executor_by_default() {
    let (a, b) = pair();
    let session = Session::builder(a, b)
        .seed(Seed(13))
        .executor(ExecBackend::Threaded)
        .build();
    let plan = BatchPlan::default();
    assert_eq!(plan.effective_executor(&session), ExecBackend::Threaded);
    assert_eq!(
        plan.with_executor(ExecBackend::Fused)
            .effective_executor(&session),
        ExecBackend::Fused
    );
}

/// Error reporting is backend-independent: a protocol-level validation
/// error (binary protocol over a non-binary pair) surfaces identically.
#[test]
fn errors_match_across_backends() {
    let a = CsrMatrix::from_triplets(4, 4, vec![(0, 0, 3), (1, 2, 2)]);
    let b = CsrMatrix::from_triplets(4, 4, vec![(2, 1, 5)]);
    let session = Session::new(a, b);
    let request = EstimateRequest::LinfBinary { eps: 0.3 };
    let fused = session
        .estimate_seeded_on(&request, Seed(1), ExecBackend::Fused)
        .unwrap_err();
    let threaded = session
        .estimate_seeded_on(&request, Seed(1), ExecBackend::Threaded)
        .unwrap_err();
    assert_eq!(fused, threaded);
}
