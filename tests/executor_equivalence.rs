//! The executor contract: the fused single-thread backend and the
//! reference threaded backend are **bit-identical** — outputs *and*
//! transcripts — for every protocol, every seed, and every way of
//! selecting a backend (session default, per-query override, batch
//! plan). The fused executor re-runs yielded parties from scratch
//! (restart-based cooperative scheduling), so these tests are also the
//! determinism proof for that replay machinery over the real protocols.

use mpest::prelude::*;

fn pair() -> (BitMatrix, BitMatrix) {
    (
        Workloads::bernoulli_bits(20, 28, 0.3, 1),
        Workloads::bernoulli_bits(28, 20, 0.3, 2),
    )
}

/// Fused == threaded for all 14 protocols across 3 session seeds:
/// identical type-erased outputs and identical transcripts (record by
/// record — sender, round, label, and exact bit count).
#[test]
fn fused_matches_threaded_for_every_protocol_and_seed() {
    let (a, b) = pair();
    let requests = EstimateRequest::catalog();
    assert_eq!(requests.len(), 14, "one request per protocol");
    for session_seed in [3u64, 77, 1_000_003] {
        let session = Session::builder(a.clone(), b.clone())
            .seed(Seed(session_seed))
            .build();
        for (i, request) in requests.iter().enumerate() {
            let seed = session.query_seed(i as u64);
            let fused = session
                .estimate_seeded_on(request, seed, ExecBackend::Fused)
                .unwrap_or_else(|e| panic!("{} (fused, seed {session_seed}): {e}", request.name()));
            let threaded = session
                .estimate_seeded_on(request, seed, ExecBackend::Threaded)
                .unwrap_or_else(|e| {
                    panic!("{} (threaded, seed {session_seed}): {e}", request.name())
                });
            assert_eq!(
                fused.output,
                threaded.output,
                "{} output diverged under seed {session_seed}",
                request.name()
            );
            assert_eq!(
                fused.transcript.records,
                threaded.transcript.records,
                "{} transcript diverged under seed {session_seed}",
                request.name()
            );
        }
    }
}

/// The session-level default (fused) answers exactly like an explicitly
/// threaded session for the typed `run_seeded` path too.
#[test]
fn session_executor_choice_never_changes_results() {
    let (a, b) = pair();
    let fused_session = Session::builder(a.clone(), b.clone()).seed(Seed(9)).build();
    assert_eq!(fused_session.executor(), ExecBackend::Fused);
    let threaded_session = Session::builder(a, b)
        .seed(Seed(9))
        .executor(ExecBackend::Threaded)
        .build();
    assert_eq!(threaded_session.executor(), ExecBackend::Threaded);
    let params = LpParams::new(PNorm::Zero, 0.25);
    let fused = fused_session.run_seeded(&LpNorm, &params, Seed(5)).unwrap();
    let threaded = threaded_session
        .run_seeded(&LpNorm, &params, Seed(5))
        .unwrap();
    assert_eq!(fused.output.to_bits(), threaded.output.to_bits());
    assert_eq!(fused.transcript, threaded.transcript);
}

/// Fused under the engine: a batch pinned to a fused plan is
/// bit-identical at 1, 2, and 8 workers, and also identical to the
/// threaded engine run — per-query executors and cross-query
/// parallelism compose without touching determinism.
#[test]
fn fused_engine_is_deterministic_across_worker_counts() {
    let (a, b) = pair();
    let engine = Engine::new(Session::builder(a, b).seed(Seed(41)).build());
    // Two rounds of the full mix so workers genuinely interleave.
    let requests: Vec<EstimateRequest> = EstimateRequest::catalog()
        .into_iter()
        .cycle()
        .take(28)
        .collect();
    let reference = engine
        .run_batch(
            &requests,
            &BatchPlan::default()
                .with_workers(1)
                .with_executor(ExecBackend::Fused)
                .at_index(0),
        )
        .unwrap();
    for workers in [2usize, 8] {
        let batch = engine
            .run_batch(
                &requests,
                &BatchPlan::default()
                    .with_workers(workers)
                    .with_executor(ExecBackend::Fused)
                    .at_index(0),
            )
            .unwrap();
        assert_eq!(
            batch, reference,
            "fused batch diverged at {workers} workers"
        );
    }
    let threaded = engine
        .run_batch(
            &requests,
            &BatchPlan::default()
                .with_workers(2)
                .with_executor(ExecBackend::Threaded)
                .at_index(0),
        )
        .unwrap();
    assert_eq!(threaded, reference, "threaded batch diverged from fused");
}

/// A plan without an explicit executor inherits the session's choice.
#[test]
fn batch_plan_inherits_session_executor_by_default() {
    let (a, b) = pair();
    let session = Session::builder(a, b)
        .seed(Seed(13))
        .executor(ExecBackend::Threaded)
        .build();
    let plan = BatchPlan::default();
    assert_eq!(plan.effective_executor(&session), ExecBackend::Threaded);
    assert_eq!(
        plan.with_executor(ExecBackend::Fused)
            .effective_executor(&session),
        ExecBackend::Fused
    );
}

/// FNV-1a over a report's exact wire encoding: any change to outputs,
/// transcript accounting, or encodings moves the fingerprint.
fn fp(report: &EstimateReport) -> u64 {
    use mpest_comm::{BitWriter, Wire};
    let mut w = BitWriter::new();
    report.encode(&mut w);
    let (bytes, _) = w.finish();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes.as_ref() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Protocol outputs are pinned to the pre-kernel scalar implementation:
/// these fingerprints were captured on the seed build, before the
/// memoized/vectorized sketch kernels and the session sketch cache
/// landed. Every protocol under two session seeds must still produce
/// byte-identical reports — the fast kernels are an implementation
/// detail, never a behavior change.
#[test]
fn reports_match_pre_kernel_golden_corpus() {
    let golden: [(u64, [u64; 14]); 2] = [
        (
            3,
            [
                0x7b74496eb38ab48c,
                0xe2ba41bb014b1a73,
                0x58f18743fa048e79,
                0xa4525ab096e70127,
                0xcbedc05a4ebf0fc2,
                0x99cd31c6723049d9,
                0xa2a3b2522ce14372,
                0x1e5e7a4d821bce8a,
                0x8055d15d1fa01907,
                0x0125878a1646f047,
                0x5d8cae001274f5d7,
                0x2d0804f0976c6b25,
                0x6319b29dbaf94ea3,
                0x3cc83c809f79b3d8,
            ],
        ),
        (
            77,
            [
                0x7b74496eb38ab48c,
                0xcb9e8e3a0a0d655b,
                0x58f18743fa048e79,
                0xdf77f69526ddfc9f,
                0xd4b05d8719f615ca,
                0x99cd31c6723049d9,
                0x502ed3da151e0665,
                0x048b5752881958ca,
                0xb91e4e6d10de9b62,
                0x0125878a1646f047,
                0xfe46b86623ef81ff,
                0x2d0804f0976c6b25,
                0x6319b29dbaf94ea3,
                0x3cc83c809f79b3d8,
            ],
        ),
    ];
    let (a, b) = pair();
    let requests = EstimateRequest::catalog();
    for (session_seed, want) in golden {
        let session = Session::builder(a.clone(), b.clone())
            .seed(Seed(session_seed))
            .build();
        for (i, (request, want)) in requests.iter().zip(want).enumerate() {
            let report = session
                .estimate_seeded(request, session.query_seed(i as u64))
                .unwrap_or_else(|e| panic!("{} (seed {session_seed}): {e}", request.name()));
            assert_eq!(
                fp(&report),
                want,
                "{} report diverged from the seed-build corpus under session seed {session_seed}",
                request.name()
            );
        }
    }
}

/// Error reporting is backend-independent: a protocol-level validation
/// error (binary protocol over a non-binary pair) surfaces identically.
#[test]
fn errors_match_across_backends() {
    let a = CsrMatrix::from_triplets(4, 4, vec![(0, 0, 3), (1, 2, 2)]);
    let b = CsrMatrix::from_triplets(4, 4, vec![(2, 1, 5)]);
    let session = Session::new(a, b);
    let request = EstimateRequest::LinfBinary { eps: 0.3 };
    let fused = session
        .estimate_seeded_on(&request, Seed(1), ExecBackend::Fused)
        .unwrap_err();
    let threaded = session
        .estimate_seeded_on(&request, Seed(1), ExecBackend::Threaded)
        .unwrap_err();
    assert_eq!(fused, threaded);
}
