//! Tier-1 statistical-guarantee suite: the Monte-Carlo harness
//! (`mpest-verify`) at a reduced trial count, gating every protocol's
//! empirical failure rate, error quantiles, heavy-hitter
//! precision/recall, and sampler total-variation distance against its
//! [`GuaranteeSpec`] — plus the byte-determinism regression for the
//! `BENCH_accuracy.json` aggregation.
//!
//! Everything here is seeded and deterministic: a failure is a real
//! regression (an estimator drifted, a sampler got biased, a contract
//! got broken), never a flake.

use mpest::prelude::*;
use mpest_bench::accuracy::AccuracyBench;

/// The reduced-trial configuration: quick-scale matrices, enough trials
/// per cell that the failure-rate gates mean something, small enough
/// that the suite stays fast in debug builds.
fn reduced() -> VerifyConfig {
    VerifyConfig::quick().with_trials(24)
}

/// The reduced sweep, run once and shared by the tests in this binary
/// (it is deterministic, so sharing loses nothing).
fn reduced_report() -> &'static VerifyReport {
    static REPORT: std::sync::OnceLock<VerifyReport> = std::sync::OnceLock::new();
    REPORT.get_or_init(|| mpest::verify::verify(&reduced()))
}

#[test]
fn every_protocol_satisfies_its_guarantee_spec() {
    let report = reduced_report();
    // All 14 protocols appear (across the workloads each can serve).
    let covered: std::collections::BTreeSet<&str> = report
        .verdicts
        .iter()
        .map(|v| v.protocol.as_str())
        .collect();
    for req in EstimateRequest::catalog() {
        assert!(
            covered.contains(req.name()),
            "protocol {} never verified",
            req.name()
        );
    }
    assert!(
        report.all_pass(),
        "statistical-guarantee violations:\n{}",
        report.summary()
    );
    // Exact protocols must be *perfect*, not just within delta.
    for v in &report.verdicts {
        if v.delta == 0.0 {
            assert_eq!(
                v.failures, 0,
                "{} on {} is contracted exact but failed trials",
                v.protocol, v.workload
            );
        }
    }
    // The samplers' distributional checks actually ran.
    assert!(
        report
            .verdicts
            .iter()
            .any(|v| v.workload == "tiny-sampler" && v.tv.is_some()),
        "total-variation cells missing"
    );
}

#[test]
fn scalar_protocols_report_error_quantiles() {
    let report = reduced_report();
    for v in &report.verdicts {
        let scalar = matches!(
            v.protocol.as_str(),
            "lp" | "lp-baseline"
                | "exact-l1"
                | "linf-binary"
                | "linf-kappa"
                | "linf-general"
                | "trivial-binary"
                | "trivial-csr"
        );
        if scalar {
            let q = v
                .rel_error
                .unwrap_or_else(|| panic!("{} on {} lacks quantiles", v.protocol, v.workload));
            assert!(
                q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.max,
                "{} on {}: quantiles not monotone",
                v.protocol,
                v.workload
            );
        }
        let set_valued = matches!(
            v.protocol.as_str(),
            "hh-general" | "hh-binary" | "at-least-t-join"
        );
        if set_valued {
            let sq = v.set_quality.unwrap_or_else(|| {
                panic!("{} on {} lacks precision/recall", v.protocol, v.workload)
            });
            assert!((0.0..=1.0).contains(&sq.precision));
            assert!((0.0..=1.0).contains(&sq.recall));
        }
        assert!(
            v.mean_bits > 0.0,
            "{} on {}: no bits",
            v.protocol,
            v.workload
        );
        assert!(v.max_rounds >= 1);
    }
}

#[test]
fn accuracy_bench_json_is_well_formed() {
    let bench = AccuracyBench {
        report: reduced_report().clone(),
    };
    assert!(bench.all_pass(), "{}", bench.summary());
    let json = bench.to_json();
    // Structural validity: balanced nesting, the sections the CI
    // artifact consumers rely on, per-protocol quantiles, and
    // communication-vs-accuracy points.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"bench\": \"accuracy\""));
    assert!(json.contains("\"all_pass\": true"));
    assert!(json.contains("\"rel_error\": {\"p50\""));
    assert!(json.contains("\"comm_vs_accuracy\": ["));
    assert!(json.contains("\"p90_rel_error\""));
    for req in EstimateRequest::catalog() {
        assert!(
            json.contains(&format!("\"protocol\": \"{}\"", req.name())),
            "{} missing from the JSON",
            req.name()
        );
    }
    for workload in [
        "dense-square",
        "sparse-wide",
        "power-law",
        "adversarial-skew",
        "integer-rect",
        "tiny-sampler",
    ] {
        assert!(
            json.contains(&format!("\"workload\": \"{workload}\"")),
            "{workload} missing from the JSON"
        );
    }
}

#[test]
fn seed_sweep_aggregation_is_byte_deterministic() {
    // The regression the CI artifact depends on: for any fixed trial
    // seed, two full runs of the sweep + aggregation + JSON rendering
    // produce identical bytes — on disk, not just in memory.
    let small = |seed: u64| {
        VerifyConfig::quick()
            .with_trials(6)
            .with_seed(seed)
            .with_protocols(vec![
                "lp".into(),
                "exact-l1".into(),
                "hh-binary".into(),
                "l0-sample".into(),
            ])
    };
    // Per-process-unique directory: concurrent test runs must not race
    // on each other's files.
    let dir = std::env::temp_dir().join(format!("mpest-seed-sweep-{}", std::process::id()));
    let mut jsons = Vec::new();
    for seed in [1u64, 42, 0x5eed_acc1] {
        let first = AccuracyBench {
            report: mpest::verify::verify(&small(seed)),
        };
        let second = AccuracyBench {
            report: mpest::verify::verify(&small(seed)),
        };
        let p1 = dir.join(format!("run1-{seed}.json"));
        let p2 = dir.join(format!("run2-{seed}.json"));
        first.save_json(&p1).unwrap();
        second.save_json(&p2).unwrap();
        let b1 = std::fs::read(&p1).unwrap();
        let b2 = std::fs::read(&p2).unwrap();
        assert_eq!(b1, b2, "seed {seed}: file bytes differ across runs");
        assert!(!b1.is_empty());
        jsons.push(String::from_utf8(b1).unwrap());
    }
    // Different seeds draw different trials; the trajectories must not
    // be accidentally seed-independent (that would mean the seed is
    // ignored and the sweep isn't actually Monte-Carlo).
    assert!(
        jsons[0] != jsons[1] || jsons[1] != jsons[2],
        "three different seeds produced identical trajectories"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
