//! The paper's motivating scenario (Section 1.1): job matching.
//!
//! A staffing service (Alice) holds `n` applicants, each with a set of
//! skills `A_i ⊆ [u]`; a job board (Bob) holds `n` postings, each with a
//! required-skill set `B_j`. A pair `(i, j)` *matches* when
//! `A_i ∩ B_j ≠ ∅`; the match is *strong* when the overlap is large.
//! The two services want market statistics without shipping their
//! databases to each other:
//!
//! * the number of matches = `‖AB‖₀` (set-intersection join size);
//! * the total skill-overlap mass = `‖AB‖₁` (natural join size);
//! * the best applicant–job fit = `‖AB‖∞`;
//! * all strong fits = heavy hitters;
//! * a uniformly random match (for auditing) = `ℓ0`-sample.
//!
//! One [`Session`] over the two relations serves every market query.
//!
//! Run with: `cargo run --release --example job_matching`

use mpest::prelude::*;

fn main() {
    let applicants = 150;
    let jobs = 150;
    let skills = 400; // the shared skill universe
    let seed = Seed(2024);

    // Skill popularity is heavy-tailed: a few skills (e.g. "SQL") appear
    // everywhere, most are niche — the classic Zipf workload.
    let applicant_skills = Workloads::zipf_sets(applicants, skills, 12, 1.1, 7);
    let mut job_requirements_t = Workloads::zipf_sets(jobs, skills, 8, 1.1, 8);
    // Plant one outstanding fit: applicant 17 has everything job 42 wants.
    for s in 0..30 {
        job_requirements_t.set(42, s * 13 % skills, true);
    }
    let mut applicant_skills = applicant_skills;
    for s in 0..skills {
        if job_requirements_t.get(42, s) {
            applicant_skills.set(17, s, true);
        }
    }

    let a = applicant_skills; // rows = applicants' skill sets
    let b = job_requirements_t.transpose(); // columns = jobs' requirement sets
    let a_csr = a.to_csr();
    let b_csr = b.to_csr();
    let c = a_csr.matmul(&b_csr);
    let session = Session::builder(a.clone(), b.clone()).seed(seed).build();

    println!("== job matching: {applicants} applicants x {jobs} jobs over {skills} skills ==\n");

    // How many applicant-job pairs match at all? (query-optimizer style
    // cardinality estimate: 2 rounds, tiny communication)
    let matches_truth = norms::csr_lp_pow(&c, PNorm::Zero);
    let run = session
        .run_seeded(&LpNorm, &LpParams::new(PNorm::Zero, 0.2), seed)
        .unwrap();
    let baseline = session
        .run_seeded(&LpBaseline, &BaselineParams::new(PNorm::Zero, 0.2), seed)
        .unwrap();
    println!(
        "matching pairs:  ≈{:>8.0}  (truth {:>8.0})  [{} bits; one-round baseline needs {}]",
        run.output,
        matches_truth,
        run.bits(),
        baseline.bits()
    );

    // Who is the single best fit? (Algorithm 2, factor 2+eps)
    let (best_truth, (bi, bj)) = stats::linf_of_product_binary(&a, &b);
    let run = session
        .run_seeded(&LinfBinary, &LinfBinaryParams::new(0.25), seed)
        .unwrap();
    println!(
        "best fit:        ≈{:>8.1}  (truth {best_truth} = applicant {bi} for job {bj})  [{} bits]",
        run.output.estimate,
        run.bits()
    );

    // All strong fits: overlap at least ~2/3 of the best.
    let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
    let phi = (best_truth as f64 * 0.66) / l1;
    let run = session
        .run_seeded(&HhBinary, &HhBinaryParams::new(1.0, phi, phi / 2.0), seed)
        .unwrap();
    let mut strong: Vec<(u32, u32)> = run.output.positions();
    strong.truncate(10);
    println!(
        "strong fits:     {:?}{}  [{} bits]",
        strong,
        if run.output.pairs.len() > 10 {
            " ..."
        } else {
            ""
        },
        run.bits()
    );
    assert!(
        run.output.contains(bi, bj),
        "the best pair must be among the strong fits"
    );

    // Audit: draw a uniformly random matching pair.
    let run = session
        .run_seeded(&L0Sample, &L0SampleParams::new(0.3), seed)
        .unwrap();
    match run.output {
        MatrixSample::Sampled { row, col, value } => println!(
            "random match:    applicant {row} / job {col} (overlap {value})  [{} bits]",
            run.bits()
        ),
        other => println!("random match:    {other:?}"),
    }

    // And a witness-bearing sample: which shared skill made the match?
    let run = session.run_seeded(&L1Sampling, &(), seed).unwrap();
    if let Some(s) = run.output {
        println!(
            "witnessed match: applicant {} / job {} via skill {}  [{} bits]",
            s.row,
            s.col,
            s.witness,
            run.bits()
        );
    }
}
