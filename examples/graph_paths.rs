//! Two-hop path statistics over a federated graph.
//!
//! Alice holds the adjacency of layer 1 (e.g. follower edges inside her
//! datacenter), Bob holds layer 2. The product `C = A·B` counts two-hop
//! paths: `C_{i,j}` = number of length-2 paths `i → k → j`. The paper's
//! protocols answer the classic graph questions without moving either
//! edge set:
//!
//! * how many ordered pairs are two-hop connected? — `‖C‖₀`;
//! * how many two-hop paths exist in total? — `‖C‖₁` (exact, Remark 2);
//! * which pair has the most parallel two-hop routes? — `‖C‖∞`;
//! * sample a random two-hop path *with its midpoint* — `ℓ1`-sampling
//!   (Remark 3), whose witness is exactly the midpoint `k`.
//!
//! All queries flow through one [`Session`] over the two layers.
//!
//! Run with: `cargo run --release --example graph_paths`

use mpest::prelude::*;

fn main() {
    let n = 180;
    let seed = Seed(99);

    // Layer 1: preferential-attachment-ish out-edges (Zipf targets).
    // Layer 2: a sparser uniform layer plus a "hub" vertex.
    let a = Workloads::zipf_sets(n, n, 9, 1.0, 11); // i -> set of k
    let mut b = Workloads::bernoulli_bits(n, n, 0.03, 12); // k -> set of j
    for k in 0..n {
        if k % 7 == 0 {
            b.set(k, 5, true); // vertex 5 is popular in layer 2
        }
    }
    let (ac, bc) = (a.to_csr(), b.to_csr());
    let c = ac.matmul(&bc);
    let session = Session::builder(ac, bc).seed(seed).build();

    println!("== two-hop analytics over a federated {n}-vertex graph ==\n");

    let pairs_truth = norms::csr_lp_pow(&c, PNorm::Zero);
    let run = session
        .run(&LpNorm, &LpParams::new(PNorm::Zero, 0.2))
        .unwrap();
    println!(
        "two-hop connected pairs: ≈{:>9.0} (truth {pairs_truth:.0})  [{} bits, {} rounds]",
        run.output,
        run.bits(),
        run.rounds()
    );

    let run = session.run(&ExactL1, &()).unwrap();
    println!(
        "total two-hop paths:      {:>9}  (exact)          [{} bits, 1 round]",
        run.output,
        run.bits()
    );

    let (most_truth, (pi, pj)) = stats::linf_of_product_binary(&a, &b);
    let run = session
        .run(&LinfBinary, &LinfBinaryParams::new(0.3))
        .unwrap();
    println!(
        "most parallel routes:    ≈{:>9.1} (truth {most_truth} for {pi}→·→{pj})  [{} bits]",
        run.output.estimate,
        run.bits()
    );

    // A random path with its midpoint, in one round.
    let run = session.run(&L1Sampling, &()).unwrap();
    match run.output {
        Some(s) => println!(
            "random two-hop path:      {} → {} → {}   [{} bits, 1 round]",
            s.row,
            s.witness,
            s.col,
            run.bits()
        ),
        None => println!("random two-hop path:      (graph has no two-hop paths)"),
    }

    // Distribution check the cheap way: repeat the sampler and confirm the
    // hub vertex 5 shows up as a destination far more often than average.
    let mut hub_hits = 0u32;
    let trials = 300;
    for t in 0..trials {
        if let Some(s) = session
            .run_seeded(&L1Sampling, &(), Seed(1000 + t))
            .unwrap()
            .output
        {
            if s.col == 5 {
                hub_hits += 1;
            }
        }
    }
    let hub_mass =
        (0..n).map(|i| c.get(i, 5) as f64).sum::<f64>() / norms::csr_lp_pow(&c, PNorm::ONE);
    println!(
        "\nhub check: vertex 5 drew {hub_hits}/{trials} samples (its true path mass is {:.1}%)",
        100.0 * hub_mass
    );
}
