//! Batch throughput: serve a mixed-protocol query stream with the
//! parallel [`Engine`] instead of one [`Session`] query at a time.
//!
//! One matrix pair, many heterogeneous queries — norm estimates, heavy
//! hitters, and support/`ℓ1` samples interleaved, the shape of a
//! production query log. The engine fans the batch out over a worker
//! pool; every worker shares the session's cached derived views, and
//! the results are *bit-identical* to running the queries sequentially
//! (same seeds, same transcripts), so parallelism is purely a
//! throughput knob.
//!
//! Run with: `cargo run --release --example batch_throughput`

use mpest::prelude::*;
use std::time::Instant;

fn main() {
    let n = 128;
    let a = Workloads::bernoulli_bits(n, n, 0.12, 31);
    let b = Workloads::bernoulli_bits(n, n, 0.12, 32);

    // The query mix: every protocol family, interleaved.
    let mix = [
        EstimateRequest::LpNorm {
            p: PNorm::Zero,
            eps: 0.25,
        },
        EstimateRequest::HhBinary {
            p: 1.0,
            phi: 0.05,
            eps: 0.02,
        },
        EstimateRequest::L0Sample { eps: 0.3 },
        EstimateRequest::LpNorm {
            p: PNorm::ONE,
            eps: 0.25,
        },
        EstimateRequest::ExactL1,
        EstimateRequest::L1Sample,
        EstimateRequest::LinfBinary { eps: 0.3 },
        EstimateRequest::SparseMatmul,
    ];
    let requests: Vec<EstimateRequest> = (0..64).map(|i| mix[i % mix.len()].clone()).collect();

    println!(
        "== batch of {} mixed queries over one {n}x{n} pair ==\n",
        requests.len()
    );

    // Sequential baseline: one session, one query at a time.
    let session = Session::builder(a.clone(), b.clone()).seed(Seed(7)).build();
    let start = Instant::now();
    let sequential: Vec<EstimateReport> = requests
        .iter()
        .enumerate()
        .map(|(i, req)| {
            session
                .estimate_seeded(req, session.query_seed(i as u64))
                .unwrap()
        })
        .collect();
    let seq_secs = start.elapsed().as_secs_f64();
    println!(
        "sequential session : {seq_secs:.3}s  ({:.1} queries/s)",
        requests.len() as f64 / seq_secs
    );

    // The engine: same session semantics, fanned out over workers.
    let engine = Engine::new(Session::builder(a, b).seed(Seed(7)).build());
    for workers in [1, 2, 4, 8] {
        let plan = BatchPlan::default().with_workers(workers).at_index(0);
        let start = Instant::now();
        let batch = engine.run_batch(&requests, &plan).unwrap();
        let secs = start.elapsed().as_secs_f64();
        println!(
            "engine, {workers} worker(s): {secs:.3}s  ({:.1} queries/s, {:.2}x)  bit-identical: {}",
            requests.len() as f64 / secs,
            seq_secs / secs,
            batch.reports == sequential
        );
    }

    // Aggregate accounting comes with the batch.
    let batch = engine
        .run_batch(&requests, &BatchPlan::default().at_index(0))
        .unwrap();
    let acc = &batch.accounting;
    println!("\naggregate: {acc}");
    println!("mean bits/query: {:.0}", acc.mean_bits());
    let mut by_label: Vec<_> = acc.bits_by_label.iter().collect();
    by_label.sort_by_key(|(_, &bits)| std::cmp::Reverse(bits));
    println!("top message labels by volume:");
    for (label, bits) in by_label.into_iter().take(5) {
        println!("  {bits:>12} bits  {label}");
    }
}
