//! Remote quickstart: the same estimation three ways — in-process,
//! against a remote party over a real socket, and through the serving
//! daemon — all bit-identical.
//!
//! ```text
//! cargo run --release --example remote_quickstart
//! ```
//!
//! In a real deployment the party host and the daemon are separate
//! processes (`mpest party --listen`, `mpest serve`); this example
//! spawns them as threads on loopback ports so it is self-contained,
//! but every protocol byte still crosses a genuine TCP socket.

use mpest::net::{run_with_party, PartyHost, ServeClient, Server};
use mpest::prelude::*;
use std::sync::Arc;

fn main() {
    // Two relations: rows of A are Alice's sets, columns of B are Bob's.
    let a = Workloads::bernoulli_bits(96, 128, 0.15, 1);
    let b = Workloads::bernoulli_bits(128, 96, 0.15, 2);
    let session = Session::builder(a.clone(), b.clone()).seed(Seed(7)).build();
    let request = EstimateRequest::LpNorm {
        p: PNorm::Zero,
        eps: 0.25,
    };
    let seed = Seed(42);

    // 1. In-process (the fused executor): logical bits only.
    let local = session.estimate_seeded(&request, seed).unwrap();
    println!(
        "in-process : ||AB||_0 ≈ {:.0}  ({} logical bits, {} rounds)",
        local.output.as_scalar().unwrap(),
        local.bits(),
        local.rounds()
    );

    // 2. Remote party: Bob lives behind a TCP socket; every protocol
    //    message is a framed wire write. Output and transcript are
    //    bit-identical to the in-process run.
    let host = PartyHost::spawn(
        "127.0.0.1:0",
        Arc::new(Session::builder(a.clone(), b.clone()).seed(Seed(7)).build()),
        Party::Bob,
    )
    .expect("bind party host");
    let (remote, bytes_out, bytes_in) = run_with_party(
        &host.addr().to_string(),
        &session,
        Party::Alice,
        &request,
        seed,
    )
    .expect("remote run");
    assert_eq!(remote, local, "remote == local, bit for bit");
    println!(
        "remote     : identical report; real wire cost {} B out + {} B in \
         (logical payload {} B — the rest is framing)",
        bytes_out,
        bytes_in,
        local.bits().div_ceil(8)
    );
    host.shutdown();

    // 3. The serving daemon: fingerprint-keyed session cache, many
    //    clients, explicit seeds for reproducibility.
    let server = Server::spawn("127.0.0.1:0", 0).expect("bind server");
    let mut client = ServeClient::connect(&server.addr().to_string()).expect("connect");
    let (a_csr, b_csr) = (a.to_csr(), b.to_csr());
    let first = client
        .query(&a_csr, &b_csr, &[(seed.0, request.clone())])
        .expect("first query");
    assert_eq!(first.reports.reports[0], local);
    let second = client
        .query(&a_csr, &b_csr, &[(seed.0, request)])
        .expect("second query");
    assert!(second.reports.cache_hit, "pair uploaded exactly once");
    assert_eq!(second.reports.reports[0], local);
    println!(
        "served     : identical report; upload-then-cache ({} B first query, {} B once cached)",
        first.bytes_out + first.bytes_in,
        second.bytes_out + second.bytes_in,
    );
    let stats = client.stats().expect("stats");
    println!(
        "daemon     : {} request(s) served, {} cached session(s), {} logical bits, \
         {} wire bytes in / {} out",
        stats.queries, stats.sessions, stats.accounting.total_bits, stats.wire_in, stats.wire_out
    );
    server.shutdown();
}
