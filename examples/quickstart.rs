//! Quickstart: estimate every statistic of a distributed matrix product.
//!
//! Alice holds `A`, Bob holds `B`; nobody ever materializes both. One
//! [`Session`] owns the pair and serves every query below — dimensions
//! are validated once, derived state (CSR/bit views, transposes, norm
//! tables) is cached across queries, and each query gets its own
//! deterministically derived seed. Each protocol reports its answer, the
//! exact ground truth (computed centrally for comparison only), and the
//! exact number of bits and rounds it used.
//!
//! Run with: `cargo run --release --example quickstart`

use mpest::prelude::*;

fn main() {
    let n = 128;

    // A pair of relations with a planted heavy pair (3, 7).
    let (a_bits, b_bits, _) = Workloads::planted_pairs(n, n, 0.08, &[(3, 7)], 64, 9);
    let c = a_bits.to_csr().matmul(&b_bits.to_csr());

    // The session: one pair, many queries, seeds derived from Seed(42).
    let session = Session::builder(a_bits.clone(), b_bits.clone())
        .seed(Seed(42))
        .build();

    println!("== mpest quickstart: A is {n}x{n} at Alice, B is {n}x{n} at Bob ==\n");

    // --- lp norms, p in [0, 2] (Algorithm 1: 2 rounds, O~(n/eps)) ---
    for (p, name) in [
        (PNorm::Zero, "||AB||_0 (set-intersection join size)"),
        (PNorm::ONE, "||AB||_1 (natural join size)"),
        (PNorm::TWO, "||AB||_2^2 (Frobenius^2)"),
    ] {
        let truth = norms::csr_lp_pow(&c, p);
        let run = session.run(&LpNorm, &LpParams::new(p, 0.2)).unwrap();
        println!(
            "{name}\n  estimate {:>12.0}   truth {:>12.0}   error {:>5.1}%   [{} bits, {} rounds]",
            run.output,
            truth,
            100.0 * (run.output - truth).abs() / truth.max(1.0),
            run.bits(),
            run.rounds()
        );
    }

    // --- exact l1 (Remark 2: 1 round, O(n log n)) ---
    let run = session.run(&ExactL1, &()).unwrap();
    println!(
        "exact ||AB||_1 (Remark 2)\n  value    {:>12}   [{} bits, {} rounds]",
        run.output,
        run.bits(),
        run.rounds()
    );

    // --- l-infinity (Algorithm 2: 3 rounds, O~(n^1.5/eps), factor 2+eps) ---
    let (linf_truth, argmax) = stats::linf_of_product_binary(&a_bits, &b_bits);
    let run = session
        .run(&LinfBinary, &LinfBinaryParams::new(0.25))
        .unwrap();
    println!(
        "||AB||_inf (Algorithm 2, 2+eps approx)\n  estimate {:>12.1}   truth {linf_truth} at {argmax:?}   [{} bits, {} rounds]",
        run.output.estimate,
        run.bits(),
        run.rounds()
    );

    // --- heavy hitters (Theorem 5.3: O(1) rounds, O~(n + phi/eps^2)) ---
    let l1 = norms::csr_lp_pow(&c, PNorm::ONE);
    let phi = (linf_truth as f64 - 8.0) / l1;
    let hh_params = HhBinaryParams::new(1.0, phi, phi / 2.0);
    let run = session.run(&HhBinary, &hh_params).unwrap();
    println!(
        "heavy hitters (phi={phi:.4}, eps={:.4})\n  reported {:?}   [{} bits, {} rounds]",
        hh_params.eps,
        run.output.positions(),
        run.bits(),
        run.rounds()
    );

    // --- l0 sampling (Theorem 3.2: 1 round, O~(n/eps^2)) ---
    let run = session.run(&L0Sample, &L0SampleParams::new(0.3)).unwrap();
    println!(
        "l0-sample (uniform nonzero of AB)\n  sample   {:?}   [{} bits, {} rounds]",
        run.output,
        run.bits(),
        run.rounds()
    );

    // --- median boosting (Theorem 3.1's "standard median trick") ---
    let params = LpParams::new(PNorm::ONE, 0.3);
    let run =
        boost::median_boost(5, Seed(42), |s| session.run_seeded(&LpNorm, &params, s)).unwrap();
    let truth = norms::csr_lp_pow(&c, PNorm::ONE);
    println!(
        "median of 5 copies (p=1)\n  estimate {:>12.0}   truth {:>12.0}   [{} bits, still {} rounds]",
        run.output,
        truth,
        run.bits(),
        run.rounds()
    );

    // --- the same protocols as plain-data requests (dynamic dispatch) ---
    let report = session
        .estimate(&EstimateRequest::LpNorm {
            p: PNorm::Zero,
            eps: 0.2,
        })
        .unwrap();
    println!(
        "as a queued request: {} -> {:.0}   [{} bits, {} rounds]",
        report.protocol,
        report.output.as_scalar().unwrap_or(f64::NAN),
        report.bits(),
        report.rounds()
    );

    // --- the trivial baseline for scale ---
    let run = session.run(&TrivialBinary, &()).unwrap();
    println!(
        "\ntrivial baseline (ship all of A): {} bits.\n\
         The l1/linf/HH protocols already beat it at n={n}; the sketch-based\n\
         lp/l0-sampling protocols pay a fixed O~(1/eps^2)-word-per-row sketch\n\
         overhead and overtake the n^2 baseline only at larger n — their point\n\
         here is the *scaling*: O~(n/eps) vs O~(n/eps^2) vs n^2 (see the bench\n\
         harness for fitted exponents).",
        run.bits()
    );
}
