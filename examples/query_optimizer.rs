//! Join-size estimation for query optimization (Section 1.1).
//!
//! A federated query `R(X,Y) ⋈ S(Y,Z) ⋈ T(Z,W)` must pick a join order.
//! `R` lives at site Alice; `S` and `T` at site Bob. The optimizer wants
//! `|R ⋈ S|` and `|S ⋈ T|` *before* moving any data: joining the smaller
//! intermediate first usually wins. With relations as binary matrices
//! (`R_{x,y} = 1` iff `(x,y) ∈ R`), the natural-join size is `‖R·S‖₁`
//! and the composition (distinct result pairs) is `‖R·S‖₀` — both
//! estimable in 1–2 rounds and `Õ(n)` bits instead of shipping `R`.
//!
//! Each candidate join gets its own [`Session`]; the optimizer issues
//! several queries per session (cardinality, skew) without re-paying
//! setup.
//!
//! Run with: `cargo run --release --example query_optimizer`

use mpest::prelude::*;

fn main() {
    let n = 200;
    let seed = Seed(7);

    // R is dense on a popular band of Y values; S is skewed; T is sparse.
    let r = Workloads::zipf_sets(n, n, 14, 0.9, 1); // rows: X -> set of Y
    let s = Workloads::zipf_sets(n, n, 10, 1.2, 2).transpose(); // Y -> set of Z (as matrix Y x Z)
    let t = Workloads::bernoulli_bits(n, n, 0.01, 3); // Z -> set of W

    let (rc, sc, tc) = (r.to_csr(), s.to_csr(), t.to_csr());
    let rs_session = Session::builder(r.clone(), s.clone()).seed(seed).build();
    let st_session = Session::builder(s.clone(), t.clone()).seed(seed).build();

    println!("== federated join-order selection: R ⋈ S ⋈ T over domains of size {n} ==\n");

    // Exact intermediate sizes (ground truth the optimizer cannot afford).
    let rs_truth = norms::csr_lp_pow(&rc.matmul(&sc), PNorm::ONE);
    let st_truth = norms::csr_lp_pow(&sc.matmul(&tc), PNorm::ONE);

    // Cheap exact |R join S| via Remark 2 (1 round, O(n log n) bits):
    let rs = rs_session.run_seeded(&ExactL1, &(), seed).unwrap();
    // |S join T| both live at Bob in this story, but the same protocol
    // prices a cross-site estimate; run it distributed anyway.
    let st = st_session.run_seeded(&ExactL1, &(), seed).unwrap();
    println!(
        "|R ⋈ S| = {:>9}  (truth {rs_truth:>9.0})  [{} bits, 1 round]",
        rs.output,
        rs.bits()
    );
    println!(
        "|S ⋈ T| = {:>9}  (truth {st_truth:>9.0})  [{} bits, 1 round]",
        st.output,
        st.bits()
    );

    let plan = if rs.output <= st.output {
        "(R ⋈ S) first, then ⋈ T"
    } else {
        "(S ⋈ T) first, then R ⋈ ·"
    };
    let best = if rs_truth <= st_truth {
        "(R ⋈ S) first, then ⋈ T"
    } else {
        "(S ⋈ T) first, then R ⋈ ·"
    };
    println!("\nchosen plan: {plan}");
    println!("oracle plan: {best}");
    assert_eq!(plan, best, "exact l1 exchange must pick the oracle plan");

    // Distinct-pair cardinalities (for duplicate-eliminating joins):
    // ||RS||_0 within (1+eps) via Algorithm 1 at a fraction of the cost
    // of the one-round baseline at the same accuracy.
    let eps = 0.1;
    let two_round = rs_session
        .run_seeded(&LpNorm, &LpParams::new(PNorm::Zero, eps), seed)
        .unwrap();
    let one_round = rs_session
        .run_seeded(&LpBaseline, &BaselineParams::new(PNorm::Zero, eps), seed)
        .unwrap();
    let l0_truth = norms::csr_lp_pow(&rc.matmul(&sc), PNorm::Zero);
    println!(
        "\ndistinct pairs of R∘S: truth {l0_truth:.0}\n  Algorithm 1 (2 rounds): ≈{:>9.0} at {:>9} bits\n  baseline [16] (1 round): ≈{:>9.0} at {:>9} bits  ({}x more)",
        two_round.output,
        two_round.bits(),
        one_round.output,
        one_round.bits(),
        one_round.bits() / two_round.bits().max(1)
    );

    // Selectivity of the most frequent join key pair — is the join
    // skew-dominated? (l-infinity, factor 2+eps.)
    let linf = rs_session
        .run_seeded(&LinfBinary, &LinfBinaryParams::new(0.3), seed)
        .unwrap();
    let (linf_truth, _) = stats::linf_of_product_binary(&r, &s);
    println!(
        "\nmax pair multiplicity in R·S: ≈{:.0} (truth {linf_truth}) — {}",
        linf.output.estimate,
        if linf.output.estimate > 4.0 * rs.output as f64 / (n * n) as f64 {
            "skewed: prefer hash-partitioning the hot keys"
        } else {
            "uniform enough for plain hash join"
        }
    );
}
