//! Inner-product similarity join on integer vectors (Section 1.1's
//! pointer to [3]), using the general-matrix protocols.
//!
//! Alice holds `n` user profiles as non-negative integer vectors (e.g.
//! per-category engagement counts); Bob holds `n` item profiles. The
//! similarity of user `i` and item `j` is the inner product
//! `⟨u_i, v_j⟩ = (AB)_{i,j}`. The services want, without exchanging
//! profiles:
//!
//! * the hottest user–item pair — `‖AB‖∞`, κ-approximable in one round
//!   and `Õ(n²/κ²)` bits (Theorem 4.8, and provably not cheaper);
//! * all pairs above a similarity threshold — the `ℓp` heavy hitters of
//!   `AB` (Algorithm 4);
//! * the total interaction mass `‖AB‖₁` for normalization (Remark 2).
//!
//! One [`Session`] serves the whole workload.
//!
//! Run with: `cargo run --release --example similarity_join`

use mpest::prelude::*;

fn main() {
    let n = 96;
    let dims = 128; // shared feature space
    let seed = Seed(31);

    // Sparse non-negative count vectors with a planted hot pair.
    let mut a = Workloads::integer_csr(n, dims, 0.08, 6, false, 5);
    let mut b = Workloads::integer_csr(dims, n, 0.08, 6, false, 6);
    // Plant: user 11 and item 29 share strong weight on features 0..24.
    {
        let mut ta: Vec<(u32, u32, i64)> = a.triplets().collect();
        let mut tb: Vec<(u32, u32, i64)> = b.triplets().collect();
        for f in 0..24u32 {
            ta.push((11, f, 5));
            tb.push((f, 29, 5));
        }
        a = CsrMatrix::from_triplets(n, dims, ta);
        b = CsrMatrix::from_triplets(dims, n, tb);
    }
    let c = a.matmul(&b);
    let session = Session::builder(a.clone(), b.clone()).seed(seed).build();

    println!("== similarity join: {n} users x {n} items over {dims} features ==\n");

    // Total mass for normalization (exact, 1 round).
    let mass = session.run(&ExactL1, &()).unwrap();
    println!(
        "total interaction mass ||AB||_1 = {}  [{} bits]",
        mass.output,
        mass.bits()
    );

    // Hottest pair within a factor kappa (one round).
    let (linf_truth, (ti, tj)) = stats::linf_of_product(&a, &b);
    for kappa in [2usize, 4, 8] {
        let run = session
            .run(&LinfGeneral, &LinfGeneralParams::new(kappa))
            .unwrap();
        println!(
            "max similarity, kappa={kappa}:  estimate in [{:.0}] (truth {linf_truth} at user {ti}, item {tj})  [{} bits]",
            run.output,
            run.bits()
        );
    }

    // Threshold similarity join: every pair with a phi share of the l2^2
    // mass (p = 2 weights big similarities more).
    let l2 = norms::csr_lp_pow(&c, PNorm::TWO);
    let phi = ((linf_truth * linf_truth) as f64 * 0.5) / l2;
    let params = HhGeneralParams::new(2.0, phi.min(0.9), (phi / 2.0).min(0.4));
    // Seeded explicitly: the assertion below relies on this exact run.
    let run = session.run_seeded(&HhGeneral, &params, seed).unwrap();
    println!(
        "\nthreshold join (p=2, phi={phi:.4}): {} pairs  [{} bits]",
        run.output.pairs.len(),
        run.bits()
    );
    for p in run.output.pairs.iter().take(8) {
        println!(
            "  user {:>3} ~ item {:>3}: similarity ≈ {:>6.1} (truth {})",
            p.row,
            p.col,
            p.estimate,
            c.get(p.row as usize, p.col)
        );
    }
    assert!(
        run.output.contains(ti, tj),
        "the hottest pair must be reported"
    );

    // For binary-thresholded profiles the same question costs far less —
    // the paper's binary-vs-general separation.
    let a_bin = BitMatrix::from_csr(&a);
    let b_bin = BitMatrix::from_csr(&b);
    let cb = a_bin.to_csr().matmul(&b_bin.to_csr());
    let (bt, _) = norms::csr_linf(&cb);
    let l1b = norms::csr_lp_pow(&cb, PNorm::ONE);
    let phib = (bt as f64 * 0.7) / l1b;
    let binary_session = Session::builder(a_bin, b_bin).seed(seed).build();
    let run_b = binary_session
        .run(&HhBinary, &HhBinaryParams::new(1.0, phib, phib / 2.0))
        .unwrap();
    println!(
        "\nbinary-profile variant: {} pairs at [{} bits] (Theorem 5.3's structural discount)",
        run_b.output.pairs.len(),
        run_b.bits()
    );
}
